"""Plain-text / CSV reporting helpers for the benchmark harness.

The benches print the same rows / series as the paper's figures and tables;
these helpers keep the formatting consistent and optionally persist results
to CSV for offline plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "write_csv", "format_series"]

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, values: Mapping[str, Number], float_format: str = "{:.3f}") -> str:
    """Render one labelled series (e.g. one bar group of a figure)."""
    parts = [f"{key}={float_format.format(float(value))}" for key, value in values.items()]
    return f"{name}: " + ", ".join(parts)


def write_csv(path: Union[str, Path], headers: Sequence[str], rows: Iterable[Sequence[object]]) -> Path:
    """Write rows to a CSV file, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path
