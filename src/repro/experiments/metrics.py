"""Evaluation metrics of the paper.

* **Performance** — the inverse execution time of the best tensor program
  produced by an auto-scheduler, reported *normalised* to the best scheduler
  (so the winner is 1.0).
* **Search time** — the cost an auto-scheduler pays to find a program no
  worse than the *baseline's* final output, also reported normalised.  In
  this reproduction the wall-clock measurement cost is replaced by the number
  of measurement trials consumed (every measured candidate costs roughly the
  same wall time in Ansor's and HARL's measurement pipelines).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.core.tuner import TuningResult

__all__ = ["normalized_performance", "normalized_search_time", "speedup"]


def speedup(baseline_latency: float, candidate_latency: float) -> float:
    """How much faster ``candidate`` is than ``baseline`` (>1 means faster)."""
    if candidate_latency <= 0 or not np.isfinite(candidate_latency):
        return 0.0
    return float(baseline_latency / candidate_latency)


def normalized_performance(results: Mapping[str, TuningResult]) -> Dict[str, float]:
    """Normalise final performance (1 / latency) so the best scheduler is 1.0."""
    perf = {}
    for name, result in results.items():
        latency = getattr(result, "best_latency", float("inf"))
        perf[name] = 0.0 if latency <= 0 or not np.isfinite(latency) else 1.0 / latency
    best = max(perf.values()) if perf else 0.0
    if best <= 0:
        return {name: 0.0 for name in perf}
    return {name: value / best for name, value in perf.items()}


def normalized_search_time(
    results: Mapping[str, TuningResult],
    baseline: str = "ansor",
) -> Dict[str, float]:
    """Normalised search cost to reach the baseline's final performance.

    For every scheduler the cost is the number of measurement trials it needed
    before its best-so-far latency dropped to (or below) the baseline's final
    best latency; schedulers that never reach it are charged their full trial
    budget.  Costs are normalised so the slowest scheduler is 1.0 (the
    convention used in Fig. 6 / Fig. 9 of the paper).
    """
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results {sorted(results)}")
    target_latency = results[baseline].best_latency

    costs: Dict[str, float] = {}
    for name, result in results.items():
        reached = result.trials_to_reach(target_latency)
        costs[name] = float(reached) if reached is not None else float(result.trials_used)
    slowest = max(costs.values()) if costs else 0.0
    if slowest <= 0:
        return {name: 0.0 for name in costs}
    return {name: value / slowest for name, value in costs.items()}
