"""Session-scoped result cache for the benchmark harness.

Several figures of the paper are different views of the same tuning runs
(e.g. Fig. 5 and Fig. 6 report performance and search time of the *same*
operator comparisons; Fig. 8/9/10 and Table 4 all derive from the BERT
end-to-end runs).  The helpers here memoise comparison runs inside one Python
process so each underlying tuning run happens exactly once per benchmark
session, regardless of how many benches consume it.

Cache keys identify workloads by their **canonical structural fingerprint**
(:func:`repro.serving.fingerprint.structural_fingerprint`), not by display
name, so renamed-but-structurally-identical DAGs share one cache entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import HARLConfig
from repro.experiments.operator_suite import representative_dag
from repro.experiments.runner import (
    NetworkComparison,
    OperatorComparison,
    compare_on_network,
    compare_on_operator,
)
from repro.hardware.target import HardwareTarget, cpu_target, gpu_target
from repro.networks.bert import build_bert
from repro.networks.graph import NetworkGraph
from repro.networks.mobilenet import build_mobilenet_v2
from repro.networks.resnet import build_resnet50
from repro.serving.fingerprint import structural_fingerprint
from repro.tensor.dag import ComputeDAG

__all__ = [
    "bench_config",
    "cached_operator_comparison",
    "cached_network_comparison",
    "comparison_cache_key",
    "clear_cache",
    "resolve_target",
    "build_network",
]

_OPERATOR_CACHE: Dict[Tuple, OperatorComparison] = {}
_NETWORK_CACHE: Dict[Tuple, NetworkComparison] = {}

#: Default benchmark-scale HARL configuration: one eighth of the paper's
#: episode width, which keeps the whole harness runnable on a laptop.
_BENCH_SCALE = 0.125


def bench_config(scale: float = _BENCH_SCALE) -> HARLConfig:
    """The HARL configuration used by the benchmark harness."""
    return HARLConfig.scaled(scale)


def resolve_target(name: str) -> HardwareTarget:
    """Map a target name (``"cpu"`` / ``"gpu"``) to a hardware preset."""
    if name == "cpu":
        return cpu_target()
    if name == "gpu":
        return gpu_target()
    raise KeyError(f"unknown target {name!r}")


def build_network(name: str, batch_size: int = 1):
    """Build one of the paper's evaluation networks by short name."""
    builders = {
        "bert": build_bert,
        "resnet50": build_resnet50,
        "mobilenet_v2": build_mobilenet_v2,
    }
    if name not in builders:
        raise KeyError(f"unknown network {name!r}; known: {sorted(builders)}")
    return builders[name](batch_size=batch_size)


def comparison_cache_key(
    workload,
    n_trials: int,
    target_name: str,
    schedulers: Sequence[str],
    seed: int,
) -> Tuple:
    """Structural cache key of one comparison run.

    ``workload`` is a :class:`ComputeDAG` or a :class:`NetworkGraph`; either
    way its identity is the canonical fingerprint(s) of its DAG(s), so two
    differently-named but structurally identical workloads share an entry.
    """
    if isinstance(workload, ComputeDAG):
        identity: Tuple = (structural_fingerprint(workload),)
    elif isinstance(workload, NetworkGraph):
        identity = tuple(
            (structural_fingerprint(sg.dag), sg.weight) for sg in workload
        )
    else:
        raise TypeError(f"unsupported workload type {type(workload).__name__}")
    return identity + (n_trials, target_name, tuple(schedulers), seed)


def cached_operator_comparison(
    op_class: str,
    batch: int,
    n_trials: int,
    target_name: str = "cpu",
    schedulers: Sequence[str] = ("ansor", "harl"),
    seed: int = 0,
    config: Optional[HARLConfig] = None,
) -> OperatorComparison:
    """Run (or reuse) a scheduler comparison on one Table 6 operator class."""
    dag = representative_dag(op_class, batch=batch)
    key = comparison_cache_key(dag, n_trials, target_name, schedulers, seed)
    if key not in _OPERATOR_CACHE:
        _OPERATOR_CACHE[key] = compare_on_operator(
            dag,
            n_trials=n_trials,
            target=resolve_target(target_name),
            config=config or bench_config(),
            seed=seed,
            schedulers=schedulers,
        )
    return _OPERATOR_CACHE[key]


def cached_network_comparison(
    network_name: str,
    batch: int,
    n_trials: int,
    target_name: str = "cpu",
    schedulers: Sequence[str] = ("ansor", "harl"),
    seed: int = 0,
    config: Optional[HARLConfig] = None,
) -> NetworkComparison:
    """Run (or reuse) an end-to-end network comparison."""
    network = build_network(network_name, batch_size=batch)
    key = comparison_cache_key(network, n_trials, target_name, schedulers, seed)
    if key not in _NETWORK_CACHE:
        _NETWORK_CACHE[key] = compare_on_network(
            network,
            n_trials=n_trials,
            target=resolve_target(target_name),
            config=config or bench_config(),
            seed=seed,
            schedulers=schedulers,
        )
    return _NETWORK_CACHE[key]


def clear_cache() -> None:
    """Drop all memoised comparison results (used by tests)."""
    _OPERATOR_CACHE.clear()
    _NETWORK_CACHE.clear()
