"""End-to-end network tuning through the shared tuning service.

This is the layer the paper actually evaluates: a network is split into
``N`` weighted subgraphs (tasks) and the end-to-end latency
``f(S) = sum_n w_n * g_n`` is minimised by allocating measurement rounds
across the tasks.  :class:`NetworkTuner` composes the pieces the repo already
has into that system:

* every subgraph is submitted to a shared
  :class:`~repro.serving.service.TuningService`, so tasks whose structural
  fingerprint is already registered are answered in O(1) with zero trials and
  novel tasks are warm-started from their nearest registered relatives —
  including subgraphs tuned for *other networks* on the same registry
  (MobileNet's convolutions borrow from ResNet's) and, via the target
  catalog, from other devices;
* each measurement round is allocated to one task by a pluggable policy —
  the greedy Eq. 3 :class:`~repro.baselines.task_scheduler.GradientTaskScheduler`
  (Ansor's strategy) or HARL's non-stationary SW-UCB bandit
  (:class:`BanditTaskScheduler`);
* the outcome is a :class:`NetworkTuningReport`: the ``f(S)`` trajectory,
  the per-task allocation table and the registry / warm-start provenance of
  every task.

The tuner *drives* the service round by round through
:meth:`~repro.serving.service.TuningService.advance` instead of delegating to
``TuningService.run``, because end-to-end tuning needs the network's weights
``w_n`` — not the number of waiting tenants — to steer the budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines.task_scheduler import GradientTaskScheduler
from repro.core.bandit import SlidingWindowUCB
from repro.experiments.reporting import format_table
from repro.networks.graph import NetworkGraph
from repro.serving.service import (
    SOURCE_COALESCED,
    SOURCE_REGISTRY,
    JobHandle,
    TuningRequest,
    TuningService,
)

__all__ = [
    "BanditTaskScheduler",
    "NetworkTuner",
    "NetworkTuningReport",
    "TaskReport",
    "make_task_policy",
]


class BanditTaskScheduler(GradientTaskScheduler):
    """HARL's subgraph-selection policy: SW-UCB over the Eq. 3 reward.

    Shares state/validation with the greedy baseline but replaces the
    deterministic argmax with a non-stationary sliding-window UCB bandit, so
    task selection keeps exploring as the per-task reward distributions drift
    during the run (Observation 1 / Eq. 4 of the paper).
    """

    name = "bandit"

    def __init__(
        self,
        network: NetworkGraph,
        alpha: float = 0.2,
        beta: float = 2.0,
        backward_window: int = 3,
        exploration: float = 0.25,
        window: int = 256,
        seed: int = 0,
    ):
        super().__init__(network, alpha=alpha, beta=beta, backward_window=backward_window)
        self.mab = SlidingWindowUCB(
            len(self.task_names),
            exploration=exploration,
            window=window,
            rng=np.random.default_rng(seed),
        )
        self._index = {name: i for i, name in enumerate(self.task_names)}

    def next_task(self, among: Optional[Sequence[str]] = None) -> str:
        candidates = self._candidates(among)
        # Warm-up discipline is shared with the greedy scheduler: every
        # candidate is grounded in one round before the bandit takes over.
        untuned = self._untuned(candidates)
        if untuned is not None:
            return untuned
        arm = self.mab.select(among=[self._index[name] for name in candidates])
        return self.task_names[arm]

    def record(self, task_name: str, best_latency: float, trials: int = 0) -> None:
        super().record(task_name, best_latency, trials=trials)
        rewards = self.rewards()
        arm = self._index[task_name]
        self.mab.update(arm, float(rewards[arm]))


def make_task_policy(
    policy: str,
    network: NetworkGraph,
    config,
    seed: int = 0,
):
    """Build a task-allocation policy by name (``"gradient"`` or ``"bandit"``)."""
    if policy == "gradient":
        return GradientTaskScheduler(
            network,
            alpha=config.alpha,
            beta=config.beta,
            backward_window=config.backward_window,
        )
    if policy == "bandit":
        return BanditTaskScheduler(
            network,
            alpha=config.alpha,
            beta=config.beta,
            backward_window=config.backward_window,
            exploration=config.ucb_constant,
            window=config.ucb_window,
            seed=seed,
        )
    raise KeyError(f"unknown task policy {policy!r}; known: bandit, gradient")


@dataclass(frozen=True)
class TaskReport:
    """Outcome and provenance of one network task."""

    task: str
    workload: str
    weight: float
    trials: int                       #: trials allocated to this task by the policy
    best_latency: float               #: per-instance latency g_n
    source: str                       #: registry-hit / scheduled / coalesced
    provenance: str                   #: registry:<src> / transfer:<targets> / warm:<donors> / cold
    warm_start_donors: Tuple[str, ...] = ()
    transfer_donors: Tuple[str, ...] = ()

    @property
    def weighted_latency(self) -> float:
        """Contribution ``w_n * g_n`` to the end-to-end latency."""
        return self.weight * self.best_latency


@dataclass
class NetworkTuningReport:
    """End-to-end report of one network tuning run.

    ``trajectory`` holds ``(total measurement trials, f(S))`` pairs — the
    end-to-end latency estimate after every allocation round; ``tasks`` is
    the per-task allocation table with registry / warm-start provenance.
    """

    network: str
    target: str
    policy: str
    scheduler: str
    tasks: List[TaskReport] = field(default_factory=list)
    trajectory: List[Tuple[int, float]] = field(default_factory=list)
    registry_hits: int = 0
    coalesced_tasks: int = 0
    jobs_created: int = 0

    @property
    def final_latency(self) -> float:
        """Final end-to-end latency estimate ``f(S)``."""
        return self.trajectory[-1][1] if self.trajectory else float("inf")

    @property
    def trials_used(self) -> int:
        return self.trajectory[-1][0] if self.trajectory else 0

    @property
    def warm_started_tasks(self) -> int:
        """Tasks seeded from the registry (same- or cross-target donors)."""
        return sum(
            1 for t in self.tasks if t.warm_start_donors or t.transfer_donors
        )

    def trials_to_reach(self, latency: float) -> Optional[int]:
        """First trial count at which ``f(S)`` reached ``latency`` (or None)."""
        for trials, value in self.trajectory:
            if value <= latency:
                return trials
        return None

    def task(self, name: str) -> TaskReport:
        for entry in self.tasks:
            if entry.task == name:
                return entry
        raise KeyError(name)

    def rows(self) -> List[List[object]]:
        return [
            [
                t.task,
                t.weight,
                t.trials,
                t.best_latency * 1e6,
                t.weighted_latency * 1e6,
                t.source,
                t.provenance,
            ]
            for t in self.tasks
        ]

    def format(self) -> str:
        table = format_table(
            ["task", "w_n", "trials", "g_n (us)", "w_n*g_n (us)", "source",
             "warm-started from"],
            self.rows(),
            title=(f"{self.network} on {self.target} — policy={self.policy}, "
                   f"scheduler={self.scheduler}"),
        )
        summary = (
            f"end-to-end f(S): {self.final_latency * 1e3:.3f} ms "
            f"({self.trials_used} trials, {self.jobs_created} jobs, "
            f"{self.registry_hits} registry hits, "
            f"{self.warm_started_tasks} warm-started tasks)"
        )
        return f"{table}\n\n{summary}"

    def to_dict(self) -> dict:
        """JSON-safe dict: non-finite latencies (untuned) serialise as null.

        ``json.dumps`` would otherwise emit the bare token ``Infinity``,
        which is invalid JSON per RFC 8259 — the cold run's zero-trial
        trajectory baseline is always ``inf``.
        """

        def safe(value: float) -> Optional[float]:
            return float(value) if np.isfinite(value) else None

        return {
            "network": self.network,
            "target": self.target,
            "policy": self.policy,
            "scheduler": self.scheduler,
            "final_latency": safe(self.final_latency),
            "trials_used": self.trials_used,
            "registry_hits": self.registry_hits,
            "coalesced_tasks": self.coalesced_tasks,
            "jobs_created": self.jobs_created,
            "trajectory": [[trials, safe(latency)] for trials, latency in self.trajectory],
            "tasks": [
                {
                    "task": t.task,
                    "workload": t.workload,
                    "weight": t.weight,
                    "trials": t.trials,
                    "best_latency": safe(t.best_latency),
                    "source": t.source,
                    "provenance": t.provenance,
                    "warm_start_donors": list(t.warm_start_donors),
                    "transfer_donors": list(t.transfer_donors),
                }
                for t in self.tasks
            ],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_dict(), indent=2, allow_nan=False)
        path.write_text(payload + "\n", encoding="utf-8")
        return path


class NetworkTuner:
    """Drive a whole :class:`NetworkGraph` through a shared tuning service.

    Parameters
    ----------
    network:
        The subgraph inventory to tune end to end.
    service:
        The (possibly shared, possibly persistent-registry-backed)
        :class:`~repro.serving.service.TuningService` all tasks go through.
        Sharing one service / registry across networks is what buys
        cross-network reuse: tasks already registered are O(1) hits, novel
        tasks warm-start from their nearest registered relatives.
    policy:
        Task-allocation policy: ``"bandit"`` (HARL's SW-UCB, the default),
        ``"gradient"`` (Ansor's greedy Eq. 3 argmax) or a ready-made policy
        object exposing ``next_task(among=...)`` / ``record`` /
        ``estimated_latency`` / ``allocations``.
    scheduler:
        Per-task search scheduler the service should run (``"harl"``,
        ``"hierarchical-rl"`` or ``"ansor"``).
    force_tune:
        Bypass the registry fast path — every task is tuned fresh even when
        an exact entry exists (cold-run baselines and ablations).
    """

    def __init__(
        self,
        network: NetworkGraph,
        service: TuningService,
        policy: Union[str, object] = "bandit",
        scheduler: str = "harl",
        force_tune: bool = False,
    ):
        self.network = network
        self.service = service
        self.scheduler = scheduler
        self.force_tune = bool(force_tune)
        if isinstance(policy, str):
            self.policy = make_task_policy(
                policy, network, service.config, seed=service.seed
            )
        else:
            self.policy = policy
        self.policy_name = getattr(self.policy, "name", type(self.policy).__name__)

    # ------------------------------------------------------------------ #
    def tune(self, n_trials: int) -> NetworkTuningReport:
        """Tune the network within a total measurement-trial budget.

        Tasks answered from the registry consume no budget; the rest receive
        rounds one at a time from the allocation policy until the budget is
        exhausted (any jobs still in flight are finalized with their
        best-so-far, so the registry always absorbs the run).
        """
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        network, service, policy = self.network, self.service, self.policy

        handles: Dict[str, JobHandle] = {}
        for sg in network:
            handles[sg.name] = service.submit(
                TuningRequest(
                    dag=sg.dag,
                    n_trials=n_trials,
                    scheduler=self.scheduler,
                    tenant=f"network:{network.name}",
                    force_tune=self.force_tune,
                )
            )
            # Registry answers ground the policy immediately: the task needs
            # no rounds, and its latency anchors the Eq. 3 similarity term
            # for the live tasks of the same operator family.
            if handles[sg.name].done:
                policy.record(
                    sg.name, handles[sg.name].result.best_latency, trials=0
                )

        trajectory: List[Tuple[int, float]] = []
        spent_total = 0

        def current_f() -> float:
            return network.estimated_latency(
                {name: service.current_latency(handle) for name, handle in handles.items()}
            )

        live = [sg.name for sg in network if not handles[sg.name].done]
        # Cap each task's *first* round at a fair share of the budget: a
        # coarse config whose regular round consumes more than
        # n_trials / #tasks measures would otherwise exhaust the budget
        # before the warm-up pass reaches every task, leaving f(S) infinite.
        fair_share = max(1, n_trials // max(len(live), 1))
        rounds_given = {name: 0 for name in live}
        # Zero-trial baseline: with a warm registry f(S) may already be
        # finite before any round, and trials_to_reach must see that.
        trajectory.append((0, current_f()))
        while live and spent_total < n_trials:
            task = policy.next_task(among=live)
            handle = handles[task]
            cap = n_trials - spent_total
            if rounds_given[task] == 0:
                cap = min(cap, fair_share)
            spent = service.advance(handle, max_measures=cap)
            spent_total += spent
            rounds_given[task] += 1
            policy.record(task, service.current_latency(handle), trials=spent)
            trajectory.append((spent_total, current_f()))
            # A finished job resolves every coalesced sibling handle too, so
            # structurally identical tasks leave the live set together.
            live = [name for name in live if not handles[name].done]

        for name in live:
            service.finish(handles[name])
        if live:
            trajectory.append((spent_total, current_f()))
        return self._build_report(handles, trajectory)

    # ------------------------------------------------------------------ #
    def _build_report(
        self,
        handles: Dict[str, JobHandle],
        trajectory: List[Tuple[int, float]],
    ) -> NetworkTuningReport:
        tasks: List[TaskReport] = []
        allocations = getattr(self.policy, "allocations", {})
        for sg in self.network:
            handle = handles[sg.name]
            result = handle.result
            extras = result.extras if result is not None else {}
            warm = tuple(extras.get("warm_start_donors", ()))
            transfer = tuple(extras.get("transfer_donors", ()))
            measured = result is not None and result.trials_used > 0
            if not measured:
                # A budget-starved task fetches warm-start candidates at
                # finalize time but never measures them: that is not reuse.
                warm, transfer = (), ()
            if handle.source == SOURCE_REGISTRY:
                provenance = f"registry:{extras.get('registry_source', '') or 'n/a'}"
            elif transfer:
                provenance = "transfer:" + ",".join(transfer)
            elif warm:
                provenance = "warm:" + ",".join(warm)
            else:
                provenance = "cold"
            tasks.append(
                TaskReport(
                    task=sg.name,
                    workload=sg.dag.name,
                    weight=sg.weight,
                    trials=int(allocations.get(sg.name, 0)),
                    best_latency=float(result.best_latency) if result else float("inf"),
                    source=handle.source,
                    provenance=provenance,
                    warm_start_donors=warm,
                    transfer_donors=transfer,
                )
            )
        return NetworkTuningReport(
            network=self.network.name,
            target=self.service.target.name,
            policy=self.policy_name,
            scheduler=self.scheduler,
            tasks=tasks,
            trajectory=trajectory,
            registry_hits=sum(
                1 for h in handles.values() if h.source == SOURCE_REGISTRY
            ),
            coalesced_tasks=sum(
                1 for h in handles.values() if h.source == SOURCE_COALESCED
            ),
            jobs_created=sum(
                1 for h in handles.values()
                if h.source not in (SOURCE_REGISTRY, SOURCE_COALESCED)
            ),
        )
