"""Head-to-head experiment runners.

These functions build fresh scheduler instances (each with its own measurer
and cost model so no information leaks between competitors), run them on the
same workload with the same trial budget and seed, and package the outcomes
for the metric / reporting helpers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.baselines.ansor import AnsorConfig, AnsorScheduler
from repro.core.config import HARLConfig
from repro.core.scheduler import HARLScheduler
from repro.core.tuner import NetworkTuningResult, TuningResult
from repro.experiments.metrics import normalized_performance, normalized_search_time
from repro.hardware.measurer import Measurer
from repro.hardware.parallel import ParallelMeasurer
from repro.hardware.target import HardwareTarget, cpu_target
from repro.networks.graph import NetworkGraph
from repro.records import RecordStore
from repro.tensor.dag import ComputeDAG

__all__ = [
    "OperatorComparison",
    "NetworkComparison",
    "compare_on_operator",
    "compare_on_network",
    "default_trials",
    "make_measurer",
    "resolve_registry",
]


#: Session-scoped registries opened by path, so repeated comparison calls
#: (one benchmark session runs dozens) reuse one instance — one shard load,
#: one set of append handles — instead of re-reading the directory per call.
_REGISTRY_INSTANCES: Dict[str, object] = {}


def resolve_registry(registry=None):
    """Resolve the schedule registry a benchmark run should populate.

    An explicit :class:`~repro.serving.registry.ScheduleRegistry` (or path)
    wins; otherwise the ``REPRO_REGISTRY`` environment variable names the
    registry directory, and when neither is set no registry is populated.
    Path-named registries are opened once per process and cached.  Every
    comparison run records its per-scheduler best results as a side effect,
    so benchmark sessions grow the shared schedule database.
    """
    from repro.serving.registry import ScheduleRegistry

    if registry is None:
        env = os.environ.get("REPRO_REGISTRY", "")
        if not env:
            return None
        registry = env
    if isinstance(registry, (str, Path)):
        key = str(Path(registry).resolve())
        if key not in _REGISTRY_INSTANCES:
            _REGISTRY_INSTANCES[key] = ScheduleRegistry(registry)
        return _REGISTRY_INSTANCES[key]
    return registry


def default_trials(paper_trials: int, fallback: int) -> int:
    """Trial budget for a bench: ``REPRO_FULL=1`` selects the paper budget,
    ``REPRO_TRIALS=<n>`` overrides it, otherwise the scaled-down default."""
    if os.environ.get("REPRO_FULL", "") == "1":
        return paper_trials
    override = os.environ.get("REPRO_TRIALS", "")
    if override:
        return max(1, int(override))
    return fallback


@dataclass
class OperatorComparison:
    """Results of running several schedulers on one operator."""

    dag_name: str
    results: Dict[str, TuningResult]

    @property
    def schedulers(self) -> List[str]:
        return list(self.results)

    def normalized_performance(self) -> Dict[str, float]:
        return normalized_performance(self.results)

    def normalized_search_time(self, baseline: str = "ansor") -> Dict[str, float]:
        return normalized_search_time(self.results, baseline=baseline)


@dataclass
class NetworkComparison:
    """Results of running several schedulers on one end-to-end network."""

    network_name: str
    results: Dict[str, NetworkTuningResult]

    def normalized_performance(self) -> Dict[str, float]:
        return normalized_performance(self.results)

    def normalized_search_time(self, baseline: str = "ansor") -> Dict[str, float]:
        return normalized_search_time(self.results, baseline=baseline)


def make_measurer(
    target: HardwareTarget,
    config: HARLConfig,
    seed: int,
    num_workers: int,
    record_store=None,
) -> Optional[Measurer]:
    """Build the measurement backend selected by pipeline options.

    This is the single policy shared by the CLI and the comparison runners:
    returns ``None`` when neither parallelism nor persistence was requested
    (so callers fall back to each scheduler's default measurer, preserving
    plain-run seed semantics), a :class:`ParallelMeasurer` when
    ``num_workers > 1``, and a serial :class:`Measurer` bound to the record
    store otherwise.
    """
    if num_workers <= 1 and record_store is None:
        return None
    kwargs = dict(
        min_repeat_seconds=config.min_repeat_seconds, seed=seed, record_store=record_store
    )
    if num_workers > 1:
        return ParallelMeasurer(target, num_workers=num_workers, **kwargs)
    return Measurer(target, **kwargs)


def _default_factories(
    target: HardwareTarget,
    config: HARLConfig,
    seed: int,
    include: Sequence[str],
    num_workers: int = 1,
    records_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Callable[[], object]]:
    def pipeline_for(name: str):
        """(measurer, record store) for one competitor.

        Each competitor gets its own record store file so no information
        leaks between them; the store is also handed to the scheduler so the
        final 'result' line lands in the same log as the measurements.
        """
        store = None
        if records_dir is not None:
            store = RecordStore(Path(records_dir) / f"{name}.jsonl")
        return make_measurer(target, config, seed, num_workers, store), store

    def harl_factory(name: str, **overrides) -> Callable[[], HARLScheduler]:
        def build():
            measurer, store = pipeline_for(name)
            return HARLScheduler(
                target=target, config=config, seed=seed,
                measurer=measurer, record_store=store, **overrides,
            )
        return build

    factories: Dict[str, Callable[[], object]] = {}
    if "ansor" in include:
        def build_ansor():
            measurer, store = pipeline_for("ansor")
            return AnsorScheduler(
                target=target, config=AnsorConfig.from_harl(config), seed=seed,
                measurer=measurer, record_store=store,
            )
        factories["ansor"] = build_ansor
    if "harl" in include:
        factories["harl"] = harl_factory("harl")
    if "hierarchical-rl" in include:
        factories["hierarchical-rl"] = harl_factory(
            "hierarchical-rl", adaptive_stopping=False
        )
    if "harl-no-subgraph-mab" in include:
        factories["harl-no-subgraph-mab"] = harl_factory(
            "harl-no-subgraph-mab", use_subgraph_mab=False
        )
    return factories


def compare_on_operator(
    dag: ComputeDAG,
    n_trials: int,
    target: Optional[HardwareTarget] = None,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    schedulers: Sequence[str] = ("ansor", "harl"),
    num_workers: int = 1,
    records_dir: Optional[Union[str, Path]] = None,
    registry=None,
) -> OperatorComparison:
    """Tune one operator with every requested scheduler under the same budget.

    Parameters
    ----------
    num_workers:
        When > 1, each scheduler measures through a
        :class:`~repro.hardware.parallel.ParallelMeasurer` with this many
        workers; results are identical to serial runs for the same seed.
    records_dir:
        When set, each scheduler streams its measurements to
        ``<records_dir>/<scheduler>.jsonl``.
    registry:
        Optional :class:`~repro.serving.registry.ScheduleRegistry` (or its
        directory path) to populate with every competitor's best result; the
        ``REPRO_REGISTRY`` environment variable supplies a default, so
        benchmark runs grow the shared schedule database as a side effect.
    """
    target = target or cpu_target()
    config = config or HARLConfig.scaled()
    registry = resolve_registry(registry)
    factories = _default_factories(
        target, config, seed, schedulers, num_workers=num_workers, records_dir=records_dir
    )
    results: Dict[str, TuningResult] = {}
    for name in schedulers:
        scheduler = factories[name]()
        results[name] = scheduler.tune(dag, n_trials)
        if registry is not None:
            registry.record_result(dag, target, results[name], source=f"runner:{name}")
    return OperatorComparison(dag_name=dag.name, results=results)


def compare_on_network(
    network: NetworkGraph,
    n_trials: int,
    target: Optional[HardwareTarget] = None,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    schedulers: Sequence[str] = ("ansor", "harl"),
    num_workers: int = 1,
    records_dir: Optional[Union[str, Path]] = None,
    registry=None,
) -> NetworkComparison:
    """Tune one network end-to-end with every requested scheduler.

    ``num_workers``, ``records_dir`` and ``registry`` behave as in
    :func:`compare_on_operator`; every subgraph's best result lands in the
    registry.
    """
    target = target or cpu_target()
    config = config or HARLConfig.scaled()
    registry = resolve_registry(registry)
    factories = _default_factories(
        target, config, seed, schedulers, num_workers=num_workers, records_dir=records_dir
    )
    results: Dict[str, NetworkTuningResult] = {}
    for name in schedulers:
        scheduler = factories[name]()
        results[name] = scheduler.tune_network(network, n_trials)
        if registry is not None:
            for sg in network:
                task_result = results[name].task_results.get(sg.name)
                if task_result is not None:
                    registry.record_result(
                        sg.dag, target, task_result, source=f"runner:{name}"
                    )
    return NetworkComparison(network_name=network.name, results=results)
