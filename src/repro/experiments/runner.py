"""Head-to-head experiment runners.

These functions build fresh scheduler instances (each with its own measurer
and cost model so no information leaks between competitors), run them on the
same workload with the same trial budget and seed, and package the outcomes
for the metric / reporting helpers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.ansor import AnsorConfig, AnsorScheduler
from repro.core.config import HARLConfig
from repro.core.scheduler import HARLScheduler
from repro.core.tuner import NetworkTuningResult, TuningResult
from repro.experiments.metrics import normalized_performance, normalized_search_time
from repro.hardware.target import HardwareTarget, cpu_target
from repro.networks.graph import NetworkGraph
from repro.tensor.dag import ComputeDAG

__all__ = [
    "OperatorComparison",
    "NetworkComparison",
    "compare_on_operator",
    "compare_on_network",
    "default_trials",
]


def default_trials(paper_trials: int, fallback: int) -> int:
    """Trial budget for a bench: ``REPRO_FULL=1`` selects the paper budget,
    ``REPRO_TRIALS=<n>`` overrides it, otherwise the scaled-down default."""
    if os.environ.get("REPRO_FULL", "") == "1":
        return paper_trials
    override = os.environ.get("REPRO_TRIALS", "")
    if override:
        return max(1, int(override))
    return fallback


@dataclass
class OperatorComparison:
    """Results of running several schedulers on one operator."""

    dag_name: str
    results: Dict[str, TuningResult]

    @property
    def schedulers(self) -> List[str]:
        return list(self.results)

    def normalized_performance(self) -> Dict[str, float]:
        return normalized_performance(self.results)

    def normalized_search_time(self, baseline: str = "ansor") -> Dict[str, float]:
        return normalized_search_time(self.results, baseline=baseline)


@dataclass
class NetworkComparison:
    """Results of running several schedulers on one end-to-end network."""

    network_name: str
    results: Dict[str, NetworkTuningResult]

    def normalized_performance(self) -> Dict[str, float]:
        return normalized_performance(self.results)

    def normalized_search_time(self, baseline: str = "ansor") -> Dict[str, float]:
        return normalized_search_time(self.results, baseline=baseline)


def _default_factories(
    target: HardwareTarget,
    config: HARLConfig,
    seed: int,
    include: Sequence[str],
) -> Dict[str, Callable[[], object]]:
    factories: Dict[str, Callable[[], object]] = {}
    if "ansor" in include:
        factories["ansor"] = lambda: AnsorScheduler(
            target=target, config=AnsorConfig.from_harl(config), seed=seed
        )
    if "harl" in include:
        factories["harl"] = lambda: HARLScheduler(target=target, config=config, seed=seed)
    if "hierarchical-rl" in include:
        factories["hierarchical-rl"] = lambda: HARLScheduler(
            target=target, config=config, seed=seed, adaptive_stopping=False
        )
    if "harl-no-subgraph-mab" in include:
        factories["harl-no-subgraph-mab"] = lambda: HARLScheduler(
            target=target, config=config, seed=seed, use_subgraph_mab=False
        )
    return factories


def compare_on_operator(
    dag: ComputeDAG,
    n_trials: int,
    target: Optional[HardwareTarget] = None,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    schedulers: Sequence[str] = ("ansor", "harl"),
) -> OperatorComparison:
    """Tune one operator with every requested scheduler under the same budget."""
    target = target or cpu_target()
    config = config or HARLConfig.scaled()
    factories = _default_factories(target, config, seed, schedulers)
    results: Dict[str, TuningResult] = {}
    for name in schedulers:
        scheduler = factories[name]()
        results[name] = scheduler.tune(dag, n_trials)
    return OperatorComparison(dag_name=dag.name, results=results)


def compare_on_network(
    network: NetworkGraph,
    n_trials: int,
    target: Optional[HardwareTarget] = None,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    schedulers: Sequence[str] = ("ansor", "harl"),
) -> NetworkComparison:
    """Tune one network end-to-end with every requested scheduler."""
    target = target or cpu_target()
    config = config or HARLConfig.scaled()
    factories = _default_factories(target, config, seed, schedulers)
    results: Dict[str, NetworkTuningResult] = {}
    for name in schedulers:
        scheduler = factories[name]()
        results[name] = scheduler.tune_network(network, n_trials)
    return NetworkComparison(network_name=network.name, results=results)
