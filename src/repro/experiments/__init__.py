"""Experiment harness: metrics, workload suites, runners and reporting.

These utilities regenerate the evaluation-section figures and tables of the
paper; the benchmark files under ``benchmarks/`` are thin wrappers around the
runners defined here.
"""

from repro.experiments.metrics import (
    normalized_performance,
    normalized_search_time,
    speedup,
)
from repro.experiments.operator_suite import OPERATOR_SUITE, operator_dags
from repro.experiments.runner import (
    OperatorComparison,
    compare_on_operator,
    compare_on_network,
)
from repro.experiments.network_runner import (
    BanditTaskScheduler,
    NetworkTuner,
    NetworkTuningReport,
    TaskReport,
)
from repro.experiments.reporting import format_table, write_csv
from repro.experiments.sweep import (
    NetworkSweepCell,
    NetworkSweepReport,
    SweepCell,
    SweepReport,
    roofline_flops,
    sweep_networks,
    sweep_targets,
)

__all__ = [
    "BanditTaskScheduler",
    "NetworkSweepCell",
    "NetworkSweepReport",
    "NetworkTuner",
    "NetworkTuningReport",
    "OPERATOR_SUITE",
    "OperatorComparison",
    "SweepCell",
    "SweepReport",
    "TaskReport",
    "compare_on_network",
    "compare_on_operator",
    "format_table",
    "normalized_performance",
    "normalized_search_time",
    "operator_dags",
    "roofline_flops",
    "speedup",
    "sweep_networks",
    "sweep_targets",
    "write_csv",
]
