"""Experiment harness: metrics, workload suites, runners and reporting.

These utilities regenerate the evaluation-section figures and tables of the
paper; the benchmark files under ``benchmarks/`` are thin wrappers around the
runners defined here.
"""

from repro.experiments.metrics import (
    normalized_performance,
    normalized_search_time,
    speedup,
)
from repro.experiments.operator_suite import OPERATOR_SUITE, operator_dags
from repro.experiments.runner import (
    OperatorComparison,
    compare_on_operator,
    compare_on_network,
)
from repro.experiments.reporting import format_table, write_csv
from repro.experiments.sweep import SweepCell, SweepReport, roofline_flops, sweep_targets

__all__ = [
    "OPERATOR_SUITE",
    "OperatorComparison",
    "SweepCell",
    "SweepReport",
    "compare_on_network",
    "compare_on_operator",
    "format_table",
    "normalized_performance",
    "normalized_search_time",
    "operator_dags",
    "roofline_flops",
    "speedup",
    "sweep_targets",
    "write_csv",
]
