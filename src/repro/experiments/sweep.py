"""Fleet sweep: tune a workload suite across a catalog of hardware targets.

:func:`sweep_targets` drives one :class:`~repro.serving.service.TuningService`
per target over a shared :class:`~repro.serving.registry.ScheduleRegistry`, so
every target tuned after the first is warm-started from its closest relatives
— same-target structural neighbours and, crucially, **cross-target donors**:
the second device of a family typically reaches the first device's schedule
quality in a fraction of the cold trial budget.

The result is a :class:`SweepReport` with one cell per (workload, target):
best latency, achieved throughput, the analytic **roofline bound**
(``min(peak FLOP/s, arithmetic intensity × DRAM bandwidth)``), the fraction
of that bound achieved, and the transfer provenance (which donor targets
seeded the run).  Reports render as aligned text tables (``repro sweep``) and
persist to CSV for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import HARLConfig
from repro.experiments.network_runner import NetworkTuner, NetworkTuningReport
from repro.experiments.reporting import format_table, write_csv
from repro.hardware.catalog import TargetCatalog, default_catalog
from repro.hardware.target import HardwareTarget
from repro.networks.graph import NetworkGraph
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.tensor.dag import ComputeDAG

__all__ = [
    "NetworkSweepCell",
    "NetworkSweepReport",
    "SweepCell",
    "SweepReport",
    "roofline_flops",
    "sweep_networks",
    "sweep_targets",
]


def roofline_flops(dag: ComputeDAG, target: HardwareTarget) -> float:
    """Roofline performance bound of a workload on a target (FLOP/s).

    The classic two-ceiling model: compute-bound workloads cap at the
    device's peak FLOP/s, memory-bound ones at arithmetic intensity times
    DRAM bandwidth.
    """
    return float(
        min(target.peak_flops, dag.arithmetic_intensity() * target.dram_bandwidth)
    )


@dataclass(frozen=True)
class SweepCell:
    """Outcome of tuning one workload on one target."""

    workload: str
    target: str
    latency: float
    throughput: float
    trials: int
    source: str                  # scheduled / registry-hit / coalesced
    roofline: float              # FLOP/s bound of (workload, target)
    transfer_donors: Tuple[str, ...] = ()

    @property
    def roofline_fraction(self) -> float:
        """Fraction of the roofline bound the tuned schedule achieves."""
        return self.throughput / self.roofline if self.roofline > 0 else 0.0


@dataclass
class SweepReport:
    """Cross-target latency / roofline report of one fleet sweep."""

    cells: List[SweepCell] = field(default_factory=list)

    HEADERS = (
        "workload", "target", "best latency (ms)", "TFLOP/s",
        "roofline TFLOP/s", "% roofline", "trials", "source", "warm-started from",
    )

    def rows(self) -> List[List[object]]:
        return [
            [
                cell.workload,
                cell.target,
                cell.latency * 1e3,
                cell.throughput / 1e12,
                cell.roofline / 1e12,
                100.0 * cell.roofline_fraction,
                cell.trials,
                cell.source,
                ",".join(cell.transfer_donors) or "-",
            ]
            for cell in self.cells
        ]

    def format(self, title: str = "cross-target sweep") -> str:
        return format_table(list(self.HEADERS), self.rows(), title=title)

    def write_csv(self, path: Union[str, Path]) -> Path:
        return write_csv(path, list(self.HEADERS), self.rows())

    def cell(self, workload: str, target: str) -> SweepCell:
        for cell in self.cells:
            if cell.workload == workload and cell.target == target:
                return cell
        raise KeyError((workload, target))

    def targets(self) -> List[str]:
        return sorted({cell.target for cell in self.cells})

    def workloads(self) -> List[str]:
        return sorted({cell.workload for cell in self.cells})

    def transfer_cells(self) -> List[SweepCell]:
        """Cells whose tuning run was warm-started from another target."""
        return [cell for cell in self.cells if cell.transfer_donors]


def sweep_targets(
    dags: Sequence[ComputeDAG],
    targets: Sequence[Union[str, HardwareTarget]],
    n_trials: int = 32,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    scheduler: str = "harl",
    registry: Optional[ScheduleRegistry] = None,
    catalog: Optional[TargetCatalog] = None,
    num_workers: int = 1,
    record_store=None,
) -> SweepReport:
    """Tune every workload on every target, reusing knowledge across targets.

    Targets are processed in the given order over one shared registry, so
    later targets warm-start from earlier ones (the per-cell
    ``transfer_donors`` column shows which donor seeded each run).  Target
    names are resolved through ``catalog`` (the built-in catalog when
    ``None``); :class:`HardwareTarget` instances are used as-is, so derived
    synthetic variants sweep like any preset.

    ``num_workers > 1`` fans each service's measurement batches out over a
    :class:`~repro.hardware.parallel.ParallelMeasurer` pool; results are
    identical to a serial sweep for the same seed.
    """
    if not dags:
        raise ValueError("sweep needs at least one workload")
    if not targets:
        raise ValueError("sweep needs at least one target")
    catalog = catalog if catalog is not None else default_catalog()
    registry = registry if registry is not None else ScheduleRegistry()
    resolved = [
        t if isinstance(t, HardwareTarget) else catalog.get(t) for t in targets
    ]
    report = SweepReport()
    for target in resolved:
        service = TuningService(
            registry=registry,
            target=target,
            config=config,
            seed=seed,
            num_workers=num_workers,
            record_store=record_store,
            catalog=catalog,
        )
        handles = service.process(
            [
                TuningRequest(dag=dag, n_trials=n_trials, scheduler=scheduler)
                for dag in dags
            ]
        )
        for dag, handle in zip(dags, handles):
            result = handle.result
            report.cells.append(
                SweepCell(
                    workload=dag.name,
                    target=target.name,
                    latency=float(result.best_latency),
                    throughput=float(result.best_throughput),
                    trials=int(result.trials_used),
                    source=handle.source,
                    roofline=roofline_flops(dag, target),
                    transfer_donors=tuple(result.extras.get("transfer_donors", ())),
                )
            )
    return report


# --------------------------------------------------------------------------- #
# end-to-end network sweeps
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NetworkSweepCell:
    """Outcome of tuning one network end to end on one target."""

    network: str
    target: str
    latency: float               #: final end-to-end f(S)
    trials: int
    tasks: int
    registry_hits: int           #: tasks answered in O(1) from the registry
    warm_started: int            #: tasks seeded from registered donors
    policy: str


@dataclass
class NetworkSweepReport:
    """Cross-target end-to-end latency report of one network fleet sweep.

    ``reports`` keeps the full per-run :class:`NetworkTuningReport` (indexed
    like ``cells``) for drill-down into trajectories and per-task tables.
    """

    cells: List[NetworkSweepCell] = field(default_factory=list)
    reports: List[NetworkTuningReport] = field(default_factory=list)

    HEADERS = (
        "network", "target", "f(S) (ms)", "trials", "tasks",
        "registry hits", "warm-started", "policy",
    )

    def rows(self) -> List[List[object]]:
        return [
            [
                cell.network,
                cell.target,
                cell.latency * 1e3,
                cell.trials,
                cell.tasks,
                cell.registry_hits,
                cell.warm_started,
                cell.policy,
            ]
            for cell in self.cells
        ]

    def format(self, title: str = "network fleet sweep") -> str:
        return format_table(list(self.HEADERS), self.rows(), title=title)

    def write_csv(self, path: Union[str, Path]) -> Path:
        return write_csv(path, list(self.HEADERS), self.rows())

    def cell(self, network: str, target: str) -> NetworkSweepCell:
        for cell in self.cells:
            if cell.network == network and cell.target == target:
                return cell
        raise KeyError((network, target))

    def report(self, network: str, target: str) -> NetworkTuningReport:
        for report in self.reports:
            if report.network == network and report.target == target:
                return report
        raise KeyError((network, target))

    def reused_cells(self) -> List[NetworkSweepCell]:
        """Cells that reused registry knowledge (hits or warm starts)."""
        return [
            cell for cell in self.cells if cell.registry_hits or cell.warm_started
        ]


def sweep_networks(
    networks: Sequence[Union[str, NetworkGraph]],
    targets: Sequence[Union[str, HardwareTarget]],
    n_trials: int = 64,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    scheduler: str = "harl",
    policy: str = "bandit",
    registry: Optional[ScheduleRegistry] = None,
    catalog: Optional[TargetCatalog] = None,
    num_workers: int = 1,
    record_store=None,
    batch_size: int = 1,
) -> NetworkSweepReport:
    """Tune every network end to end on every target over one registry.

    One :class:`~repro.serving.service.TuningService` is created per target
    and *shared by all networks on that target*, so the second network
    warm-starts from the first's registered subgraphs (cross-network reuse)
    and later targets borrow re-fitted schedules from earlier ones
    (cross-target transfer).  ``n_trials`` is the per-network measurement
    budget; registry-answered tasks consume none of it.

    Network names (``"bert"`` / ``"resnet50"`` / ``"mobilenet_v2"``) are
    built at ``batch_size``; :class:`~repro.networks.graph.NetworkGraph`
    instances sweep as-is.
    """
    from repro.experiments.cache import build_network  # local: cache imports runner

    if not networks:
        raise ValueError("network sweep needs at least one network")
    if not targets:
        raise ValueError("network sweep needs at least one target")
    catalog = catalog if catalog is not None else default_catalog()
    registry = registry if registry is not None else ScheduleRegistry()
    resolved_targets = [
        t if isinstance(t, HardwareTarget) else catalog.get(t) for t in targets
    ]
    resolved_networks = [
        n if isinstance(n, NetworkGraph) else build_network(n, batch_size=batch_size)
        for n in networks
    ]
    report = NetworkSweepReport()
    for target in resolved_targets:
        service = TuningService(
            registry=registry,
            target=target,
            config=config,
            seed=seed,
            num_workers=num_workers,
            record_store=record_store,
            catalog=catalog,
        )
        for network in resolved_networks:
            run = NetworkTuner(
                network, service, policy=policy, scheduler=scheduler
            ).tune(n_trials)
            report.reports.append(run)
            report.cells.append(
                NetworkSweepCell(
                    network=network.name,
                    target=target.name,
                    latency=run.final_latency,
                    trials=run.trials_used,
                    tasks=len(run.tasks),
                    registry_hits=run.registry_hits,
                    warm_started=run.warm_started_tasks,
                    policy=run.policy,
                )
            )
    return report
