"""Fleet sweep: tune a workload suite across a catalog of hardware targets.

:func:`sweep_targets` drives one :class:`~repro.serving.service.TuningService`
per target over a shared :class:`~repro.serving.registry.ScheduleRegistry`, so
every target tuned after the first is warm-started from its closest relatives
— same-target structural neighbours and, crucially, **cross-target donors**:
the second device of a family typically reaches the first device's schedule
quality in a fraction of the cold trial budget.

The result is a :class:`SweepReport` with one cell per (workload, target):
best latency, achieved throughput, the analytic **roofline bound**
(``min(peak FLOP/s, arithmetic intensity × DRAM bandwidth)``), the fraction
of that bound achieved, and the transfer provenance (which donor targets
seeded the run).  Reports render as aligned text tables (``repro sweep``) and
persist to CSV for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import HARLConfig
from repro.experiments.reporting import format_table, write_csv
from repro.hardware.catalog import TargetCatalog, default_catalog
from repro.hardware.target import HardwareTarget
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.tensor.dag import ComputeDAG

__all__ = ["SweepCell", "SweepReport", "roofline_flops", "sweep_targets"]


def roofline_flops(dag: ComputeDAG, target: HardwareTarget) -> float:
    """Roofline performance bound of a workload on a target (FLOP/s).

    The classic two-ceiling model: compute-bound workloads cap at the
    device's peak FLOP/s, memory-bound ones at arithmetic intensity times
    DRAM bandwidth.
    """
    return float(
        min(target.peak_flops, dag.arithmetic_intensity() * target.dram_bandwidth)
    )


@dataclass(frozen=True)
class SweepCell:
    """Outcome of tuning one workload on one target."""

    workload: str
    target: str
    latency: float
    throughput: float
    trials: int
    source: str                  # scheduled / registry-hit / coalesced
    roofline: float              # FLOP/s bound of (workload, target)
    transfer_donors: Tuple[str, ...] = ()

    @property
    def roofline_fraction(self) -> float:
        """Fraction of the roofline bound the tuned schedule achieves."""
        return self.throughput / self.roofline if self.roofline > 0 else 0.0


@dataclass
class SweepReport:
    """Cross-target latency / roofline report of one fleet sweep."""

    cells: List[SweepCell] = field(default_factory=list)

    HEADERS = (
        "workload", "target", "best latency (ms)", "TFLOP/s",
        "roofline TFLOP/s", "% roofline", "trials", "source", "warm-started from",
    )

    def rows(self) -> List[List[object]]:
        return [
            [
                cell.workload,
                cell.target,
                cell.latency * 1e3,
                cell.throughput / 1e12,
                cell.roofline / 1e12,
                100.0 * cell.roofline_fraction,
                cell.trials,
                cell.source,
                ",".join(cell.transfer_donors) or "-",
            ]
            for cell in self.cells
        ]

    def format(self, title: str = "cross-target sweep") -> str:
        return format_table(list(self.HEADERS), self.rows(), title=title)

    def write_csv(self, path: Union[str, Path]) -> Path:
        return write_csv(path, list(self.HEADERS), self.rows())

    def cell(self, workload: str, target: str) -> SweepCell:
        for cell in self.cells:
            if cell.workload == workload and cell.target == target:
                return cell
        raise KeyError((workload, target))

    def targets(self) -> List[str]:
        return sorted({cell.target for cell in self.cells})

    def workloads(self) -> List[str]:
        return sorted({cell.workload for cell in self.cells})

    def transfer_cells(self) -> List[SweepCell]:
        """Cells whose tuning run was warm-started from another target."""
        return [cell for cell in self.cells if cell.transfer_donors]


def sweep_targets(
    dags: Sequence[ComputeDAG],
    targets: Sequence[Union[str, HardwareTarget]],
    n_trials: int = 32,
    config: Optional[HARLConfig] = None,
    seed: int = 0,
    scheduler: str = "harl",
    registry: Optional[ScheduleRegistry] = None,
    catalog: Optional[TargetCatalog] = None,
    num_workers: int = 1,
    record_store=None,
) -> SweepReport:
    """Tune every workload on every target, reusing knowledge across targets.

    Targets are processed in the given order over one shared registry, so
    later targets warm-start from earlier ones (the per-cell
    ``transfer_donors`` column shows which donor seeded each run).  Target
    names are resolved through ``catalog`` (the built-in catalog when
    ``None``); :class:`HardwareTarget` instances are used as-is, so derived
    synthetic variants sweep like any preset.

    ``num_workers > 1`` fans each service's measurement batches out over a
    :class:`~repro.hardware.parallel.ParallelMeasurer` pool; results are
    identical to a serial sweep for the same seed.
    """
    if not dags:
        raise ValueError("sweep needs at least one workload")
    if not targets:
        raise ValueError("sweep needs at least one target")
    catalog = catalog if catalog is not None else default_catalog()
    registry = registry if registry is not None else ScheduleRegistry()
    resolved = [
        t if isinstance(t, HardwareTarget) else catalog.get(t) for t in targets
    ]
    report = SweepReport()
    for target in resolved:
        service = TuningService(
            registry=registry,
            target=target,
            config=config,
            seed=seed,
            num_workers=num_workers,
            record_store=record_store,
            catalog=catalog,
        )
        handles = service.process(
            [
                TuningRequest(dag=dag, n_trials=n_trials, scheduler=scheduler)
                for dag in dags
            ]
        )
        for dag, handle in zip(dags, handles):
            result = handle.result
            report.cells.append(
                SweepCell(
                    workload=dag.name,
                    target=target.name,
                    latency=float(result.best_latency),
                    throughput=float(result.best_throughput),
                    trials=int(result.trials_used),
                    source=handle.source,
                    roofline=roofline_flops(dag, target),
                    transfer_donors=tuple(result.extras.get("transfer_donors", ())),
                )
            )
    return report
