"""Tensor operator benchmark suite (Table 6 of the paper).

Each operator class (GEMM-S/M/L, C1D, C2D, C3D, T2D) is evaluated on four
parameter configurations; :func:`operator_dags` instantiates the compute DAGs
for a given batch size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.tensor.dag import ComputeDAG
from repro.tensor.workloads import conv1d, conv2d, conv2d_transpose, conv3d, gemm

__all__ = ["OPERATOR_SUITE", "OPERATOR_CLASSES", "operator_dags", "representative_dag"]

#: Table 6: operator class -> list of parameter tuples.
OPERATOR_SUITE: Dict[str, List[Tuple[int, ...]]] = {
    # (M, K, N)
    "GEMM-S": [(128, 128, 128), (128, 256, 128), (256, 256, 256), (512, 32, 512)],
    "GEMM-M": [(512, 512, 512), (128, 1536, 512), (128, 512, 1536), (256, 1024, 512)],
    "GEMM-L": [(1024, 1024, 1024), (128, 3072, 768), (128, 768, 3072), (256, 1536, 768)],
    # (L, Ci, Co, K, stride, padding)
    "C1D": [
        (256, 64, 128, 3, 2, 1),
        (128, 128, 256, 1, 2, 0),
        (64, 256, 256, 5, 1, 2),
        (32, 512, 512, 3, 1, 1),
    ],
    # (H, W, Ci, Co, K, stride, padding)
    "C2D": [
        (224, 224, 3, 64, 7, 2, 3),
        (56, 56, 64, 64, 1, 1, 0),
        (14, 14, 256, 256, 3, 1, 1),
        (7, 7, 512, 512, 3, 1, 1),
    ],
    # (D, H, W, Ci, Co, K, stride, padding)
    "C3D": [
        (16, 224, 224, 3, 64, 7, 2, 3),
        (16, 56, 56, 64, 64, 1, 1, 0),
        (16, 14, 14, 256, 256, 3, 1, 1),
        (16, 7, 7, 512, 512, 3, 1, 1),
    ],
    # (H, W, Ci, Co, K, stride, padding)
    "T2D": [
        (4, 4, 512, 256, 4, 2, 1),
        (8, 8, 256, 128, 4, 2, 1),
        (16, 16, 128, 64, 4, 2, 1),
        (32, 32, 64, 3, 4, 2, 1),
    ],
}

OPERATOR_CLASSES: Tuple[str, ...] = tuple(OPERATOR_SUITE.keys())


def _build(op_class: str, params: Sequence[int], batch: int) -> ComputeDAG:
    if op_class.startswith("GEMM"):
        m, k, n = params
        return gemm(m, k, n, batch=batch)
    if op_class == "C1D":
        length, ci, co, kernel, stride, padding = params
        return conv1d(length, ci, co, kernel, stride, padding, batch=batch)
    if op_class == "C2D":
        h, w, ci, co, kernel, stride, padding = params
        return conv2d(h, w, ci, co, kernel, stride, padding, batch=batch)
    if op_class == "C3D":
        d, h, w, ci, co, kernel, stride, padding = params
        return conv3d(d, h, w, ci, co, kernel, stride, padding, batch=batch)
    if op_class == "T2D":
        h, w, ci, co, kernel, stride, padding = params
        return conv2d_transpose(h, w, ci, co, kernel, stride, padding, batch=batch)
    raise KeyError(f"unknown operator class {op_class!r}")


def operator_dags(op_class: str, batch: int = 1, limit: int | None = None) -> List[ComputeDAG]:
    """Instantiate the DAGs of one operator class for a given batch size.

    ``limit`` caps the number of configurations (the CI-scale benches tune only
    the first configuration of each class; the paper-scale run uses all four).
    """
    if op_class not in OPERATOR_SUITE:
        raise KeyError(f"unknown operator class {op_class!r}; known: {OPERATOR_CLASSES}")
    configs = OPERATOR_SUITE[op_class]
    if limit is not None:
        configs = configs[: max(1, limit)]
    return [_build(op_class, params, batch) for params in configs]


def representative_dag(op_class: str, batch: int = 1) -> ComputeDAG:
    """The first (representative) configuration of an operator class."""
    return operator_dags(op_class, batch=batch, limit=1)[0]
