"""Tensor program substrate.

This package replaces the role TVM's ``auto_scheduler`` plays in the paper: it
defines compute DAGs for the benchmark operators, generates Ansor-style
sketches, and represents low-level schedule states (tile sizes, compute-at
positions, parallel fusion, auto-unroll) together with the modification
actions of Table 3.
"""

from repro.tensor.dag import ComputeDAG, Iterator, Stage
from repro.tensor.workloads import (
    batch_gemm,
    conv1d,
    conv2d,
    conv2d_transpose,
    conv3d,
    elementwise,
    gemm,
    gemm_tanh,
    softmax,
)
from repro.tensor.sketch import Sketch, generate_sketches
from repro.tensor.schedule import Schedule
from repro.tensor.actions import (
    ActionSpace,
    ModificationAction,
    apply_action,
)
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.features import FEATURE_SIZE, schedule_features
from repro.tensor.lowering import loop_structure, lower_schedule

__all__ = [
    "ComputeDAG",
    "Iterator",
    "Stage",
    "Sketch",
    "Schedule",
    "ActionSpace",
    "ModificationAction",
    "FEATURE_SIZE",
    "apply_action",
    "batch_gemm",
    "conv1d",
    "conv2d",
    "conv2d_transpose",
    "conv3d",
    "elementwise",
    "gemm",
    "gemm_tanh",
    "generate_sketches",
    "loop_structure",
    "lower_schedule",
    "sample_initial_schedules",
    "schedule_features",
    "softmax",
]
