"""Workload (operator) definitions.

Each factory builds a :class:`~repro.tensor.dag.ComputeDAG` describing one of
the tensor operators evaluated in the paper: GEMM, batched GEMM, 1D/2D/3D
convolution, transposed 2D convolution, softmax, element-wise chains and the
BERT pooler GEMM+tanh.  Shapes follow Table 6 of the paper (see
``repro.experiments.operator_suite`` for the exact benchmark configurations).
"""

from __future__ import annotations

from typing import Sequence

from repro.tensor.dag import DTYPE_BYTES, ComputeDAG, make_stage

__all__ = [
    "gemm",
    "batch_gemm",
    "gemm_tanh",
    "conv1d",
    "conv2d",
    "conv3d",
    "conv2d_transpose",
    "softmax",
    "elementwise",
]


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def gemm(m: int, k: int, n: int, batch: int = 1, bias: bool = True, name: str | None = None) -> ComputeDAG:
    """Dense matrix multiplication ``C[m, n] = sum_k A[m, k] * B[k, n]``.

    ``batch`` multiplies the M dimension (batched rows), matching how the
    paper scales operator benchmarks with batch size.  A bias-add epilogue is
    attached by default so the Tiling-with-Fusion / Cache-Write sketch rules
    have a consumer to work with.
    """
    m_total = m * batch
    stages = [
        make_stage("A", [("am", m_total), ("ak", k)], kind="input"),
        make_stage("B", [("bk", k), ("bn", n)], kind="input"),
        make_stage(
            "matmul",
            [("i", m_total), ("j", n)],
            [("k", k)],
            kind="compute",
            producers=("A", "B"),
            flops_per_element=2.0,
        ),
    ]
    out_elems = m_total * n
    if bias:
        stages.append(
            make_stage(
                "bias_add",
                [("i", m_total), ("j", n)],
                kind="elementwise",
                producers=("matmul",),
                flops_per_element=1.0,
            )
        )
    dag_name = name or f"gemm_m{m}k{k}n{n}_b{batch}"
    return ComputeDAG(
        name=dag_name,
        stages=stages,
        main_stage_name="matmul",
        input_bytes=DTYPE_BYTES * (m_total * k + k * n),
        output_bytes=DTYPE_BYTES * out_elems,
        tags={"op": "gemm", "shape": (m, k, n), "batch": batch},
    )


def batch_gemm(b: int, m: int, k: int, n: int, batch: int = 1, name: str | None = None) -> ComputeDAG:
    """Batched matrix multiplication ``C[b, m, n] = sum_k A[b, m, k] * B[b, k, n]``.

    Used for the attention score / context matmuls of BERT (``Batch_GEMM-I/II``
    in Table 4).
    """
    b_total = b * batch
    stages = [
        make_stage("A", [("ab", b_total), ("am", m), ("ak", k)], kind="input"),
        make_stage("B", [("bb", b_total), ("bk", k), ("bn", n)], kind="input"),
        make_stage(
            "batch_matmul",
            [("b", b_total), ("i", m), ("j", n)],
            [("k", k)],
            kind="compute",
            producers=("A", "B"),
            flops_per_element=2.0,
        ),
    ]
    return ComputeDAG(
        name=name or f"batch_gemm_b{b}m{m}k{k}n{n}_batch{batch}",
        stages=stages,
        main_stage_name="batch_matmul",
        input_bytes=DTYPE_BYTES * (b_total * m * k + b_total * k * n),
        output_bytes=DTYPE_BYTES * b_total * m * n,
        tags={"op": "batch_gemm", "shape": (b, m, k, n), "batch": batch},
    )


def gemm_tanh(m: int, k: int, n: int, batch: int = 1, name: str | None = None) -> ComputeDAG:
    """GEMM followed by a tanh activation (the BERT pooler subgraph)."""
    dag = gemm(m, k, n, batch=batch, bias=True, name=name or f"gemm_tanh_m{m}k{k}n{n}_b{batch}")
    dag.stages.append(
        make_stage(
            "tanh",
            [("i", m * batch), ("j", n)],
            kind="elementwise",
            producers=("bias_add",),
            flops_per_element=4.0,
        )
    )
    dag.tags["op"] = "gemm_tanh"
    return dag


def conv1d(
    length: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    padding: int,
    batch: int = 1,
    name: str | None = None,
) -> ComputeDAG:
    """1D convolution (NCW layout) with a ReLU epilogue."""
    out_l = _conv_out(length, kernel, stride, padding)
    stages = [
        make_stage("data", [("n", batch), ("ci", in_channels), ("l", length)], kind="input"),
        make_stage("weight", [("co", out_channels), ("ci", in_channels), ("kl", kernel)], kind="input"),
        make_stage(
            "pad",
            [("n", batch), ("ci", in_channels), ("l", length + 2 * padding)],
            kind="elementwise",
            producers=("data",),
            flops_per_element=0.0,
        ),
        make_stage(
            "conv1d",
            [("n", batch), ("co", out_channels), ("ol", out_l)],
            [("ci", in_channels), ("kl", kernel)],
            kind="compute",
            producers=("pad", "weight"),
            flops_per_element=2.0,
        ),
        make_stage(
            "relu",
            [("n", batch), ("co", out_channels), ("ol", out_l)],
            kind="elementwise",
            producers=("conv1d",),
            flops_per_element=1.0,
        ),
    ]
    return ComputeDAG(
        name=name or f"conv1d_l{length}ci{in_channels}co{out_channels}k{kernel}s{stride}p{padding}_b{batch}",
        stages=stages,
        main_stage_name="conv1d",
        input_bytes=DTYPE_BYTES * (batch * in_channels * length + out_channels * in_channels * kernel),
        output_bytes=DTYPE_BYTES * batch * out_channels * out_l,
        tags={"op": "conv1d", "shape": (length, in_channels, out_channels, kernel, stride, padding), "batch": batch},
    )


def conv2d(
    height: int,
    width: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    padding: int,
    batch: int = 1,
    groups: int = 1,
    name: str | None = None,
) -> ComputeDAG:
    """2D convolution (NCHW layout) with a ReLU epilogue.

    ``groups == in_channels == out_channels`` yields a depthwise convolution
    (used by MobileNet-V2); grouped reduction extents shrink accordingly.
    """
    if in_channels % groups or out_channels % groups:
        raise ValueError("channels must be divisible by groups")
    out_h = _conv_out(height, kernel, stride, padding)
    out_w = _conv_out(width, kernel, stride, padding)
    ci_per_group = in_channels // groups
    stages = [
        make_stage("data", [("n", batch), ("ci", in_channels), ("h", height), ("w", width)], kind="input"),
        make_stage(
            "weight",
            [("co", out_channels), ("ci", ci_per_group), ("kh", kernel), ("kw", kernel)],
            kind="input",
        ),
        make_stage(
            "pad",
            [("n", batch), ("ci", in_channels), ("h", height + 2 * padding), ("w", width + 2 * padding)],
            kind="elementwise",
            producers=("data",),
            flops_per_element=0.0,
        ),
        make_stage(
            "conv2d",
            [("n", batch), ("co", out_channels), ("oh", out_h), ("ow", out_w)],
            [("ci", ci_per_group), ("kh", kernel), ("kw", kernel)],
            kind="compute",
            producers=("pad", "weight"),
            flops_per_element=2.0,
        ),
        make_stage(
            "relu",
            [("n", batch), ("co", out_channels), ("oh", out_h), ("ow", out_w)],
            kind="elementwise",
            producers=("conv2d",),
            flops_per_element=1.0,
        ),
    ]
    op = "depthwise_conv2d" if groups == in_channels and groups > 1 else "conv2d"
    return ComputeDAG(
        name=name
        or f"{op}_h{height}w{width}ci{in_channels}co{out_channels}k{kernel}s{stride}p{padding}_b{batch}",
        stages=stages,
        main_stage_name="conv2d",
        input_bytes=DTYPE_BYTES
        * (batch * in_channels * height * width + out_channels * ci_per_group * kernel * kernel),
        output_bytes=DTYPE_BYTES * batch * out_channels * out_h * out_w,
        tags={
            "op": op,
            "shape": (height, width, in_channels, out_channels, kernel, stride, padding),
            "batch": batch,
            "groups": groups,
        },
    )


def conv3d(
    depth: int,
    height: int,
    width: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    padding: int,
    batch: int = 1,
    name: str | None = None,
) -> ComputeDAG:
    """3D convolution (NCDHW layout) with a ReLU epilogue."""
    out_d = _conv_out(depth, kernel, stride, padding)
    out_h = _conv_out(height, kernel, stride, padding)
    out_w = _conv_out(width, kernel, stride, padding)
    stages = [
        make_stage(
            "data",
            [("n", batch), ("ci", in_channels), ("d", depth), ("h", height), ("w", width)],
            kind="input",
        ),
        make_stage(
            "weight",
            [("co", out_channels), ("ci", in_channels), ("kd", kernel), ("kh", kernel), ("kw", kernel)],
            kind="input",
        ),
        make_stage(
            "conv3d",
            [("n", batch), ("co", out_channels), ("od", out_d), ("oh", out_h), ("ow", out_w)],
            [("ci", in_channels), ("kd", kernel), ("kh", kernel), ("kw", kernel)],
            kind="compute",
            producers=("data", "weight"),
            flops_per_element=2.0,
        ),
        make_stage(
            "relu",
            [("n", batch), ("co", out_channels), ("od", out_d), ("oh", out_h), ("ow", out_w)],
            kind="elementwise",
            producers=("conv3d",),
            flops_per_element=1.0,
        ),
    ]
    return ComputeDAG(
        name=name
        or f"conv3d_d{depth}h{height}w{width}ci{in_channels}co{out_channels}k{kernel}s{stride}p{padding}_b{batch}",
        stages=stages,
        main_stage_name="conv3d",
        input_bytes=DTYPE_BYTES
        * (
            batch * in_channels * depth * height * width
            + out_channels * in_channels * kernel ** 3
        ),
        output_bytes=DTYPE_BYTES * batch * out_channels * out_d * out_h * out_w,
        tags={
            "op": "conv3d",
            "shape": (depth, height, width, in_channels, out_channels, kernel, stride, padding),
            "batch": batch,
        },
    )


def conv2d_transpose(
    height: int,
    width: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    padding: int,
    batch: int = 1,
    name: str | None = None,
) -> ComputeDAG:
    """Transposed 2D convolution (deconvolution), the T2D operator of Table 6."""
    out_h = (height - 1) * stride - 2 * padding + kernel
    out_w = (width - 1) * stride - 2 * padding + kernel
    if out_h < 1 or out_w < 1:
        raise ValueError("invalid transposed convolution geometry")
    stages = [
        make_stage("data", [("n", batch), ("ci", in_channels), ("h", height), ("w", width)], kind="input"),
        make_stage(
            "weight",
            [("ci", in_channels), ("co", out_channels), ("kh", kernel), ("kw", kernel)],
            kind="input",
        ),
        make_stage(
            "dilate",
            [("n", batch), ("ci", in_channels), ("dh", height * stride), ("dw", width * stride)],
            kind="elementwise",
            producers=("data",),
            flops_per_element=0.0,
        ),
        make_stage(
            "conv2d_transpose",
            [("n", batch), ("co", out_channels), ("oh", out_h), ("ow", out_w)],
            [("ci", in_channels), ("kh", kernel), ("kw", kernel)],
            kind="compute",
            producers=("dilate", "weight"),
            flops_per_element=2.0,
        ),
    ]
    return ComputeDAG(
        name=name
        or f"t2d_h{height}w{width}ci{in_channels}co{out_channels}k{kernel}s{stride}p{padding}_b{batch}",
        stages=stages,
        main_stage_name="conv2d_transpose",
        input_bytes=DTYPE_BYTES
        * (batch * in_channels * height * width + in_channels * out_channels * kernel * kernel),
        output_bytes=DTYPE_BYTES * batch * out_channels * out_h * out_w,
        tags={
            "op": "conv2d_transpose",
            "shape": (height, width, in_channels, out_channels, kernel, stride, padding),
            "batch": batch,
        },
    )


def softmax(rows: int, cols: int, batch: int = 1, name: str | None = None) -> ComputeDAG:
    """Row-wise softmax over a ``rows x cols`` matrix (the BERT attention softmax)."""
    r_total = rows * batch
    stages = [
        make_stage("logits", [("i", r_total), ("j", cols)], kind="input"),
        make_stage(
            "row_max",
            [("i", r_total)],
            [("j", cols)],
            kind="reduction",
            producers=("logits",),
            flops_per_element=1.0,
        ),
        make_stage(
            "exp",
            [("i", r_total), ("j", cols)],
            kind="compute",
            producers=("logits", "row_max"),
            flops_per_element=4.0,
        ),
        make_stage(
            "row_sum",
            [("i", r_total)],
            [("j", cols)],
            kind="reduction",
            producers=("exp",),
            flops_per_element=1.0,
        ),
        make_stage(
            "normalize",
            [("i", r_total), ("j", cols)],
            kind="elementwise",
            producers=("exp", "row_sum"),
            flops_per_element=1.0,
        ),
    ]
    return ComputeDAG(
        name=name or f"softmax_r{rows}c{cols}_b{batch}",
        stages=stages,
        main_stage_name="exp",
        input_bytes=DTYPE_BYTES * r_total * cols,
        output_bytes=DTYPE_BYTES * r_total * cols,
        tags={"op": "softmax", "shape": (rows, cols), "batch": batch},
    )


def elementwise(shape: Sequence[int], num_ops: int = 2, batch: int = 1, name: str | None = None) -> ComputeDAG:
    """A chain of ``num_ops`` element-wise operations over a tensor of ``shape``.

    Models the add-layernorm / GELU element-wise subgraphs of BERT
    (``Element-wise-I/II`` in Table 4).
    """
    if num_ops < 1:
        raise ValueError("num_ops must be >= 1")
    dims = [("d0", int(shape[0]) * batch)] + [(f"d{i}", int(s)) for i, s in enumerate(shape[1:], start=1)]
    elements = 1
    for _, extent in dims:
        elements *= extent
    stages = [make_stage("x", dims, kind="input")]
    prev = "x"
    for idx in range(num_ops):
        stage_name = f"ew{idx}"
        kind = "compute" if idx == 0 else "elementwise"
        stages.append(
            make_stage(
                stage_name,
                dims,
                kind=kind,
                producers=(prev,),
                flops_per_element=2.0,
            )
        )
        prev = stage_name
    return ComputeDAG(
        name=name or f"elementwise_{'x'.join(str(s) for s in shape)}_ops{num_ops}_b{batch}",
        stages=stages,
        main_stage_name="ew0",
        input_bytes=DTYPE_BYTES * elements,
        output_bytes=DTYPE_BYTES * elements,
        tags={"op": "elementwise", "shape": tuple(int(s) for s in shape), "batch": batch, "num_ops": num_ops},
    )
