"""Integer factorisation helpers used for tile-size manipulation.

Tile sizes in a schedule are represented as a list of positive integer factors
whose product equals the loop extent.  The tiling modification of Table 3
moves the smallest prime factor (> 1) from one tile slot to another, so most
of the arithmetic here is about prime factors and factorisations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

import numpy as np

__all__ = [
    "prime_factors",
    "smallest_prime_factor",
    "all_factorizations",
    "random_factorization",
    "move_factor",
    "product",
]


def product(values: Sequence[int]) -> int:
    """Integer product of a sequence (1 for the empty sequence)."""
    out = 1
    for v in values:
        out *= int(v)
    return out


@lru_cache(maxsize=4096)
def prime_factors(n: int) -> tuple:
    """Return the prime factorisation of ``n`` as a sorted tuple.

    ``prime_factors(12) == (2, 2, 3)``; ``prime_factors(1) == ()``.
    """
    if n < 1:
        raise ValueError(f"extent must be positive, got {n}")
    factors: List[int] = []
    remaining = n
    d = 2
    while d * d <= remaining:
        while remaining % d == 0:
            factors.append(d)
            remaining //= d
        d += 1 if d == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return tuple(factors)


def smallest_prime_factor(n: int) -> int:
    """Smallest prime factor of ``n`` (> 1).  Raises for ``n <= 1``."""
    if n <= 1:
        raise ValueError(f"no prime factor for {n}")
    return prime_factors(n)[0]


def all_factorizations(extent: int, levels: int, limit: int = 2048) -> List[List[int]]:
    """Enumerate factorisations of ``extent`` into ``levels`` ordered factors.

    Used by tests and by exhaustive baselines on small spaces.  The number of
    factorisations grows combinatorially, so enumeration stops after ``limit``
    entries.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    results: List[List[int]] = []

    def recurse(remaining: int, slots: int, prefix: List[int]) -> None:
        if len(results) >= limit:
            return
        if slots == 1:
            results.append(prefix + [remaining])
            return
        for f in _divisors(remaining):
            recurse(remaining // f, slots - 1, prefix + [f])
            if len(results) >= limit:
                return

    recurse(extent, levels, [])
    return results


@lru_cache(maxsize=4096)
def _divisors(n: int) -> tuple:
    divs = [d for d in range(1, n + 1) if n % d == 0]
    return tuple(divs)


def random_factorization(extent: int, levels: int, rng: np.random.Generator) -> List[int]:
    """Sample a uniform-ish random factorisation of ``extent`` into ``levels`` factors.

    Each prime factor of the extent is assigned to a uniformly random slot,
    which covers the whole factorisation space (every factorisation has
    positive probability).
    """
    sizes = [1] * levels
    for p in prime_factors(extent):
        slot = int(rng.integers(0, levels))
        sizes[slot] *= p
    return sizes


def move_factor(sizes: Sequence[int], src: int, dst: int) -> List[int]:
    """Move the smallest prime factor (> 1) from slot ``src`` to slot ``dst``.

    Returns a new list; the original is not modified.  If the source slot is 1
    (nothing to move) or ``src == dst``, the factorisation is returned
    unchanged — that mirrors the "dummy" semantics of invalid tiling moves.
    """
    sizes = [int(s) for s in sizes]
    if src == dst:
        return sizes
    if not (0 <= src < len(sizes)) or not (0 <= dst < len(sizes)):
        raise IndexError(f"slot out of range: src={src}, dst={dst}, len={len(sizes)}")
    if sizes[src] <= 1:
        return sizes
    p = smallest_prime_factor(sizes[src])
    sizes[src] //= p
    sizes[dst] *= p
    return sizes
