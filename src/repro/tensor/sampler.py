"""Random initial schedule sampling.

Each search round (an RL "episode" in HARL, a generation in Ansor's
evolutionary search) starts from a batch of randomly sampled schedule states:
the chosen sketch's tile slots are filled by randomly distributing the prime
factors of each loop extent, and the remaining knobs (compute-at, parallel
loop count, unroll depth) are drawn uniformly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.tensor.factors import random_factorization
from repro.tensor.schedule import CPU_UNROLL_DEPTHS, Schedule
from repro.tensor.sketch import Sketch

__all__ = ["sample_schedule", "sample_initial_schedules"]


def sample_schedule(
    sketch: Sketch,
    rng: np.random.Generator,
    unroll_depths: Tuple[int, ...] = CPU_UNROLL_DEPTHS,
) -> Schedule:
    """Sample one random schedule for ``sketch``."""
    tile_sizes = [
        random_factorization(extent, levels, rng)
        for (_name, _kind, extent, levels) in sketch.tiled_iters
    ]
    n_candidates = len(sketch.dag.compute_at_candidates())
    max_parallel = len(sketch.dag.main_stage.spatial_iters)
    return Schedule(
        sketch=sketch,
        tile_sizes=tile_sizes,
        compute_at_index=int(rng.integers(0, n_candidates)),
        num_parallel=int(rng.integers(0, max_parallel + 1)),
        unroll_index=int(rng.integers(0, len(unroll_depths))),
        unroll_depths=unroll_depths,
    )


def sample_initial_schedules(
    sketch: Sketch,
    count: int,
    rng: np.random.Generator,
    unroll_depths: Tuple[int, ...] = CPU_UNROLL_DEPTHS,
    dedup: bool = True,
    max_attempts_factor: int = 8,
) -> List[Schedule]:
    """Sample ``count`` initial schedules (the starting points of schedule tracks).

    With ``dedup`` enabled (the default) the sampler retries to avoid exact
    duplicates; if the space is too small to provide ``count`` distinct
    schedules, duplicates are allowed so the caller always receives exactly
    ``count`` entries.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    schedules: List[Schedule] = []
    seen = set()
    attempts = 0
    max_attempts = count * max_attempts_factor
    while len(schedules) < count and attempts < max_attempts:
        attempts += 1
        candidate = sample_schedule(sketch, rng, unroll_depths)
        if dedup and candidate.signature() in seen:
            continue
        seen.add(candidate.signature())
        schedules.append(candidate)
    while len(schedules) < count:
        schedules.append(sample_schedule(sketch, rng, unroll_depths))
    return schedules
