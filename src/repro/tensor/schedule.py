"""Schedule state representation.

A :class:`Schedule` is one point of the low-level parameter search space: a
sketch plus concrete values for every tuning knob — per-iterator multi-level
tile sizes, the compute-at position of the fused/cached stage, the number of
fused outer loops that run in parallel, and the auto-unroll depth.  The RL
agent and the evolutionary search both operate on these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.tensor.factors import product
from repro.tensor.sketch import Sketch

__all__ = ["Schedule", "CPU_UNROLL_DEPTHS", "GPU_UNROLL_DEPTHS"]

#: Auto-unroll depth candidate lists (Appendix A.1 of the paper).
CPU_UNROLL_DEPTHS: Tuple[int, ...] = (0, 16, 64, 512)
GPU_UNROLL_DEPTHS: Tuple[int, ...] = (0, 16, 64, 512, 1024)


@dataclass
class Schedule:
    """A fully-specified tensor program candidate.

    Attributes
    ----------
    sketch:
        The sketch (program structure) this schedule instantiates.
    tile_sizes:
        One factor list per tiled iterator (aligned with
        ``sketch.tiled_iters``), ordered outermost → innermost; the product of
        each list equals the iterator extent.
    compute_at_index:
        Index into ``sketch.dag.compute_at_candidates()`` selecting where the
        fused consumer / cached output stage is computed.
    num_parallel:
        Number of fused outermost spatial loops executed in parallel.
    unroll_index:
        Index into ``unroll_depths`` selecting the ``pragma unroll`` depth.
    unroll_depths:
        The candidate unroll depth list (target dependent).
    """

    sketch: Sketch
    tile_sizes: List[List[int]]
    compute_at_index: int
    num_parallel: int
    unroll_index: int
    unroll_depths: Tuple[int, ...] = CPU_UNROLL_DEPTHS

    def __post_init__(self) -> None:
        tiled = self.sketch.tiled_iters
        if len(self.tile_sizes) != len(tiled):
            raise ValueError(
                f"expected {len(tiled)} tile-size lists, got {len(self.tile_sizes)}"
            )
        for sizes, (name, _kind, extent, levels) in zip(self.tile_sizes, tiled):
            if len(sizes) != levels:
                raise ValueError(
                    f"iterator {name!r} expects {levels} tile levels, got {len(sizes)}"
                )
            if product(sizes) != extent:
                raise ValueError(
                    f"tile sizes {sizes} of iterator {name!r} do not multiply to extent {extent}"
                )
            if any(s < 1 for s in sizes):
                raise ValueError(f"non-positive tile size in {sizes} for iterator {name!r}")
        n_candidates = len(self.sketch.dag.compute_at_candidates())
        if not (0 <= self.compute_at_index < n_candidates):
            raise ValueError(
                f"compute_at_index {self.compute_at_index} out of range [0, {n_candidates})"
            )
        max_parallel = len(self.sketch.dag.main_stage.spatial_iters)
        if not (0 <= self.num_parallel <= max_parallel):
            raise ValueError(f"num_parallel {self.num_parallel} out of range [0, {max_parallel}]")
        if not (0 <= self.unroll_index < len(self.unroll_depths)):
            raise ValueError(
                f"unroll_index {self.unroll_index} out of range [0, {len(self.unroll_depths)})"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def dag(self):
        return self.sketch.dag

    @property
    def unroll_depth(self) -> int:
        return self.unroll_depths[self.unroll_index]

    @property
    def max_parallel(self) -> int:
        return len(self.sketch.dag.main_stage.spatial_iters)

    @property
    def num_tile_slots(self) -> int:
        return sum(len(sizes) for sizes in self.tile_sizes)

    def slot_to_iter(self, slot: int) -> Tuple[int, int]:
        """Map a flattened tile slot index to ``(iter_index, level_index)``."""
        if slot < 0:
            raise IndexError(slot)
        offset = slot
        for iter_idx, sizes in enumerate(self.tile_sizes):
            if offset < len(sizes):
                return iter_idx, offset
            offset -= len(sizes)
        raise IndexError(slot)

    def flat_tile_sizes(self) -> List[int]:
        """All tile sizes flattened in slot order."""
        out: List[int] = []
        for sizes in self.tile_sizes:
            out.extend(sizes)
        return out

    def spatial_tile_sizes(self) -> List[List[int]]:
        return [
            sizes
            for sizes, (_n, kind, _e, _l) in zip(self.tile_sizes, self.sketch.tiled_iters)
            if kind == "spatial"
        ]

    def reduction_tile_sizes(self) -> List[List[int]]:
        return [
            sizes
            for sizes, (_n, kind, _e, _l) in zip(self.tile_sizes, self.sketch.tiled_iters)
            if kind == "reduction"
        ]

    def parallel_extent(self) -> int:
        """Iterations executed by the fused outer parallel loop."""
        if self.num_parallel == 0:
            return 1
        extent = 1
        for sizes in self.spatial_tile_sizes()[: self.num_parallel]:
            extent *= sizes[0]
        return extent

    def innermost_spatial_volume(self) -> int:
        """Product of the innermost-level spatial tile sizes (the register tile)."""
        vol = 1
        for sizes in self.spatial_tile_sizes():
            vol *= sizes[-1]
        return vol

    def innermost_reduction_volume(self) -> int:
        vol = 1
        for sizes in self.reduction_tile_sizes():
            vol *= sizes[-1]
        return vol

    # ------------------------------------------------------------------ #
    # Identity / copying
    # ------------------------------------------------------------------ #
    def signature(self) -> Tuple:
        """Hashable identity of the schedule (used for dedup and the simulator's
        deterministic per-schedule ruggedness).

        Deliberately keyed on the display name, not the structural
        fingerprint: the simulator's rugged landscape is seeded from this
        signature, and re-keying it would re-roll every simulated latency in
        the repository.  Structural identity (dedup, record routing, the
        schedule registry) lives in
        :func:`repro.tensor.dag.structural_fingerprint` instead.
        """
        return (
            self.sketch.dag.name,
            self.sketch.key,
            tuple(tuple(sizes) for sizes in self.tile_sizes),
            self.compute_at_index,
            self.num_parallel,
            self.unroll_index,
        )

    def copy(self) -> "Schedule":
        return Schedule(
            sketch=self.sketch,
            tile_sizes=[list(sizes) for sizes in self.tile_sizes],
            compute_at_index=self.compute_at_index,
            num_parallel=self.num_parallel,
            unroll_index=self.unroll_index,
            unroll_depths=self.unroll_depths,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tiles = ",".join("x".join(str(s) for s in sizes) for sizes in self.tile_sizes)
        return (
            f"Schedule({self.dag.name}, sketch={self.sketch.key}, tiles=[{tiles}], "
            f"ca={self.compute_at_index}, par={self.num_parallel}, unroll={self.unroll_depth})"
        )
