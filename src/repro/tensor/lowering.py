"""Lowering a schedule to loop-nest pseudo-code.

TVM lowers a schedule to TIR before codegen; this repository's simulator does
not need generated code, but a human-readable loop nest is invaluable for
inspecting what a schedule actually does (and for documentation / examples).
:func:`lower_schedule` renders the tiled loop structure, parallel/vectorise/
unroll annotations, the compute-at placement of the fused or cached stage and
the inlined epilogue stages.
"""

from __future__ import annotations

from typing import List

from repro.tensor.schedule import Schedule

__all__ = ["lower_schedule", "loop_structure"]


def loop_structure(schedule: Schedule) -> List[dict]:
    """The ordered loop nest of a schedule.

    Returns one dict per loop, outermost first, with keys ``name`` (e.g.
    ``"i.1"``), ``extent``, ``kind`` (``"spatial"``/``"reduction"``) and
    ``annotation`` (``"parallel"``, ``"vectorize"``, ``"unroll"`` or ``""``).

    The ordering follows the classic multi-level tiling structure Ansor
    generates: all level-0 spatial loops, level-0 reduction loops, level-1
    spatial loops, level-1 reduction loops, ... with the innermost spatial
    level last (the vectorised axis).
    """
    tiled = schedule.sketch.tiled_iters
    spatial = [(name, sizes) for (name, kind, _e, _l), sizes in zip(tiled, schedule.tile_sizes) if kind == "spatial"]
    reduction = [(name, sizes) for (name, kind, _e, _l), sizes in zip(tiled, schedule.tile_sizes) if kind == "reduction"]

    spatial_levels = max((len(sizes) for _n, sizes in spatial), default=0)
    reduction_levels = max((len(sizes) for _n, sizes in reduction), default=0)

    loops: List[dict] = []

    def add(name: str, level: int, extent: int, kind: str) -> None:
        loops.append({"name": f"{name}.{level}", "extent": int(extent), "kind": kind, "annotation": ""})

    # Interleave: spatial level 0, reduction level 0, spatial level 1, ... The
    # final spatial level forms the register/vector tile and stays innermost.
    for level in range(spatial_levels - 1):
        for name, sizes in spatial:
            add(name, level, sizes[level], "spatial")
        if level < reduction_levels:
            for name, sizes in reduction:
                add(name, level, sizes[level], "reduction")
    # Remaining reduction levels go right above the innermost spatial tile.
    for level in range(spatial_levels - 1, reduction_levels):
        for name, sizes in reduction:
            add(name, level, sizes[level], "reduction")
    for name, sizes in spatial:
        add(name, len(sizes) - 1, sizes[-1], "spatial")

    # Annotations: fused parallel outer loops, unrolled body, vectorised last axis.
    for i in range(min(schedule.num_parallel, len(spatial))):
        loops[i]["annotation"] = "parallel"
    if loops:
        loops[-1]["annotation"] = "vectorize"
    if schedule.unroll_depth > 0 and len(loops) >= 2:
        loops[-2]["annotation"] = (
            f"unroll(depth={schedule.unroll_depth})"
            if loops[-2]["annotation"] == ""
            else loops[-2]["annotation"]
        )
    return loops


def lower_schedule(schedule: Schedule) -> str:
    """Render a schedule as an indented loop-nest pseudo-program."""
    dag = schedule.dag
    sketch = schedule.sketch
    lines: List[str] = []
    lines.append(f"// workload: {dag.name}")
    lines.append(f"// sketch:   {sketch.key}")
    if sketch.inlined_stages:
        lines.append(f"// inlined:  {', '.join(sketch.inlined_stages)}")
    if sketch.cache_write:
        lines.append(f"{dag.main_stage_name}_cache = alloc_cache()")
    if sketch.rfactor:
        lines.append(f"{dag.main_stage_name}_rf = rfactor({dag.main_stage_name})")

    candidates = dag.compute_at_candidates()
    ca_stage, ca_loop = candidates[schedule.compute_at_index]

    loops = loop_structure(schedule)
    indent = 0
    spatial_seen = 0
    epilogue = [s.name for s in dag.elementwise_stages if dag.main_stage_name in s.producers]
    attached_line = None
    for loop in loops:
        annotation = f"  // {loop['annotation']}" if loop["annotation"] else ""
        lines.append("  " * indent + f"for {loop['name']} in range({loop['extent']}):{annotation}")
        indent += 1
        if loop["kind"] == "spatial":
            # Attach the fused consumer / cached write-back at the compute-at loop.
            if ca_stage != "root" and spatial_seen == ca_loop and attached_line is None:
                attached_line = indent
            spatial_seen += 1

    body = f"{dag.main_stage_name}[...] += compute(...)"
    lines.append("  " * indent + body)
    if sketch.fuse_consumer and epilogue:
        at = attached_line if attached_line is not None else indent
        lines.append("  " * at + f"{epilogue[0]}[...] = epilogue(...)  // fused consumer")
    elif sketch.cache_write:
        at = attached_line if attached_line is not None else 1
        lines.append("  " * at + f"{dag.main_stage_name}[...] = {dag.main_stage_name}_cache[...]  // cache write-back")
    elif epilogue:
        lines.append(f"for i in range({dag.main_stage.output_elements}):  // separate epilogue")
        lines.append(f"  {epilogue[0]}[...] = epilogue(...)")
    return "\n".join(lines)
