"""Sketch generation (Table 2 of the paper).

A *sketch* is the high-level structure of a tensor program: which stages are
inlined, how many tiling levels the main compute stage gets, whether the
output is cached, whether the reduction is factorised (rfactor) and whether
the element-wise consumer is fused into the tiled loop nest.  The generation
rules mirror Ansor's: Skip, Inline, Tiling, Tiling-with-Fusion, Cache-Write
and rfactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.tensor.dag import ComputeDAG

__all__ = ["Sketch", "generate_sketches", "SKETCH_RULES"]

SKETCH_RULES = (
    "skip",
    "inline",
    "tiling",
    "tiling_with_fusion",
    "cache_write",
    "rfactor",
)

#: Minimum total reduction extent for the rfactor rule to fire.  rfactor only
#: pays off when there is enough reduction parallelism to exploit.
RFACTOR_MIN_REDUCTION = 64


@dataclass(frozen=True)
class Sketch:
    """High-level program structure for one subgraph.

    Attributes
    ----------
    dag:
        The compute DAG this sketch belongs to.
    rules:
        Names of the generation rules applied (subset of :data:`SKETCH_RULES`).
    spatial_levels / reduction_levels:
        Number of tiling levels for spatial and reduction iterators of the
        main stage (4/2 on CPU, 5/3 on GPU per Ansor's structure).
    fuse_consumer:
        Whether the element-wise consumer is fused into the tiled loop nest.
    cache_write:
        Whether an output cache-write stage is added.
    rfactor:
        Whether the reduction is factorised for reduction parallelism.
    inlined_stages:
        Names of element-wise producer stages that are inlined.
    """

    dag: ComputeDAG
    rules: Tuple[str, ...]
    spatial_levels: int
    reduction_levels: int
    fuse_consumer: bool = False
    cache_write: bool = False
    rfactor: bool = False
    inlined_stages: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = set(self.rules) - set(SKETCH_RULES)
        if unknown:
            raise ValueError(f"unknown sketch rules: {sorted(unknown)}")
        if self.spatial_levels < 1 or self.reduction_levels < 1:
            raise ValueError("tiling levels must be >= 1")
        if self.fuse_consumer and self.cache_write:
            raise ValueError("fuse_consumer and cache_write are mutually exclusive")

    # ------------------------------------------------------------------ #
    @property
    def tiled_iters(self) -> List[Tuple[str, str, int, int]]:
        """Flattened description of the tiled loop nest.

        Returns a list of ``(iter_name, kind, extent, levels)`` tuples — one
        entry per iterator of the main stage, spatial iterators first (in
        declaration order) followed by reduction iterators.
        """
        out: List[Tuple[str, str, int, int]] = []
        for it in self.dag.main_stage.spatial_iters:
            out.append((it.name, it.kind, it.extent, self.spatial_levels))
        for it in self.dag.main_stage.reduction_iters:
            out.append((it.name, it.kind, it.extent, self.reduction_levels))
        return out

    @property
    def num_tile_slots(self) -> int:
        """Total number of tile-size slots (``num_iters`` in Table 3)."""
        return sum(levels for *_, levels in self.tiled_iters)

    @property
    def key(self) -> str:
        flags = []
        if self.fuse_consumer:
            flags.append("fuse")
        if self.cache_write:
            flags.append("cache_write")
        if self.rfactor:
            flags.append("rfactor")
        return "+".join(["tiling"] + flags) if flags else "tiling"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sketch({self.dag.name!r}, {self.key})"


def _inline_candidates(dag: ComputeDAG) -> Tuple[str, ...]:
    """Element-wise producers of the main stage are always inlined (Inline rule)."""
    inlined = []
    for stage in dag.elementwise_stages:
        if stage.name in dag.main_stage.producers:
            inlined.append(stage.name)
    return tuple(inlined)


def generate_sketches(
    dag: ComputeDAG,
    spatial_levels: int = 4,
    reduction_levels: int = 2,
) -> List[Sketch]:
    """Generate all sketches for ``dag`` following the rules of Table 2.

    For a compute stage with data reuse (a reduction axis) the generated set
    is:

    * plain multi-level tiling,
    * tiling with consumer fusion (when an element-wise consumer exists) or
      tiling with an output cache-write stage (when it does not),
    * an additional rfactor variant when the reduction extent is large enough
      for reduction parallelism.

    A GEMM with a bias epilogue therefore has 3 sketches, matching the count
    quoted in Section 4.1 of the paper.  Stages without reduction get a single
    light-weight sketch (parallel + vectorise structure).
    """
    inlined = _inline_candidates(dag)
    base_rules: Tuple[str, ...] = ("inline",) if inlined else ("skip",)
    sketches: List[Sketch] = []

    if not dag.has_data_reuse:
        sketches.append(
            Sketch(
                dag=dag,
                rules=base_rules + ("tiling",),
                spatial_levels=min(2, spatial_levels),
                reduction_levels=1,
                inlined_stages=inlined,
            )
        )
        return sketches

    # Rule: multi-level tiling.
    sketches.append(
        Sketch(
            dag=dag,
            rules=base_rules + ("tiling",),
            spatial_levels=spatial_levels,
            reduction_levels=reduction_levels,
            inlined_stages=inlined,
        )
    )

    # Rule: tiling with fusion (consumer exists) or cache write (no consumer).
    if dag.has_fusable_consumer:
        sketches.append(
            Sketch(
                dag=dag,
                rules=base_rules + ("tiling_with_fusion",),
                spatial_levels=spatial_levels,
                reduction_levels=reduction_levels,
                fuse_consumer=True,
                inlined_stages=inlined,
            )
        )
    else:
        sketches.append(
            Sketch(
                dag=dag,
                rules=base_rules + ("tiling", "cache_write"),
                spatial_levels=spatial_levels,
                reduction_levels=reduction_levels,
                cache_write=True,
                inlined_stages=inlined,
            )
        )

    # Rule: rfactor when there is enough reduction parallelism.
    total_reduction = 1
    for it in dag.reduction_iters:
        total_reduction *= it.extent
    if total_reduction >= RFACTOR_MIN_REDUCTION:
        sketches.append(
            Sketch(
                dag=dag,
                rules=base_rules + ("tiling", "rfactor"),
                spatial_levels=spatial_levels,
                reduction_levels=reduction_levels,
                rfactor=True,
                inlined_stages=inlined,
            )
        )

    return sketches
