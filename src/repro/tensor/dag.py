"""Compute DAG representation of tensor operators.

A :class:`ComputeDAG` is the abstract computation definition that the
auto-schedulers optimise.  It plays the role of TVM's ``te.ComputeDAG``: it
records the stages of the computation (inputs, main compute stage, trailing
element-wise stages), their loop iterators, and aggregate statistics (FLOPs,
bytes moved) that the hardware simulator and feature extractor consume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.caching import fingerprint_stats

__all__ = [
    "Iterator",
    "Stage",
    "ComputeDAG",
    "DTYPE_BYTES",
    "canonical_structure",
    "structural_fingerprint",
]

DTYPE_BYTES = 4  # fp32 throughout, matching the paper's benchmarks.

SPATIAL = "spatial"
REDUCTION = "reduction"


@dataclass(frozen=True)
class Iterator:
    """A loop iterator of a stage.

    ``kind`` is ``"spatial"`` for data-parallel axes and ``"reduction"`` for
    reduction axes (the ``k`` loop of a GEMM, the channel/kernel loops of a
    convolution, ...).
    """

    name: str
    extent: int
    kind: str = SPATIAL

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise ValueError(f"iterator {self.name!r} has non-positive extent {self.extent}")
        if self.kind not in (SPATIAL, REDUCTION):
            raise ValueError(f"unknown iterator kind {self.kind!r}")

    @property
    def is_reduction(self) -> bool:
        return self.kind == REDUCTION


@dataclass(frozen=True)
class Stage:
    """One stage (operation) of the compute DAG.

    ``kind`` classifies the stage:

    * ``"input"`` — placeholder tensors, never scheduled.
    * ``"compute"`` — the compute-intensive stage (matmul / conv body).
    * ``"elementwise"`` — cheap element-wise stages (bias add, ReLU, padding,
      tanh, ...) that are candidates for inlining or fusion.
    * ``"reduction"`` — light reduction stages (softmax row max/sum).
    """

    name: str
    iters: Tuple[Iterator, ...]
    kind: str = "compute"
    producers: Tuple[str, ...] = ()
    flops_per_element: float = 0.0

    @property
    def spatial_iters(self) -> Tuple[Iterator, ...]:
        return tuple(it for it in self.iters if not it.is_reduction)

    @property
    def reduction_iters(self) -> Tuple[Iterator, ...]:
        return tuple(it for it in self.iters if it.is_reduction)

    @property
    def output_elements(self) -> int:
        out = 1
        for it in self.spatial_iters:
            out *= it.extent
        return out

    @property
    def iteration_space(self) -> int:
        out = 1
        for it in self.iters:
            out *= it.extent
        return out

    @property
    def flops(self) -> float:
        return float(self.iteration_space) * self.flops_per_element


@dataclass
class ComputeDAG:
    """The computation definition of one subgraph.

    Attributes
    ----------
    name:
        Human readable workload name (e.g. ``"gemm_1024x1024x1024_b1"``).
    stages:
        All stages, topologically ordered (inputs first).
    main_stage_name:
        Name of the compute-intensive stage that the multi-level tiling rules
        apply to.
    input_bytes / output_bytes:
        Total bytes of the input and output tensors; consumed by the memory
        model of the hardware simulator.
    tags:
        Free-form workload metadata (operator class, shape tuple, batch size).
    """

    name: str
    stages: List[Stage]
    main_stage_name: str
    input_bytes: float
    output_bytes: float
    tags: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in DAG {self.name!r}")
        if self.main_stage_name not in names:
            raise ValueError(
                f"main stage {self.main_stage_name!r} not among stages {names} of {self.name!r}"
            )
        for stage in self.stages:
            for producer in stage.producers:
                if producer not in names:
                    raise ValueError(
                        f"stage {stage.name!r} references unknown producer {producer!r}"
                    )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def main_stage(self) -> Stage:
        return self.stage(self.main_stage_name)

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    @property
    def compute_stages(self) -> List[Stage]:
        return [s for s in self.stages if s.kind != "input"]

    @property
    def elementwise_stages(self) -> List[Stage]:
        return [s for s in self.stages if s.kind == "elementwise"]

    def consumers(self, name: str) -> List[Stage]:
        return [s for s in self.stages if name in s.producers]

    @property
    def flops(self) -> float:
        """Total floating point operations of the whole DAG."""
        return float(sum(s.flops for s in self.compute_stages))

    @property
    def spatial_iters(self) -> Tuple[Iterator, ...]:
        return self.main_stage.spatial_iters

    @property
    def reduction_iters(self) -> Tuple[Iterator, ...]:
        return self.main_stage.reduction_iters

    @property
    def has_data_reuse(self) -> bool:
        """Whether the main stage exhibits data reuse (a reduction axis)."""
        return len(self.reduction_iters) > 0

    @property
    def has_fusable_consumer(self) -> bool:
        """Whether an element-wise consumer of the main stage exists."""
        return any(s.kind == "elementwise" for s in self.consumers(self.main_stage_name))

    @property
    def total_bytes(self) -> float:
        return float(self.input_bytes + self.output_bytes)

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of compulsory traffic — drives memory- vs compute-bound behaviour."""
        return self.flops / max(self.total_bytes, 1.0)

    def compute_at_candidates(self) -> List[Tuple[str, int]]:
        """Candidate (stage, loop index) positions for compute-at placement.

        The candidates are the positions where a producer/epilogue stage may be
        computed: "root" (index ``-1``) plus every spatial loop level of the
        main stage.  The list is sorted from outermost to innermost, matching
        the candidate ordering described in Section 4.2 of the paper.
        """
        candidates: List[Tuple[str, int]] = [("root", -1)]
        for idx, _ in enumerate(self.main_stage.spatial_iters):
            candidates.append((self.main_stage_name, idx))
        return candidates

    def workload_key(self) -> str:
        """Stable identifier used for caching / task deduplication."""
        parts = [self.name]
        for stage in self.stages:
            parts.append(stage.name)
            parts.extend(f"{it.name}:{it.extent}:{it.kind}" for it in stage.iters)
        return "|".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputeDAG(name={self.name!r}, stages={len(self.stages)}, "
            f"flops={self.flops:.3g})"
        )


# --------------------------------------------------------------------- #
# canonical structural identity
# --------------------------------------------------------------------- #
_FINGERPRINT_ATTR = "_structural_fingerprint_cache"


def _base_key(stage: Stage, is_main: bool) -> Tuple:
    """Name-free local key of one stage: kind, iterator structure, work."""
    return (
        stage.kind,
        tuple((int(it.extent), it.kind) for it in stage.iters),
        float(stage.flops_per_element),
        bool(is_main),
    )


def _structural_keys(dag: "ComputeDAG") -> Dict[str, Tuple]:
    """Label-invariant structural key of every stage.

    The key of a stage combines its local structure with the (sorted) keys of
    its producers, computed bottom-up over the DAG, then is refined once with
    the sorted keys of its consumers so that structurally identical stages
    that feed *different* parts of the graph stay distinguishable.
    """
    by_name = {s.name: s for s in dag.stages}
    keys: Dict[str, Tuple] = {}

    def producer_closure(name: str) -> Tuple:
        if name in keys:
            return keys[name]
        stage = by_name[name]
        key = (
            _base_key(stage, stage.name == dag.main_stage_name),
            tuple(sorted(producer_closure(p) for p in stage.producers)),
        )
        keys[name] = key
        return key

    for stage in dag.stages:
        producer_closure(stage.name)

    # One consumer-side refinement round (Weisfeiler–Lehman style).
    refined: Dict[str, Tuple] = {}
    for stage in dag.stages:
        consumer_keys = tuple(sorted(keys[c.name] for c in dag.consumers(stage.name)))
        refined[stage.name] = (keys[stage.name], consumer_keys)
    return refined


def _depths(dag: "ComputeDAG") -> Dict[str, int]:
    depths: Dict[str, int] = {}
    by_name = {s.name: s for s in dag.stages}

    def depth(name: str) -> int:
        if name not in depths:
            stage = by_name[name]
            depths[name] = 1 + max((depth(p) for p in stage.producers), default=-1)
        return depths[name]

    for stage in dag.stages:
        depth(stage.name)
    return depths


def canonical_structure(dag: "ComputeDAG") -> Tuple:
    """Canonical name-free encoding of a DAG's structure.

    Stages are re-indexed in a canonical order (topological depth, then
    structural key) and every stage is emitted as ``(kind, flops_per_element,
    iterator (extent, kind) list, is_main, sorted producer indices)``; the
    tuple closes with the DAG-level byte totals consumed by the memory model.
    The encoding is invariant under stage/iterator renaming, permutation of a
    stage's ``producers`` tuple and topology-preserving stage reordering, and
    ignores ``dag.name`` / ``dag.tags`` entirely.
    """
    keys = _structural_keys(dag)
    depths = _depths(dag)
    ordered = sorted(dag.stages, key=lambda s: (depths[s.name], keys[s.name]))
    index = {stage.name: i for i, stage in enumerate(ordered)}
    encoded = tuple(
        (
            stage.kind,
            float(stage.flops_per_element),
            tuple((int(it.extent), it.kind) for it in stage.iters),
            stage.name == dag.main_stage_name,
            tuple(sorted(index[p] for p in stage.producers)),
        )
        for stage in ordered
    )
    return encoded + ((int(dag.input_bytes), int(dag.output_bytes)),)


def structural_fingerprint(dag: "ComputeDAG") -> str:
    """Stable hex fingerprint of a DAG's canonical structure.

    This is the identity used for task deduplication, record routing and the
    schedule registry — renamed-but-structurally-identical workloads are one
    workload for caching and reuse.  (The simulator's per-schedule
    ruggedness seed deliberately stays keyed on ``Schedule.signature()``'s
    display name — see that docstring — so the fingerprint never re-rolls
    existing simulated latencies.)  The digest is cached on the DAG instance
    (DAGs are built once and treated as immutable by the schedulers), so
    identity checks on tuning hot paths cost one attribute lookup.
    """
    cached = dag.__dict__.get(_FINGERPRINT_ATTR)
    if cached is not None:
        fingerprint_stats.hits += 1
        return cached
    fingerprint_stats.misses += 1
    payload = json.dumps(canonical_structure(dag), sort_keys=False)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    dag.__dict__[_FINGERPRINT_ATTR] = digest
    return digest


def make_stage(
    name: str,
    spatial: Sequence[Tuple[str, int]],
    reduction: Sequence[Tuple[str, int]] = (),
    kind: str = "compute",
    producers: Sequence[str] = (),
    flops_per_element: float = 0.0,
) -> Stage:
    """Helper to build a :class:`Stage` from (name, extent) pairs."""
    iters = tuple(Iterator(n, e, SPATIAL) for n, e in spatial) + tuple(
        Iterator(n, e, REDUCTION) for n, e in reduction
    )
    return Stage(
        name=name,
        iters=iters,
        kind=kind,
        producers=tuple(producers),
        flops_per_element=flops_per_element,
    )
