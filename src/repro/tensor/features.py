"""Feature extraction for schedules.

Both the learned cost model and the RL agent consume a fixed-length numeric
feature vector describing a schedule: log-scale tile sizes per iterator and
level, loop extents, parallelisation / unrolling / compute-at knobs and
aggregate workload statistics.  The layout is padded to fixed maxima so every
operator class produces vectors of the same size (:data:`FEATURE_SIZE`).

Two implementations share the layout:

* :func:`schedule_features` — the scalar reference implementation for a
  single schedule,
* :func:`batch_features` — a vectorised implementation that groups the batch
  by sketch, computes the sketch/workload-static feature blocks once per
  group and fills the per-schedule blocks with NumPy scatter operations.

The vectorised path produces bit-identical vectors (it applies the same
float64 operations in the same order per element) while avoiding the
per-schedule Python function call and array allocation, which makes large
cost-model batches several times faster than looping over
:func:`schedule_features`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.caching import hot_path_enabled
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import Sketch

__all__ = ["FEATURE_SIZE", "schedule_features", "batch_features"]

#: Padding maxima: conv3d has 5 spatial iterators (n, co, od, oh, ow) and
#: 4 reduction iterators (ci, kd, kh, kw); GPU sketches use up to 5 spatial
#: and 3 reduction tiling levels.
MAX_SPATIAL_ITERS = 5
MAX_REDUCTION_ITERS = 4
MAX_SPATIAL_LEVELS = 5
MAX_REDUCTION_LEVELS = 3

_SPATIAL_TILE_BLOCK = MAX_SPATIAL_ITERS * MAX_SPATIAL_LEVELS
_TILE_BLOCK = _SPATIAL_TILE_BLOCK + MAX_REDUCTION_ITERS * MAX_REDUCTION_LEVELS
_EXTENT_BLOCK = MAX_SPATIAL_ITERS + MAX_REDUCTION_ITERS
_SCALAR_BLOCK = 13

FEATURE_SIZE = _TILE_BLOCK + _EXTENT_BLOCK + _SCALAR_BLOCK


def _log2(value: float) -> float:
    return float(np.log2(max(float(value), 1.0)))


def schedule_features(schedule: Schedule) -> np.ndarray:
    """Compute the feature vector of one schedule.

    Layout (all tile sizes and extents are ``log2``-scaled):

    1. spatial tile sizes — ``MAX_SPATIAL_ITERS x MAX_SPATIAL_LEVELS`` slots,
    2. reduction tile sizes — ``MAX_REDUCTION_ITERS x MAX_REDUCTION_LEVELS`` slots,
    3. spatial / reduction iterator extents,
    4. scalar knobs and workload statistics (parallel extent, unroll depth,
       compute-at position, register-tile volume, FLOPs, arithmetic intensity,
       sketch flags, ...).
    """
    out = np.zeros(FEATURE_SIZE, dtype=np.float64)
    dag = schedule.dag

    # --- tile sizes -------------------------------------------------- #
    offset = 0
    spatial = schedule.spatial_tile_sizes()
    for i in range(MAX_SPATIAL_ITERS):
        for j in range(MAX_SPATIAL_LEVELS):
            if i < len(spatial) and j < len(spatial[i]):
                out[offset] = _log2(spatial[i][j])
            offset += 1
    reduction = schedule.reduction_tile_sizes()
    for i in range(MAX_REDUCTION_ITERS):
        for j in range(MAX_REDUCTION_LEVELS):
            if i < len(reduction) and j < len(reduction[i]):
                out[offset] = _log2(reduction[i][j])
            offset += 1

    # --- iterator extents -------------------------------------------- #
    spatial_iters = dag.main_stage.spatial_iters
    for i in range(MAX_SPATIAL_ITERS):
        if i < len(spatial_iters):
            out[offset] = _log2(spatial_iters[i].extent)
        offset += 1
    reduction_iters = dag.main_stage.reduction_iters
    for i in range(MAX_REDUCTION_ITERS):
        if i < len(reduction_iters):
            out[offset] = _log2(reduction_iters[i].extent)
        offset += 1

    # --- scalar knobs and workload statistics ------------------------ #
    n_candidates = len(dag.compute_at_candidates())
    scalars = [
        float(schedule.num_parallel),
        float(schedule.num_parallel) / max(schedule.max_parallel, 1),
        _log2(schedule.parallel_extent()),
        _log2(schedule.unroll_depth + 1),
        float(schedule.compute_at_index) / max(n_candidates - 1, 1),
        _log2(schedule.innermost_spatial_volume()),
        _log2(schedule.innermost_reduction_volume()),
        _log2(spatial[-1][-1] if spatial else 1),  # vectorisable innermost tile
        _log2(dag.flops),
        _log2(dag.arithmetic_intensity() + 1.0),
        1.0 if schedule.sketch.fuse_consumer else 0.0,
        1.0 if schedule.sketch.cache_write else 0.0,
        1.0 if schedule.sketch.rfactor else 0.0,
    ]
    assert len(scalars) == _SCALAR_BLOCK
    out[offset : offset + _SCALAR_BLOCK] = scalars
    return out


class _SketchLayout:
    """Precomputed feature-layout metadata for one sketch.

    All schedules instantiating the same sketch share their tile-list
    structure, iterator extents and workload statistics; only the tile sizes
    and the scalar knobs differ.  This object caches everything that can be
    computed once per sketch:

    * the scatter map from flattened tile-size positions to feature columns,
    * flat positions of the outermost / innermost tile of every spatial and
      reduction iterator (for parallel-extent and register-tile features),
    * the static feature template (extents, FLOPs, sketch flags, ...).
    """

    def __init__(self, sketch: Sketch):
        dag = sketch.dag
        tiled = sketch.tiled_iters

        flat_pos: List[int] = []      # kept flattened tile positions
        columns: List[int] = []       # feature column for each kept position
        spatial_outer: List[int] = [] # flat position of sizes[0] per spatial iter
        spatial_inner: List[int] = [] # flat position of sizes[-1] per spatial iter
        reduction_inner: List[int] = []

        pos = 0
        spatial_idx = 0
        reduction_idx = 0
        for _name, kind, _extent, levels in tiled:
            if kind == "spatial":
                for j in range(levels):
                    if spatial_idx < MAX_SPATIAL_ITERS and j < MAX_SPATIAL_LEVELS:
                        flat_pos.append(pos + j)
                        columns.append(spatial_idx * MAX_SPATIAL_LEVELS + j)
                spatial_outer.append(pos)
                spatial_inner.append(pos + levels - 1)
                spatial_idx += 1
            else:
                for j in range(levels):
                    if reduction_idx < MAX_REDUCTION_ITERS and j < MAX_REDUCTION_LEVELS:
                        flat_pos.append(pos + j)
                        columns.append(
                            _SPATIAL_TILE_BLOCK + reduction_idx * MAX_REDUCTION_LEVELS + j
                        )
                reduction_inner.append(pos + levels - 1)
                reduction_idx += 1
            pos += levels

        self.flat_pos = np.asarray(flat_pos, dtype=np.intp)
        self.columns = np.asarray(columns, dtype=np.intp)
        self.spatial_outer = np.asarray(spatial_outer, dtype=np.intp)
        self.spatial_inner = np.asarray(spatial_inner, dtype=np.intp)
        self.reduction_inner = np.asarray(reduction_inner, dtype=np.intp)
        self.max_parallel = max(len(dag.main_stage.spatial_iters), 1)
        self.ca_denominator = max(len(dag.compute_at_candidates()) - 1, 1)

        # Static feature template: iterator extents + workload statistics.
        template = np.zeros(FEATURE_SIZE, dtype=np.float64)
        offset = _TILE_BLOCK
        for i, it in enumerate(dag.main_stage.spatial_iters[:MAX_SPATIAL_ITERS]):
            template[offset + i] = _log2(it.extent)
        offset += MAX_SPATIAL_ITERS
        for i, it in enumerate(dag.main_stage.reduction_iters[:MAX_REDUCTION_ITERS]):
            template[offset + i] = _log2(it.extent)
        scalars = _TILE_BLOCK + _EXTENT_BLOCK
        template[scalars + 8] = _log2(dag.flops)
        template[scalars + 9] = _log2(dag.arithmetic_intensity() + 1.0)
        template[scalars + 10] = 1.0 if sketch.fuse_consumer else 0.0
        template[scalars + 11] = 1.0 if sketch.cache_write else 0.0
        template[scalars + 12] = 1.0 if sketch.rfactor else 0.0
        self.template = template


#: Attribute under which the layout is memoised on the (frozen) sketch.
_LAYOUT_ATTR = "_feature_layout_cache"


def _layout_of(sketch: Sketch) -> _SketchLayout:
    """The sketch's feature layout, computed once per sketch instance.

    Sketches are frozen dataclasses treated as immutable by every consumer,
    so the layout is stored directly on the instance (like the DAG's
    fingerprint cache) and shared by all batches that reference the sketch —
    including across schedulers, thanks to the shared sketch cache.
    """
    layout = sketch.__dict__.get(_LAYOUT_ATTR)
    if layout is None:
        layout = _SketchLayout(sketch)
        object.__setattr__(sketch, _LAYOUT_ATTR, layout)
    return layout


def _fill_group(
    out: np.ndarray, rows: Sequence[int], schedules: Sequence[Schedule]
) -> None:
    """Fill feature rows for a group of schedules that share one sketch."""
    layout = _layout_of(schedules[0].sketch)
    rows = np.asarray(rows, dtype=np.intp)
    out[rows] = layout.template

    tiles = np.asarray([s.flat_tile_sizes() for s in schedules], dtype=np.float64)
    scalars = _TILE_BLOCK + _EXTENT_BLOCK

    # Tile-size blocks: one scatter per group instead of per-schedule loops.
    if layout.flat_pos.size:
        out[rows[:, None], layout.columns[None, :]] = np.log2(
            np.maximum(tiles[:, layout.flat_pos], 1.0)
        )

    num_parallel = np.asarray([s.num_parallel for s in schedules], dtype=np.intp)
    out[rows, scalars + 0] = num_parallel.astype(np.float64)
    out[rows, scalars + 1] = num_parallel.astype(np.float64) / layout.max_parallel

    # parallel_extent(): product of the outermost tile of the first
    # ``num_parallel`` spatial iterators — read off a prefix-product table.
    n = len(schedules)
    if layout.spatial_outer.size:
        prefix = np.concatenate(
            [np.ones((n, 1)), np.cumprod(tiles[:, layout.spatial_outer], axis=1)],
            axis=1,
        )
        par_extent = prefix[np.arange(n), num_parallel]
    else:
        par_extent = np.ones(n)
    out[rows, scalars + 2] = np.log2(np.maximum(par_extent, 1.0))

    unroll = np.asarray(
        [s.unroll_depths[s.unroll_index] for s in schedules], dtype=np.float64
    )
    out[rows, scalars + 3] = np.log2(np.maximum(unroll + 1.0, 1.0))

    compute_at = np.asarray([s.compute_at_index for s in schedules], dtype=np.float64)
    out[rows, scalars + 4] = compute_at / layout.ca_denominator

    if layout.spatial_inner.size:
        spatial_vol = np.prod(tiles[:, layout.spatial_inner], axis=1)
        vec_tile = tiles[:, layout.spatial_inner[-1]]
    else:
        spatial_vol = np.ones(n)
        vec_tile = np.ones(n)
    if layout.reduction_inner.size:
        reduction_vol = np.prod(tiles[:, layout.reduction_inner], axis=1)
    else:
        reduction_vol = np.ones(n)
    out[rows, scalars + 5] = np.log2(np.maximum(spatial_vol, 1.0))
    out[rows, scalars + 6] = np.log2(np.maximum(reduction_vol, 1.0))
    out[rows, scalars + 7] = np.log2(np.maximum(vec_tile, 1.0))


def batch_features(schedules: Sequence[Schedule]) -> np.ndarray:
    """Stack feature vectors for a batch of schedules (``(N, FEATURE_SIZE)``).

    The batch is grouped by sketch so sketch- and workload-static feature
    blocks are computed once per group; tile sizes and scalar knobs are filled
    with vectorised scatter operations.  Rows are bit-identical to calling
    :func:`schedule_features` on each schedule individually.
    """
    if not schedules:
        return np.zeros((0, FEATURE_SIZE), dtype=np.float64)
    if not hot_path_enabled():
        # Baseline reference path for benchmarks and equivalence tests: the
        # per-schedule scalar implementation, stacked.
        return np.stack([schedule_features(s) for s in schedules], axis=0)
    out = np.zeros((len(schedules), FEATURE_SIZE), dtype=np.float64)
    groups: Dict[int, Tuple[Sketch, List[int]]] = {}
    for idx, schedule in enumerate(schedules):
        groups.setdefault(id(schedule.sketch), (schedule.sketch, []))[1].append(idx)
    for _sketch, rows in groups.values():
        _fill_group(out, rows, [schedules[i] for i in rows])
    return out
