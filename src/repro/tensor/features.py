"""Feature extraction for schedules.

Both the learned cost model and the RL agent consume a fixed-length numeric
feature vector describing a schedule: log-scale tile sizes per iterator and
level, loop extents, parallelisation / unrolling / compute-at knobs and
aggregate workload statistics.  The layout is padded to fixed maxima so every
operator class produces vectors of the same size (:data:`FEATURE_SIZE`).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.tensor.schedule import Schedule

__all__ = ["FEATURE_SIZE", "schedule_features", "batch_features"]

#: Padding maxima: conv3d has 5 spatial iterators (n, co, od, oh, ow) and
#: 4 reduction iterators (ci, kd, kh, kw); GPU sketches use up to 5 spatial
#: and 3 reduction tiling levels.
MAX_SPATIAL_ITERS = 5
MAX_REDUCTION_ITERS = 4
MAX_SPATIAL_LEVELS = 5
MAX_REDUCTION_LEVELS = 3

_TILE_BLOCK = MAX_SPATIAL_ITERS * MAX_SPATIAL_LEVELS + MAX_REDUCTION_ITERS * MAX_REDUCTION_LEVELS
_EXTENT_BLOCK = MAX_SPATIAL_ITERS + MAX_REDUCTION_ITERS
_SCALAR_BLOCK = 13

FEATURE_SIZE = _TILE_BLOCK + _EXTENT_BLOCK + _SCALAR_BLOCK


def _log2(value: float) -> float:
    return float(np.log2(max(float(value), 1.0)))


def schedule_features(schedule: Schedule) -> np.ndarray:
    """Compute the feature vector of one schedule.

    Layout (all tile sizes and extents are ``log2``-scaled):

    1. spatial tile sizes — ``MAX_SPATIAL_ITERS x MAX_SPATIAL_LEVELS`` slots,
    2. reduction tile sizes — ``MAX_REDUCTION_ITERS x MAX_REDUCTION_LEVELS`` slots,
    3. spatial / reduction iterator extents,
    4. scalar knobs and workload statistics (parallel extent, unroll depth,
       compute-at position, register-tile volume, FLOPs, arithmetic intensity,
       sketch flags, ...).
    """
    out = np.zeros(FEATURE_SIZE, dtype=np.float64)
    dag = schedule.dag

    # --- tile sizes -------------------------------------------------- #
    offset = 0
    spatial = schedule.spatial_tile_sizes()
    for i in range(MAX_SPATIAL_ITERS):
        for j in range(MAX_SPATIAL_LEVELS):
            if i < len(spatial) and j < len(spatial[i]):
                out[offset] = _log2(spatial[i][j])
            offset += 1
    reduction = schedule.reduction_tile_sizes()
    for i in range(MAX_REDUCTION_ITERS):
        for j in range(MAX_REDUCTION_LEVELS):
            if i < len(reduction) and j < len(reduction[i]):
                out[offset] = _log2(reduction[i][j])
            offset += 1

    # --- iterator extents -------------------------------------------- #
    spatial_iters = dag.main_stage.spatial_iters
    for i in range(MAX_SPATIAL_ITERS):
        if i < len(spatial_iters):
            out[offset] = _log2(spatial_iters[i].extent)
        offset += 1
    reduction_iters = dag.main_stage.reduction_iters
    for i in range(MAX_REDUCTION_ITERS):
        if i < len(reduction_iters):
            out[offset] = _log2(reduction_iters[i].extent)
        offset += 1

    # --- scalar knobs and workload statistics ------------------------ #
    n_candidates = len(dag.compute_at_candidates())
    scalars = [
        float(schedule.num_parallel),
        float(schedule.num_parallel) / max(schedule.max_parallel, 1),
        _log2(schedule.parallel_extent()),
        _log2(schedule.unroll_depth + 1),
        float(schedule.compute_at_index) / max(n_candidates - 1, 1),
        _log2(schedule.innermost_spatial_volume()),
        _log2(schedule.innermost_reduction_volume()),
        _log2(spatial[-1][-1] if spatial else 1),  # vectorisable innermost tile
        _log2(dag.flops),
        _log2(dag.arithmetic_intensity() + 1.0),
        1.0 if schedule.sketch.fuse_consumer else 0.0,
        1.0 if schedule.sketch.cache_write else 0.0,
        1.0 if schedule.sketch.rfactor else 0.0,
    ]
    assert len(scalars) == _SCALAR_BLOCK
    out[offset : offset + _SCALAR_BLOCK] = scalars
    return out


def batch_features(schedules: Sequence[Schedule]) -> np.ndarray:
    """Stack feature vectors for a batch of schedules (``(N, FEATURE_SIZE)``)."""
    if not schedules:
        return np.zeros((0, FEATURE_SIZE), dtype=np.float64)
    return np.stack([schedule_features(s) for s in schedules], axis=0)
