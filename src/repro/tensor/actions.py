"""Parameter modification actions (Table 3 of the paper).

The RL agent modifies a schedule by emitting one sub-action per modification
type:

* **Tiling modification** — a pair ``(i, j)`` of tile slots; the smallest
  prime factor (> 1) of slot ``i`` is divided out and multiplied into slot
  ``j``.  A dummy action leaves the tile sizes unchanged.  Moves across
  different iterators would break the factorisation invariant and therefore
  act as dummies.
* **Compute-at modification** — ``{-1, 0, +1}`` moves the compute-at position
  within the ordered candidate list.
* **Parallel-loops modification** — ``{-1, 0, +1}`` changes the number of
  fused outer loops run in parallel.
* **Auto-unroll modification** — ``{-1, 0, +1}`` moves within the unroll depth
  candidate list.

All deltas are clamped at the boundary of their candidate lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.tensor.factors import move_factor
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import Sketch

__all__ = ["ModificationAction", "ActionSpace", "apply_action"]

#: Delta candidates shared by the compute-at / parallel / unroll sub-spaces.
DELTA_CHOICES: Tuple[int, ...] = (-1, 0, 1)


@dataclass(frozen=True)
class ModificationAction:
    """One joint action: a sub-action from each modification sub-space.

    ``tile_move`` is ``None`` for the dummy tiling action, otherwise a
    ``(src_slot, dst_slot)`` pair of flattened tile-slot indices.
    """

    tile_move: Optional[Tuple[int, int]]
    compute_at_delta: int
    parallel_delta: int
    unroll_delta: int

    def __post_init__(self) -> None:
        for delta, label in (
            (self.compute_at_delta, "compute_at_delta"),
            (self.parallel_delta, "parallel_delta"),
            (self.unroll_delta, "unroll_delta"),
        ):
            if delta not in DELTA_CHOICES:
                raise ValueError(f"{label} must be in {DELTA_CHOICES}, got {delta}")
        if self.tile_move is not None:
            src, dst = self.tile_move
            if src < 0 or dst < 0:
                raise ValueError(f"invalid tile move {self.tile_move}")

    @property
    def is_noop(self) -> bool:
        return (
            self.tile_move is None
            and self.compute_at_delta == 0
            and self.parallel_delta == 0
            and self.unroll_delta == 0
        )


class ActionSpace:
    """Enumerates the joint action space of a sketch.

    Sub-space sizes follow Appendix A.1 of the paper: the tiling sub-space has
    ``num_slots * num_slots + 1`` actions (the ``+1`` is the dummy action) and
    each of the remaining three sub-spaces has 3 actions.
    """

    def __init__(self, sketch: Sketch):
        self.sketch = sketch
        self.num_tile_slots = sketch.num_tile_slots

    # ------------------------------------------------------------------ #
    @property
    def tiling_size(self) -> int:
        return self.num_tile_slots * self.num_tile_slots + 1

    @property
    def compute_at_size(self) -> int:
        return len(DELTA_CHOICES)

    @property
    def parallel_size(self) -> int:
        return len(DELTA_CHOICES)

    @property
    def unroll_size(self) -> int:
        return len(DELTA_CHOICES)

    @property
    def head_sizes(self) -> Tuple[int, int, int, int]:
        """Action-head sizes in the fixed order (tiling, compute-at, parallel, unroll)."""
        return (self.tiling_size, self.compute_at_size, self.parallel_size, self.unroll_size)

    # ------------------------------------------------------------------ #
    def decode_tiling(self, index: int) -> Optional[Tuple[int, int]]:
        """Map a tiling-head index to a ``(src, dst)`` slot pair (``None`` = dummy)."""
        if not (0 <= index < self.tiling_size):
            raise IndexError(index)
        if index == self.tiling_size - 1:
            return None
        src, dst = divmod(index, self.num_tile_slots)
        return (src, dst)

    def encode_tiling(self, move: Optional[Tuple[int, int]]) -> int:
        if move is None:
            return self.tiling_size - 1
        src, dst = move
        if not (0 <= src < self.num_tile_slots and 0 <= dst < self.num_tile_slots):
            raise IndexError(move)
        return src * self.num_tile_slots + dst

    def decode(self, indices: Tuple[int, int, int, int]) -> ModificationAction:
        """Decode one index per head into a :class:`ModificationAction`."""
        tile_idx, ca_idx, par_idx, unroll_idx = indices
        return ModificationAction(
            tile_move=self.decode_tiling(int(tile_idx)),
            compute_at_delta=DELTA_CHOICES[int(ca_idx)],
            parallel_delta=DELTA_CHOICES[int(par_idx)],
            unroll_delta=DELTA_CHOICES[int(unroll_idx)],
        )

    def encode(self, action: ModificationAction) -> Tuple[int, int, int, int]:
        return (
            self.encode_tiling(action.tile_move),
            DELTA_CHOICES.index(action.compute_at_delta),
            DELTA_CHOICES.index(action.parallel_delta),
            DELTA_CHOICES.index(action.unroll_delta),
        )

    def sample(self, rng: np.random.Generator) -> ModificationAction:
        """Uniformly sample a joint action (used by the uniform-selection baselines)."""
        indices = (
            int(rng.integers(0, self.tiling_size)),
            int(rng.integers(0, self.compute_at_size)),
            int(rng.integers(0, self.parallel_size)),
            int(rng.integers(0, self.unroll_size)),
        )
        return self.decode(indices)

    def all_single_tile_moves(self) -> List[ModificationAction]:
        """All actions that perform exactly one tiling move (used by exhaustive tests)."""
        actions = []
        for src in range(self.num_tile_slots):
            for dst in range(self.num_tile_slots):
                if src == dst:
                    continue
                actions.append(
                    ModificationAction(
                        tile_move=(src, dst),
                        compute_at_delta=0,
                        parallel_delta=0,
                        unroll_delta=0,
                    )
                )
        return actions


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def apply_action(schedule: Schedule, action: ModificationAction) -> Schedule:
    """Apply a :class:`ModificationAction` to a schedule, returning a new schedule.

    The input schedule is never modified.  Invalid tiling moves (source slot
    holds no factor, or source and destination belong to different iterators)
    degrade to no-ops, matching the dummy-action semantics of the paper.
    """
    new = schedule.copy()

    if action.tile_move is not None:
        src, dst = action.tile_move
        if src < new.num_tile_slots and dst < new.num_tile_slots:
            src_iter, src_level = new.slot_to_iter(src)
            dst_iter, dst_level = new.slot_to_iter(dst)
            if src_iter == dst_iter:
                new.tile_sizes[src_iter] = move_factor(
                    new.tile_sizes[src_iter], src_level, dst_level
                )

    n_candidates = len(new.dag.compute_at_candidates())
    new.compute_at_index = _clamp(
        new.compute_at_index + action.compute_at_delta, 0, n_candidates - 1
    )
    new.num_parallel = _clamp(new.num_parallel + action.parallel_delta, 0, new.max_parallel)
    new.unroll_index = _clamp(
        new.unroll_index + action.unroll_delta, 0, len(new.unroll_depths) - 1
    )
    return new
