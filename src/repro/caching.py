"""Shared memoisation caches for the tuning hot path.

The inner tuning loop recomputes several pure functions of the workload far
more often than their inputs change: every scheduler job regenerates the
sketch family of its workload, every registry transfer-adaptation call
regenerates it again per candidate, registry hits re-lower stored schedules,
and the structural fingerprint is recomputed on every submit / record /
registry route.  This module centralises those memoisations so the caches —
and their hit/miss counters — are shared across
:mod:`repro.core.scheduler`, :mod:`repro.serving.service`,
:mod:`repro.serving.registry`, :mod:`repro.records` and
:mod:`repro.experiments.network_runner`.

Three caches live here:

* :func:`cached_sketches` — sketch generation, keyed by
  ``(workload name, structural fingerprint, spatial levels, reduction
  levels)``; the tiling depths are a pure function of the hardware target
  (4/2 on CPU, 5/3 on GPU), so the key is effectively *(workload, target)*.
  A hit returns the **identical** sketch-list object, which also shares the
  per-sketch feature/simulator layout caches across all consumers.
* :func:`cached_lowering` — loop-nest pseudo-code rendering, keyed by the
  schedule signature (which embeds the workload name).
* fingerprint counters — :func:`repro.tensor.dag.structural_fingerprint`
  keeps its per-DAG-instance cache (the fastest possible storage) but
  reports hits and misses into :data:`fingerprint_stats`, so redundant
  re-fingerprinting is visible in the same counter report.

All counters are exposed through :func:`cache_stats` and reset with
:func:`reset_cache_stats`; the perf harness (``make perf``) records them in
``BENCH_perf.json`` and regression tests assert that one tuning round
performs zero duplicate lowerings / sketch generations.

The :func:`legacy_hot_path` context manager disables every fast path at once
(memoisation here, vectorised feature extraction, the batched simulator), so
benchmarks can measure the pre-optimisation baseline in-process and
equivalence tests can compare the two implementations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Optional, TypeVar

from repro.obs.metrics import register_collector as _register_collector

__all__ = [
    "CacheStats",
    "MemoCache",
    "sketch_cache",
    "lowering_cache",
    "fingerprint_stats",
    "cached_sketches",
    "cached_sketches_for_target",
    "cached_lowering",
    "cache_stats",
    "reset_cache_stats",
    "clear_caches",
    "hot_path_enabled",
    "legacy_hot_path",
]

T = TypeVar("T")


# --------------------------------------------------------------------- #
# legacy switch
# --------------------------------------------------------------------- #
_legacy_depth = 0
_legacy_lock = threading.Lock()


def hot_path_enabled() -> bool:
    """Whether the vectorised/memoised fast paths are active (the default)."""
    return _legacy_depth == 0


@contextmanager
def legacy_hot_path() -> Iterator[None]:
    """Disable every fast path (caches, vectorised features, batched simulator).

    Used by the perf harness to time the pre-optimisation baseline and by
    equivalence tests to compare the serial and vectorised implementations.
    Nestable and exception-safe; affects the whole process, so do not wrap
    concurrent tuning work in it.
    """
    global _legacy_depth
    with _legacy_lock:
        _legacy_depth += 1
    try:
        yield
    finally:
        with _legacy_lock:
            _legacy_depth -= 1


# --------------------------------------------------------------------- #
# counters
# --------------------------------------------------------------------- #
@dataclass
class CacheStats:
    """Hit/miss counters of one cache (a plain mutable record)."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        """Number of lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.total if self.total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, float]:
        """JSON-safe counter snapshot (recorded into ``BENCH_perf.json``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class MemoCache:
    """A small thread-safe LRU memoisation cache with hit/miss counters.

    ``get_or_create`` is the only lookup API: a hit returns the identical
    stored object (and refreshes its LRU position), a miss invokes the
    factory and stores the result, evicting the least-recently-used entry
    beyond ``maxsize``.  While :func:`legacy_hot_path` is active the cache is
    bypassed entirely — the factory runs every time and no counters move —
    so baseline timings see the uncached cost.

    ``on_evict`` (when given) is called with every value the cache lets go
    of — LRU evictions, ``invalidate``, ``clear``, and the loser of a
    concurrent-create race — which lets the cache manage values that own a
    resource (the registry's open shard handles).  Such resource caches pass
    ``legacy_bypass=False``: bypassing an LRU of *handles* would leak a file
    descriptor per lookup, and the legacy switch is about measuring
    memoisation wins, not about breaking resource pooling.
    """

    def __init__(
        self,
        name: str,
        maxsize: int = 1024,
        on_evict: Optional[Callable[[object], None]] = None,
        legacy_bypass: bool = True,
    ):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self.stats = CacheStats(name)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._on_evict = on_evict
        self._legacy_bypass = bool(legacy_bypass)

    @property
    def name(self) -> str:
        return self.stats.name

    def _dispose(self, value: object) -> None:
        if self._on_evict is not None:
            self._on_evict(value)

    def get_or_create(self, key: Hashable, factory: Callable[[], T]) -> T:
        if self._legacy_bypass and not hot_path_enabled():
            return factory()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]  # type: ignore[return-value]
        value = factory()  # computed outside the lock: factories may be slow
        evicted: List[object] = []
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                self._entries[key] = value
                while len(self._entries) > self.maxsize:
                    evicted.append(self._entries.popitem(last=False)[1])
                    self.stats.evictions += 1
            else:
                # A concurrent thread won the race; serve its object so hits
                # keep returning one identical instance.  The raced-out value
                # is disposed of — it may own a resource.
                self.stats.hits += 1
                evicted.append(value)
                value = self._entries[key]  # type: ignore[assignment]
        for stale in evicted:  # disposed outside the lock: callbacks may block
            self._dispose(stale)
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            value = self._entries.pop(key, None)
        if value is not None:
            self._dispose(value)
        return value is not None

    def clear(self) -> None:
        with self._lock:
            dropped = list(self._entries.values())
            self._entries.clear()
        for value in dropped:
            self._dispose(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries


# --------------------------------------------------------------------- #
# the shared caches
# --------------------------------------------------------------------- #
#: Sketch families per (workload name, structural fingerprint, tiling depths).
sketch_cache = MemoCache("sketches", maxsize=512)
#: Lowered loop-nest pseudo-code per schedule signature.
lowering_cache = MemoCache("lowering", maxsize=4096)
#: Counters of :func:`repro.tensor.dag.structural_fingerprint` (the digest
#: itself is cached on the DAG instance; only the bookkeeping lives here).
fingerprint_stats = CacheStats("fingerprint")


def cached_sketches(dag, spatial_levels: int = 4, reduction_levels: int = 2) -> List:
    """Memoised :func:`repro.tensor.sketch.generate_sketches`.

    Keyed by ``(dag.name, structural fingerprint, spatial_levels,
    reduction_levels)``: two DAG objects describing the same workload share
    one sketch family, while a renamed workload or a different tiling depth
    (i.e. a different target kind) always regenerates.  The returned list is
    shared — treat it as immutable.
    """
    from repro.tensor.dag import structural_fingerprint
    from repro.tensor.sketch import generate_sketches

    key = (
        dag.name,
        structural_fingerprint(dag),
        int(spatial_levels),
        int(reduction_levels),
    )
    return sketch_cache.get_or_create(
        key,
        lambda: generate_sketches(
            dag, spatial_levels=spatial_levels, reduction_levels=reduction_levels
        ),
    )


def cached_sketches_for_target(dag, target) -> List:
    """Sketch family of ``dag`` at ``target``'s tiling depths (memoised)."""
    return cached_sketches(
        dag, target.sketch_spatial_levels, target.sketch_reduction_levels
    )


def cached_lowering(schedule) -> str:
    """Memoised :func:`repro.tensor.lowering.lower_schedule`.

    Keyed by the workload's structural fingerprint plus the schedule
    signature, so the same best schedule surfacing repeatedly — registry
    answers, repeated ``finalize`` calls, report rendering — is lowered
    once.  The fingerprint matters: ``Schedule.signature()`` alone keys on
    the display name, and two same-named but structurally different
    workloads (e.g. with and without an epilogue stage) must never share
    lowered program text.
    """
    from repro.tensor.dag import structural_fingerprint
    from repro.tensor.lowering import lower_schedule

    key = (structural_fingerprint(schedule.dag), schedule.signature())
    return lowering_cache.get_or_create(key, lambda: lower_schedule(schedule))


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Snapshot of every shared cache's counters, keyed by cache name."""
    return {
        sketch_cache.name: sketch_cache.stats.snapshot(),
        lowering_cache.name: lowering_cache.stats.snapshot(),
        fingerprint_stats.name: fingerprint_stats.snapshot(),
    }


def _collect_cache_metrics() -> Dict[str, float]:
    """Publish the shared caches' counters into ``repro.obs`` snapshots.

    The counters stay stored in the per-cache :class:`CacheStats` records
    (tests build private ``MemoCache`` instances and expect isolated,
    zero-started counters, so globally named instruments are the wrong
    storage); a registry *collector* re-exposes the three process-wide
    caches under ``cache.<name>.<counter>`` at snapshot time, which makes
    ``cache_stats()`` a thin shim over the same numbers ``repro metrics``
    reports.
    """
    flat: Dict[str, float] = {}
    for name, stats in cache_stats().items():
        for key, value in stats.items():
            flat[f"cache.{name}.{key}"] = value
    return flat


_register_collector("caching", _collect_cache_metrics)


def reset_cache_stats() -> None:
    """Zero all counters (entries stay cached)."""
    sketch_cache.stats.reset()
    lowering_cache.stats.reset()
    fingerprint_stats.reset()


def clear_caches() -> None:
    """Drop all cached entries (counters stay; call ``reset_cache_stats`` too
    for full isolation in tests)."""
    sketch_cache.clear()
    lowering_cache.clear()
