"""repro: a reproduction of HARL (ICPP 2022).

HARL is a hierarchical, adaptive, reinforcement-learning-based auto-scheduler
for tensor programs.  This package re-implements the full system — the tensor
program substrate, a simulated measurement backend, a learned cost model, the
Ansor / Flextensor / AutoTVM baselines and the HARL scheduler itself — in pure
Python + NumPy.

Quick start::

    from repro import HARLScheduler, gemm

    scheduler = HARLScheduler()
    result = scheduler.tune(gemm(512, 512, 512), n_trials=200)
    print(result.best_latency, result.best_schedule)

See ``README.md`` for install / quickstart and the layer-by-layer map, and
``docs/architecture.md`` for the decision hierarchy, the batched measurement
pipeline and the persistent record store.
"""

from repro.caching import (
    cache_stats,
    cached_lowering,
    cached_sketches,
    clear_caches,
    legacy_hot_path,
    reset_cache_stats,
)
from repro.core import HARLConfig, HARLScheduler, TuningResult
from repro.baselines import AnsorScheduler, FlextensorScheduler, SimulatedAnnealingScheduler
from repro.records import MeasureRecord, RecordStore, TuningRecord, load_records, save_records
from repro.hardware import HardwareTarget, Measurer, ParallelMeasurer, cpu_target, gpu_target
from repro.costmodel import ScheduleCostModel
from repro.serving import (
    ScheduleRegistry,
    TuningRequest,
    TuningService,
    structural_fingerprint,
)
from repro.networks import NetworkGraph, Subgraph, build_bert, build_mobilenet_v2, build_resnet50
from repro.tensor import (
    ComputeDAG,
    Schedule,
    Sketch,
    batch_gemm,
    conv1d,
    conv2d,
    conv2d_transpose,
    conv3d,
    elementwise,
    gemm,
    gemm_tanh,
    generate_sketches,
    softmax,
)

__version__ = "0.1.0"

__all__ = [
    "AnsorScheduler",
    "ComputeDAG",
    "FlextensorScheduler",
    "HARLConfig",
    "HARLScheduler",
    "HardwareTarget",
    "MeasureRecord",
    "Measurer",
    "NetworkGraph",
    "ParallelMeasurer",
    "RecordStore",
    "Schedule",
    "ScheduleCostModel",
    "ScheduleRegistry",
    "TuningRequest",
    "TuningService",
    "structural_fingerprint",
    "SimulatedAnnealingScheduler",
    "Sketch",
    "Subgraph",
    "TuningRecord",
    "TuningResult",
    "__version__",
    "cache_stats",
    "cached_lowering",
    "cached_sketches",
    "clear_caches",
    "legacy_hot_path",
    "load_records",
    "reset_cache_stats",
    "save_records",
    "batch_gemm",
    "build_bert",
    "build_mobilenet_v2",
    "build_resnet50",
    "conv1d",
    "conv2d",
    "conv2d_transpose",
    "conv3d",
    "cpu_target",
    "elementwise",
    "gemm",
    "gemm_tanh",
    "generate_sketches",
    "gpu_target",
    "softmax",
]
