"""DNN frontends.

The paper imports ResNet-50, MobileNet-V2 and BERT through TVM's relay
frontend and partitions them into subgraphs (tasks).  Here each network is
described directly as its inventory of distinct subgraphs — one
:class:`~repro.networks.graph.Subgraph` per distinct (operator, shape) with
its number of occurrences ``w_n`` — which is exactly the information the task
schedulers consume.
"""

from repro.networks.graph import NetworkGraph, Subgraph
from repro.networks.bert import build_bert
from repro.networks.resnet import build_resnet50
from repro.networks.mobilenet import build_mobilenet_v2

__all__ = [
    "NetworkGraph",
    "Subgraph",
    "build_bert",
    "build_mobilenet_v2",
    "build_resnet50",
]
