"""ResNet-50 frontend.

The network is described as its distinct convolution / dense subgraphs with
occurrence counts, which is what the relay graph partitioning of the paper
produces (on the order of 24 distinct subgraphs for ResNet-50).
"""

from __future__ import annotations

from typing import List

from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import conv2d, gemm

__all__ = ["build_resnet50"]

#: (spatial size, input channels, bottleneck channels, output channels, blocks)
_STAGES = (
    (56, 64, 64, 256, 3),
    (28, 256, 128, 512, 4),
    (14, 512, 256, 1024, 6),
    (7, 1024, 512, 2048, 3),
)


def build_resnet50(batch_size: int = 1, image_size: int = 224) -> NetworkGraph:
    """Build the ResNet-50 subgraph inventory for a given batch size."""
    subgraphs: List[Subgraph] = []

    def add(name: str, dag, weight: float) -> None:
        subgraphs.append(Subgraph(name=name, dag=dag, weight=weight, similarity_group="conv2d"))

    # Stem: 7x7 stride-2 convolution.
    add(
        "conv1_7x7",
        conv2d(image_size, image_size, 3, 64, 7, 2, 3, batch=batch_size, name=f"resnet_conv1_b{batch_size}"),
        1,
    )

    for stage_idx, (size, in_c, mid_c, out_c, blocks) in enumerate(_STAGES, start=2):
        prefix = f"stage{stage_idx}"
        # First block: reduce from the previous stage's channel count.
        add(
            f"{prefix}_reduce_first",
            conv2d(size, size, in_c, mid_c, 1, 1, 0, batch=batch_size,
                   name=f"resnet_{prefix}_reduce_first_b{batch_size}"),
            1,
        )
        if blocks > 1:
            add(
                f"{prefix}_reduce",
                conv2d(size, size, out_c, mid_c, 1, 1, 0, batch=batch_size,
                       name=f"resnet_{prefix}_reduce_b{batch_size}"),
                blocks - 1,
            )
        add(
            f"{prefix}_3x3",
            conv2d(size, size, mid_c, mid_c, 3, 1, 1, batch=batch_size,
                   name=f"resnet_{prefix}_3x3_b{batch_size}"),
            blocks,
        )
        add(
            f"{prefix}_expand",
            conv2d(size, size, mid_c, out_c, 1, 1, 0, batch=batch_size,
                   name=f"resnet_{prefix}_expand_b{batch_size}"),
            blocks,
        )
        # Projection shortcut of the first block.
        add(
            f"{prefix}_downsample",
            conv2d(size, size, in_c, out_c, 1, 1, 0, batch=batch_size,
                   name=f"resnet_{prefix}_downsample_b{batch_size}"),
            1,
        )

    # Classifier head.
    subgraphs.append(
        Subgraph(
            name="fc",
            dag=gemm(1, 2048, 1000, batch=batch_size, name=f"resnet_fc_b{batch_size}"),
            weight=1,
            similarity_group="gemm",
        )
    )
    return NetworkGraph(
        name=f"resnet50_b{batch_size}",
        subgraphs=subgraphs,
        batch_size=batch_size,
        metadata={"image_size": image_size},
    )
