"""MobileNet-V2 frontend.

Each inverted-residual block contributes a 1x1 expansion convolution, a 3x3
depthwise convolution and a 1x1 projection convolution; blocks with identical
shapes are deduplicated into one subgraph with an occurrence count, matching
the task partitioning used in the paper's end-to-end experiments.
"""

from __future__ import annotations

from typing import List

from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import conv2d, gemm

__all__ = ["build_mobilenet_v2"]

#: Standard MobileNet-V2 configuration rows: (expansion t, channels c, repeats n, stride s)
_CONFIG = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def build_mobilenet_v2(batch_size: int = 1, image_size: int = 224) -> NetworkGraph:
    """Build the MobileNet-V2 subgraph inventory for a given batch size."""
    subgraphs: List[Subgraph] = []

    def add(name: str, dag, weight: float, group: str) -> None:
        subgraphs.append(Subgraph(name=name, dag=dag, weight=weight, similarity_group=group))

    size = image_size // 2  # after the stride-2 stem
    add(
        "stem_conv",
        conv2d(image_size, image_size, 3, 32, 3, 2, 1, batch=batch_size, name=f"mbv2_stem_b{batch_size}"),
        1,
        "conv2d",
    )

    in_channels = 32
    for row_idx, (t, c, n, s) in enumerate(_CONFIG):
        for block in range(n):
            stride = s if block == 0 else 1
            block_in = in_channels if block == 0 else c
            hidden = block_in * t
            suffix = "first" if block == 0 else "rest"
            weight = 1 if block == 0 else n - 1
            if block > 1:
                # Identical shapes for blocks 1..n-1 were already added once.
                continue
            prefix = f"ir{row_idx}_{suffix}"
            if t != 1:
                add(
                    f"{prefix}_expand",
                    conv2d(size, size, block_in, hidden, 1, 1, 0, batch=batch_size,
                           name=f"mbv2_{prefix}_expand_b{batch_size}"),
                    weight,
                    "conv2d",
                )
            out_size = size // stride
            add(
                f"{prefix}_dwise",
                conv2d(size, size, hidden, hidden, 3, stride, 1, batch=batch_size, groups=hidden,
                       name=f"mbv2_{prefix}_dwise_b{batch_size}"),
                weight,
                "depthwise",
            )
            add(
                f"{prefix}_project",
                conv2d(out_size, out_size, hidden, c, 1, 1, 0, batch=batch_size,
                       name=f"mbv2_{prefix}_project_b{batch_size}"),
                weight,
                "conv2d",
            )
            if block == 0:
                size = out_size
        in_channels = c

    add(
        "head_conv",
        conv2d(size, size, 320, 1280, 1, 1, 0, batch=batch_size, name=f"mbv2_head_b{batch_size}"),
        1,
        "conv2d",
    )
    subgraphs.append(
        Subgraph(
            name="fc",
            dag=gemm(1, 1280, 1000, batch=batch_size, name=f"mbv2_fc_b{batch_size}"),
            weight=1,
            similarity_group="gemm",
        )
    )
    return NetworkGraph(
        name=f"mobilenet_v2_b{batch_size}",
        subgraphs=subgraphs,
        batch_size=batch_size,
        metadata={"image_size": image_size},
    )
