"""Network graphs as weighted subgraph inventories.

End-to-end optimisation in the paper splits the network's computational graph
into ``N`` distinct subgraphs executed sequentially; the end-to-end latency is
approximated as ``f(S) = sum_n w_n * g_n`` where ``w_n`` is the number of
appearances of subgraph ``n`` and ``g_n`` its execution time.  A
:class:`NetworkGraph` is precisely that list of ``(subgraph, w_n)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.tensor.dag import ComputeDAG

__all__ = ["Subgraph", "NetworkGraph"]


@dataclass(frozen=True)
class Subgraph:
    """One distinct subgraph (task) of a network.

    ``weight`` is the number of times the subgraph appears in the network
    (``w_n``); ``similarity_group`` tags subgraphs of the same operator family
    so the subgraph-selection reward can transfer throughput estimates between
    similar tasks (the ``M(a)`` set of Eq. 3).
    """

    name: str
    dag: ComputeDAG
    weight: float
    similarity_group: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"subgraph {self.name!r} has non-positive weight {self.weight}")

    @property
    def total_flops(self) -> float:
        """FLOPs contributed by all appearances of this subgraph."""
        return self.weight * self.dag.flops

    @property
    def reward_group(self) -> str:
        """Similarity group consumed by the Eq. 3 reward.

        The explicit ``similarity_group`` wins; otherwise the workload's
        ``op`` tag.  Untagged subgraphs get the *empty* group, which by
        contract matches nothing (see
        :func:`~repro.core.subgraph_reward.subgraph_reward`), so unrelated
        operators never transfer throughput estimates between each other
        just because neither was tagged.
        """
        return self.similarity_group or str(self.dag.tags.get("op") or "")


@dataclass
class NetworkGraph:
    """A network described as its distinct subgraphs and their multiplicities."""

    name: str
    subgraphs: List[Subgraph]
    batch_size: int = 1
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [s.name for s in self.subgraphs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate subgraph names in network {self.name!r}")
        if not self.subgraphs:
            raise ValueError("a network needs at least one subgraph")

    def __len__(self) -> int:
        return len(self.subgraphs)

    def __iter__(self):
        return iter(self.subgraphs)

    def subgraph(self, name: str) -> Subgraph:
        for sg in self.subgraphs:
            if sg.name == name:
                return sg
        raise KeyError(name)

    @property
    def total_flops(self) -> float:
        return sum(sg.total_flops for sg in self.subgraphs)

    def weights(self) -> Dict[str, float]:
        return {sg.name: sg.weight for sg in self.subgraphs}

    def estimated_latency(self, task_latencies: Dict[str, float]) -> float:
        """End-to-end latency estimate ``sum_n w_n * g_n``.

        Subgraphs missing from ``task_latencies`` (not yet tuned) contribute
        ``inf`` so partially-tuned networks are not reported as faster than
        they are.
        """
        total = 0.0
        for sg in self.subgraphs:
            latency = task_latencies.get(sg.name, float("inf"))
            if latency == float("inf"):
                return float("inf")
            total += sg.weight * latency
        return total

    def top_subgraphs_by_flops(self, k: int) -> List[Subgraph]:
        """The ``k`` most compute-heavy subgraphs (weighted by occurrences)."""
        return sorted(self.subgraphs, key=lambda sg: sg.total_flops, reverse=True)[:k]
