"""BERT-base frontend.

The BERT encoder (12 layers, hidden 768, 12 heads, FFN 3072, sequence length
128) decomposes into 10 distinct subgraphs — the count quoted in Section 4.1
of the paper — matching the subgraph inventory of Table 4: four dense GEMMs,
the attention softmax, two batched GEMMs, two element-wise groups and the
pooler GEMM+tanh.
"""

from __future__ import annotations

from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import batch_gemm, elementwise, gemm, gemm_tanh, softmax

__all__ = ["build_bert"]


def build_bert(
    batch_size: int = 1,
    seq_len: int = 128,
    hidden: int = 768,
    num_heads: int = 12,
    ffn_hidden: int = 3072,
    num_layers: int = 12,
) -> NetworkGraph:
    """Build the BERT-base subgraph inventory.

    Subgraph names follow Table 4 of the paper.  ``w_n`` weights count the
    occurrences across all encoder layers; batching multiplies the token
    dimension of every subgraph.
    """
    if hidden % num_heads:
        raise ValueError("hidden size must be divisible by the number of heads")
    head_dim = hidden // num_heads

    subgraphs = [
        # Q/K/V projections: three GEMMs per layer.
        Subgraph(
            name="GEMM-I",
            dag=gemm(seq_len, hidden, hidden, batch=batch_size, name=f"bert_qkv_proj_b{batch_size}"),
            weight=3 * num_layers,
            similarity_group="gemm",
        ),
        # Attention output projection.
        Subgraph(
            name="GEMM-II",
            dag=gemm(seq_len, hidden, hidden, batch=batch_size, name=f"bert_attn_out_b{batch_size}"),
            weight=num_layers,
            similarity_group="gemm",
        ),
        # Feed-forward up-projection (hidden -> ffn_hidden).
        Subgraph(
            name="GEMM-III",
            dag=gemm(seq_len, hidden, ffn_hidden, batch=batch_size, name=f"bert_ffn1_b{batch_size}"),
            weight=num_layers,
            similarity_group="gemm",
        ),
        # Feed-forward down-projection (ffn_hidden -> hidden).
        Subgraph(
            name="GEMM-IV",
            dag=gemm(seq_len, ffn_hidden, hidden, batch=batch_size, name=f"bert_ffn2_b{batch_size}"),
            weight=num_layers,
            similarity_group="gemm",
        ),
        # Attention softmax over (heads x seq) rows of length seq.
        Subgraph(
            name="Softmax",
            dag=softmax(num_heads * seq_len, seq_len, batch=batch_size, name=f"bert_softmax_b{batch_size}"),
            weight=num_layers,
            similarity_group="softmax",
        ),
        # Attention scores: Q x K^T per head.
        Subgraph(
            name="Batch_GEMM-I",
            dag=batch_gemm(num_heads, seq_len, head_dim, seq_len, batch=batch_size, name=f"bert_qk_b{batch_size}"),
            weight=num_layers,
            similarity_group="batch_gemm",
        ),
        # Attention context: scores x V per head.
        Subgraph(
            name="Batch_GEMM-II",
            dag=batch_gemm(num_heads, seq_len, seq_len, head_dim, batch=batch_size, name=f"bert_av_b{batch_size}"),
            weight=num_layers,
            similarity_group="batch_gemm",
        ),
        # Residual add + layer norm (twice per layer).
        Subgraph(
            name="Element-wise-I",
            dag=elementwise([seq_len, hidden], num_ops=4, batch=batch_size, name=f"bert_add_ln_b{batch_size}"),
            weight=2 * num_layers,
            similarity_group="elementwise",
        ),
        # GELU activation on the FFN hidden state.
        Subgraph(
            name="Element-wise-II",
            dag=elementwise([seq_len, ffn_hidden], num_ops=3, batch=batch_size, name=f"bert_gelu_b{batch_size}"),
            weight=num_layers,
            similarity_group="elementwise",
        ),
        # Pooler: dense + tanh on the [CLS] token.
        Subgraph(
            name="GEMM+Tanh",
            dag=gemm_tanh(1, hidden, hidden, batch=batch_size, name=f"bert_pooler_b{batch_size}"),
            weight=1,
            similarity_group="gemm",
        ),
    ]
    return NetworkGraph(
        name=f"bert_base_b{batch_size}",
        subgraphs=subgraphs,
        batch_size=batch_size,
        metadata={
            "seq_len": seq_len,
            "hidden": hidden,
            "num_heads": num_heads,
            "ffn_hidden": ffn_hidden,
            "num_layers": num_layers,
        },
    )
