"""Crash-tolerant helpers for the append-only JSONL stores.

Both persistent stores (:class:`~repro.records.RecordStore` and the
:class:`~repro.serving.registry.ScheduleRegistry` shards) append one JSON
object per line with a single ``write`` + ``flush``.  A process killed inside
that write leaves a *torn tail*: a strict prefix of the final line, almost
never valid JSON and usually without a trailing newline.  Merely *skipping*
that line at load time is not enough — the stores append with ``open("a")``,
so the next committed record would concatenate onto the torn prefix and one
*good* entry would be corrupted.  :func:`repair_torn_tail` therefore
physically truncates the torn tail (and warns), restoring the one-object-
per-line invariant before any parsing or appending happens.

A complete final line that merely lacks its newline is valid JSON and is left
alone; mid-file corruption is *not* touched here — that is a data-integrity
question the stores answer via their ``strict`` policy.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

__all__ = ["repair_torn_tail"]

#: How many bytes of tail to pull in per backwards step while hunting for the
#: final newline.  A torn line is one JSON object (a few hundred bytes), so
#: the first chunk almost always suffices; the loop only matters for
#: pathological single-line files.
_TAIL_CHUNK = 64 * 1024

_WHITESPACE = b" \t\r\n"


def _read_tail(path: Path) -> tuple[int, bytes, int]:
    """``(size, tail, tail_start)`` where ``tail`` spans the final line.

    Reads backwards in :data:`_TAIL_CHUNK` steps until the buffer contains a
    newline strictly before the (whitespace-stripped) final line, so repair
    cost is O(final line), not O(file) — a million-entry shard must not be
    slurped whole just to check its last line.
    """
    with path.open("rb") as fh:
        size = fh.seek(0, os.SEEK_END)
        buf = b""
        pos = size
        while pos > 0:
            step = min(_TAIL_CHUNK, pos)
            pos -= step
            fh.seek(pos)
            buf = fh.read(step) + buf
            stripped = buf.rstrip(_WHITESPACE)
            if not stripped and pos > 0:
                continue
            if stripped.rfind(b"\n") >= 0 or pos == 0:
                break
        return size, buf, pos


def repair_torn_tail(path: Path, label: str = "JSONL file") -> int:
    """Truncate a torn (partially written) final line off a JSONL file.

    Returns the number of bytes removed (0 when the file ends cleanly or the
    final line is syntactically valid JSON).  Emits a ``UserWarning`` naming
    the file when a tail is removed: the entry it belonged to was never
    durably committed, so dropping it is the only consistent recovery.
    """
    path = Path(path)
    try:
        size, buf, buf_start = _read_tail(path)
    except FileNotFoundError:
        return 0
    stripped = buf.rstrip(_WHITESPACE)
    if not stripped:
        return 0
    start = buf_start + stripped.rfind(b"\n") + 1
    tail = stripped[start - buf_start :]
    try:
        json.loads(tail.decode("utf-8", errors="replace"))
        return 0
    except json.JSONDecodeError:
        pass
    removed = size - start
    with path.open("rb+") as fh:
        fh.truncate(start)
    warnings.warn(
        f"{label} {path} ended in a torn line; truncated {removed} partial "
        "bytes (the interrupted append was never durably committed)",
        UserWarning,
        stacklevel=2,
    )
    return removed
