"""Crash-tolerant helpers for the append-only JSONL stores.

Both persistent stores (:class:`~repro.records.RecordStore` and the
:class:`~repro.serving.registry.ScheduleRegistry` shards) append one JSON
object per line with a single ``write`` + ``flush``.  A process killed inside
that write leaves a *torn tail*: a strict prefix of the final line, almost
never valid JSON and usually without a trailing newline.  Merely *skipping*
that line at load time is not enough — the stores append with ``open("a")``,
so the next committed record would concatenate onto the torn prefix and one
*good* entry would be corrupted.  :func:`repair_torn_tail` therefore
physically truncates the torn tail (and warns), restoring the one-object-
per-line invariant before any parsing or appending happens.

A complete final line that merely lacks its newline is valid JSON and is left
alone; mid-file corruption is *not* touched here — that is a data-integrity
question the stores answer via their ``strict`` policy.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

__all__ = ["repair_torn_tail"]


def repair_torn_tail(path: Path, label: str = "JSONL file") -> int:
    """Truncate a torn (partially written) final line off a JSONL file.

    Returns the number of bytes removed (0 when the file ends cleanly or the
    final line is syntactically valid JSON).  Emits a ``UserWarning`` naming
    the file when a tail is removed: the entry it belonged to was never
    durably committed, so dropping it is the only consistent recovery.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    stripped = raw.rstrip(b" \t\r\n")
    if not stripped:
        return 0
    start = stripped.rfind(b"\n") + 1
    tail = stripped[start:]
    try:
        json.loads(tail.decode("utf-8", errors="replace"))
        return 0
    except json.JSONDecodeError:
        pass
    removed = len(raw) - start
    with path.open("rb+") as fh:
        fh.truncate(start)
    warnings.warn(
        f"{label} {path} ended in a torn line; truncated {removed} partial "
        "bytes (the interrupted append was never durably committed)",
        UserWarning,
        stacklevel=2,
    )
    return removed
