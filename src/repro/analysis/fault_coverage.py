"""Fault-point / obligation coverage checker (rules ``fault.*``).

Cross-file checker keeping three tables consistent:

1. the declared fault-point table (``FAULT_POINTS`` in ``faults/plan.py``),
2. the production ``poll_fault("...")`` hook sites scattered through the
   serving/tuning stack, and
3. the obligation scenarios (``faults/scenarios.py``) that inject faults at
   those points and assert recovery.

Orphans in any direction fail:

* ``fault.unknown-point`` — a poll/inject/spec site names a point that is
  not declared (e.g. a point was renamed but a hook site was missed);
* ``fault.unpolled-point`` — a declared point with no production hook site
  (dead table entry: nothing can ever fire there);
* ``fault.uncovered-point`` — a declared point that no obligation scenario
  injects (the release gate would never exercise its recovery path).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .base import Checker, Project, SourceModule, dotted_name, string_literal
from .findings import Finding, make_finding

_PLAN_SUFFIX = "faults/plan.py"
_SCENARIOS_SUFFIX = "faults/scenarios.py"


class FaultCoverageChecker(Checker):
    name = "fault-coverage"

    def __init__(
        self,
        points: Optional[Dict[str, str]] = None,
        plan_suffix: str = _PLAN_SUFFIX,
        scenarios_suffix: str = _SCENARIOS_SUFFIX,
    ):
        self.points = points
        self.plan_suffix = plan_suffix
        self.scenarios_suffix = scenarios_suffix

    def check_project(self, project: Project) -> List[Finding]:
        plan_module = _find(project, self.plan_suffix)
        points = dict(self.points) if self.points is not None else None
        plan_line = 0
        if points is None and plan_module is not None:
            points, plan_line = _parse_fault_points(plan_module)

        sites = _collect_sites(project)
        if points is None:
            if not sites:
                return []
            first = sites[0]
            return [
                make_finding(
                    "fault.no-table",
                    first[0],
                    first[2],
                    f"fault poll/inject sites exist but no FAULT_POINTS table was "
                    f"found (expected in a module ending '{self.plan_suffix}')",
                    hint="declare the table or point the checker at it",
                    key="fault.no-table",
                )
            ]

        findings: List[Finding] = []
        declared = set(points)
        plan_path = plan_module.path if plan_module is not None else self.plan_suffix

        # 1. every referenced point must be declared.
        for path, point, lineno in sites:
            if point not in declared:
                findings.append(
                    make_finding(
                        "fault.unknown-point",
                        path,
                        lineno,
                        f"fault point '{point}' is not declared in FAULT_POINTS",
                        hint=f"declare it in {plan_path} or fix the spelling at the site",
                        key=f"unknown:{point}",
                    )
                )

        # 2. every declared point needs >= 1 production hook site (a site in a
        #    module outside the faults package itself).
        production: Set[str] = {
            point for path, point, _ in sites if "faults/" not in path
        }
        # 3. every declared point needs >= 1 obligation scenario injecting it.
        scenario_module = _find(project, self.scenarios_suffix)
        covered: Set[str] = set()
        if scenario_module is not None:
            covered = {point for _, point, _ in _collect_sites_in(scenario_module)}

        for point in sorted(declared):
            if point not in production:
                findings.append(
                    make_finding(
                        "fault.unpolled-point",
                        plan_path,
                        plan_line,
                        f"declared fault point '{point}' has no production "
                        f"poll_fault() hook site",
                        hint="add the hook at the code it describes, or drop the table entry",
                        key=f"unpolled:{point}",
                    )
                )
            if scenario_module is not None and point not in covered:
                findings.append(
                    make_finding(
                        "fault.uncovered-point",
                        scenario_module.path,
                        0,
                        f"declared fault point '{point}' appears in no obligation "
                        f"scenario — the release gate never exercises its recovery",
                        hint=f"add a scenario injecting '{point}' and bind an obligation to it",
                        key=f"uncovered:{point}",
                    )
                )
        return findings


def _find(project: Project, suffix: str) -> Optional[SourceModule]:
    for module in project.modules:
        if module.path.endswith(suffix):
            return module
    return None


def _parse_fault_points(module: SourceModule) -> Tuple[Optional[Dict[str, str]], int]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "FAULT_POINTS" for t in node.targets):
            continue
        if not isinstance(node.value, ast.Dict):
            return None, node.lineno
        table: Dict[str, str] = {}
        for key_node, value_node in zip(node.value.keys, node.value.values):
            key = string_literal(key_node) if key_node is not None else None
            if key is None:
                continue
            table[key] = string_literal(value_node) or ""
        return table, node.lineno
    return None, 0


def _collect_sites(project: Project) -> List[Tuple[str, str, int]]:
    sites: List[Tuple[str, str, int]] = []
    for module in project.modules:
        sites.extend(_collect_sites_in(module))
    return sites


def _collect_sites_in(module: SourceModule) -> List[Tuple[str, str, int]]:
    """Every (path, point, line) where a fault point string is referenced."""
    sites: List[Tuple[str, str, int]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        leaf = name.rsplit(".", 1)[-1]
        point: Optional[str] = None
        if leaf in ("poll_fault", "poll") and (
            leaf == "poll_fault" or name.endswith("faults.poll") or name.endswith("plan.poll")
        ):
            if node.args:
                point = string_literal(node.args[0])
        elif leaf == "single" and name.endswith("FaultPlan.single"):
            if node.args:
                point = string_literal(node.args[0])
        elif leaf == "FaultSpec":
            if node.args:
                point = string_literal(node.args[0])
            for kw in node.keywords:
                if kw.arg == "point":
                    point = string_literal(kw.value)
        if point is not None:
            sites.append((module.path, point, node.lineno))
    return sites
