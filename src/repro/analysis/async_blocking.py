"""Asyncio-blocking checker (rule ``async.blocking-call``).

Flags calls inside ``async def`` bodies that block the event loop:

* ``time.sleep`` (use ``asyncio.sleep``);
* synchronous file I/O: ``open()``, ``Path.read_text/write_text/
  read_bytes/write_bytes``;
* blocking lock operations: ``<lock>.acquire(...)`` without
  ``blocking=False`` and ``with self._lock:`` on threading locks
  (``asyncio`` primitives are awaited, never entered synchronously);
* queue/thread joins: ``.get()`` / ``.join()`` on queue/thread-ish names;
* subprocess / ``os.system``;
* socket operations: ``.recv`` / ``.send`` / ``.sendall`` / ``.accept``
  / ``.connect`` on socket-ish receivers;
* direct ``TuningService`` work (``submit`` / ``advance`` / ``finish`` /
  ``run`` / ``process`` on a ``service``-named receiver) — these drive
  measurement trials and belong on the worker pool, not the loop.

Nested synchronous ``def`` bodies inside an ``async def`` are skipped:
they run wherever they are called (usually an executor).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .base import Checker, SourceModule, dotted_name
from .findings import Finding, make_finding

_BLOCKING_EXACT = {
    "time.sleep": "use 'await asyncio.sleep(...)' on the event loop",
    "os.system": "run subprocesses via asyncio.create_subprocess_exec",
    "subprocess.run": "run subprocesses via asyncio.create_subprocess_exec",
    "subprocess.call": "run subprocesses via asyncio.create_subprocess_exec",
    "subprocess.check_output": "run subprocesses via asyncio.create_subprocess_exec",
    "subprocess.check_call": "run subprocesses via asyncio.create_subprocess_exec",
    "open": "do file I/O on the worker pool (run_in_executor), not the loop",
}

_PATH_IO = {"read_text", "write_text", "read_bytes", "write_bytes"}

_SOCKET_OPS = {"recv", "recv_into", "send", "sendall", "accept", "connect"}
_SOCKETISH = ("sock", "socket", "conn")

_QUEUEISH = ("queue", "thread", "worker", "proc")

_SERVICE_OPS = {"submit", "advance", "finish", "run", "process"}


class AsyncBlockingChecker(Checker):
    name = "asyncio-blocking"

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(_scan_async_body(module, node))
        return findings


def _scan_async_body(module: SourceModule, func: ast.AsyncFunctionDef) -> List[Finding]:
    findings: List[Finding] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return  # sync nested def: runs elsewhere (executor / callback)
        if isinstance(node, ast.AsyncFunctionDef) and node is not func:
            return  # its own async scope; walked separately
        if isinstance(node, ast.With):
            for item in node.items:
                finding = _check_sync_with(module, func, item)
                if finding:
                    findings.append(finding)
        if isinstance(node, ast.Call):
            finding = _check_call(module, func, node)
            if finding:
                findings.append(finding)
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in func.body:
        visit(stmt)
    return findings


def _check_sync_with(
    module: SourceModule, func: ast.AsyncFunctionDef, item: ast.withitem
) -> Optional[Finding]:
    name = dotted_name(item.context_expr)
    leaf = name.rsplit(".", 1)[-1].lower()
    if name and ("lock" in leaf or "mutex" in leaf or "sem" in leaf):
        return make_finding(
            "async.blocking-call",
            module.path,
            item.context_expr.lineno,
            f"'with {name}:' blocks the event loop in async def {func.name} "
            f"(threading locks park the whole loop, not just this task)",
            hint="keep the state loop-confined (call_soon_threadsafe) or use asyncio.Lock",
            key=f"with:{name}@{func.name}",
        )
    return None


def _check_call(
    module: SourceModule, func: ast.AsyncFunctionDef, node: ast.Call
) -> Optional[Finding]:
    name = dotted_name(node.func)
    if not name:
        return None

    def finding(reason: str, hint: str) -> Finding:
        return make_finding(
            "async.blocking-call",
            module.path,
            node.lineno,
            f"{reason} in async def {func.name}",
            hint=hint,
            key=f"{name}@{func.name}",
        )

    if name in _BLOCKING_EXACT:
        return finding(f"blocking call {name}()", _BLOCKING_EXACT[name])

    if "." not in name:
        return None
    receiver, leaf = name.rsplit(".", 1)
    receiver_leaf = receiver.rsplit(".", 1)[-1].lower()

    if leaf in _PATH_IO:
        return finding(
            f"synchronous file I/O {name}()",
            "do file I/O on the worker pool (run_in_executor), not the loop",
        )
    if leaf == "acquire" and ("lock" in receiver_leaf or "sem" in receiver_leaf):
        if not _has_nonblocking_flag(node):
            return finding(
                f"blocking {name}()",
                "pass blocking=False or keep the state loop-confined",
            )
        return None
    if leaf in _SOCKET_OPS and any(part in receiver_leaf for part in _SOCKETISH):
        return finding(
            f"blocking socket op {name}()",
            "use the asyncio stream reader/writer, not raw socket calls",
        )
    if leaf in ("get", "join") and any(part in receiver_leaf for part in _QUEUEISH):
        return finding(
            f"blocking {name}()",
            "use get_nowait()/run_in_executor or an asyncio.Queue",
        )
    if leaf in _SERVICE_OPS and "service" in receiver_leaf:
        return finding(
            f"direct TuningService work {name}()",
            "post tuning work to the worker pool; only callbacks touch the loop",
        )
    return None


def _has_nonblocking_flag(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "blocking" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    if node.args and isinstance(node.args[0], ast.Constant):
        return node.args[0].value is False
    return False
