"""Obs hygiene checker (rules ``obs.*``).

Keeps metric/span names inside the ``repro-metrics/1`` naming scheme:

* ``obs.dynamic-name`` — the name passed to ``counter`` / ``gauge`` /
  ``histogram`` / ``span`` / ``obs_span`` / ``trace_event`` must be a string
  *literal*.  f-strings and computed names explode metric cardinality (one
  instrument per job fingerprint) and break dashboards; varying data belongs
  in labels/attributes, not the name.
* ``obs.bad-name`` — literal names must be dotted lowercase
  ``subsystem.metric`` (``^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)+$``).
* ``obs.histogram-name`` — histogram instruments record durations in this
  repo; their names must end ``_seconds`` so the unit is in the name.
* ``obs.histogram-units`` — ``<histogram>.observe(x * 1000)`` style
  millisecond scaling is flagged: observes pass seconds, never ms.

The ``obs/`` package itself is exempt — its wrappers forward caller-supplied
names by construction.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from .base import Checker, SourceModule, dotted_name, string_literal
from .findings import Finding, make_finding

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

_METRIC_FACTORIES = {"counter", "gauge", "histogram"}
_SPAN_FUNCS = {"span", "obs_span", "trace_event"}
_MS_FACTORS = (1000, 1000.0, 1e3, 1_000_000, 1e6)


class ObsHygieneChecker(Checker):
    name = "obs-hygiene"

    def __init__(self, exempt_fragment: str = "obs/"):
        self.exempt_fragment = exempt_fragment

    def check_module(self, module: SourceModule) -> List[Finding]:
        if self.exempt_fragment and self.exempt_fragment in module.path:
            return []
        findings: List[Finding] = []
        histogram_bindings: Set[str] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                leaf = dotted_name(node.value.func).rsplit(".", 1)[-1]
                if leaf == "histogram":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            histogram_bindings.add(target.id)
            if not isinstance(node, ast.Call):
                continue
            leaf = dotted_name(node.func).rsplit(".", 1)[-1]
            if leaf in _METRIC_FACTORIES or leaf in _SPAN_FUNCS:
                findings.extend(_check_name(module, node, leaf))
            elif leaf == "observe":
                finding = _check_observe(module, node, histogram_bindings)
                if finding:
                    findings.append(finding)
        return findings


def _check_name(module: SourceModule, node: ast.Call, leaf: str) -> List[Finding]:
    if not node.args:
        return []  # keyword-only or forwarding call; nothing to check
    name_node = node.args[0]
    name = string_literal(name_node)
    if name is None:
        # allow pure identifier forwarding only for *args splats we cannot
        # see through; everything computed is a cardinality bomb.
        return [
            make_finding(
                "obs.dynamic-name",
                module.path,
                node.lineno,
                f"{leaf}() name is not a string literal — dynamic metric/span "
                f"names explode cardinality",
                hint="use a literal name and put the varying value in a label/attribute",
                key=f"dynamic:{leaf}@{node.lineno}",
            )
        ]
    findings: List[Finding] = []
    if not NAME_RE.match(name):
        findings.append(
            make_finding(
                "obs.bad-name",
                module.path,
                node.lineno,
                f"{leaf}() name '{name}' does not match the repro-metrics/1 "
                f"scheme (dotted lowercase 'subsystem.metric')",
                hint="rename to e.g. 'service.requests'",
                key=f"bad-name:{name}",
            )
        )
    if leaf == "histogram" and not name.endswith("_seconds"):
        findings.append(
            make_finding(
                "obs.histogram-name",
                module.path,
                node.lineno,
                f"histogram '{name}' must end '_seconds' — duration histograms "
                f"carry their unit in the name",
                hint="rename to '<thing>_seconds' and observe seconds",
                key=f"histogram-name:{name}",
            )
        )
    return findings


def _check_observe(
    module: SourceModule, node: ast.Call, histogram_bindings: Set[str]
) -> Optional[Finding]:
    func = node.func
    if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
        return None
    if func.value.id not in histogram_bindings or not node.args:
        return None
    if _scales_to_ms(node.args[0]):
        return make_finding(
            "obs.histogram-units",
            module.path,
            node.lineno,
            f"{func.value.id}.observe(...) scales by 1000 — histograms record "
            f"seconds, not milliseconds",
            hint="drop the ms conversion; pass the raw perf_counter() delta",
            key=f"units:{func.value.id}",
        )
    return None


def _scales_to_ms(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, (ast.Mult, ast.Div)):
            for operand in (sub.left, sub.right):
                if isinstance(operand, ast.Constant) and operand.value in _MS_FACTORS:
                    if isinstance(sub.op, ast.Mult) or operand is sub.right:
                        # x * 1000 or 1000 * x always suspect; x / 1000 converts
                        # the *other* way (us -> s) and x / 0.001 is unusual
                        # enough to leave alone.
                        if isinstance(sub.op, ast.Mult):
                            return True
    return False
