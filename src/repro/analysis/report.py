"""Report rendering for :mod:`repro.analysis` (JSON + human text).

The JSON artifact (``ANALYSIS_report.json``, schema ``repro-analysis/1``)
is what CI uploads; the human rendering is what the terminal shows.  Both
carry the same partition: *new* findings (fail the gate), *baselined*
findings (accepted debt, listed so it stays visible), and *stale* baseline
entries (debt that got fixed — delete the entry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from .baseline import BaselineEntry
from .findings import Finding

SCHEMA = "repro-analysis/1"
DEFAULT_REPORT = "ANALYSIS_report.json"


@dataclass
class Report:
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)
    checkers: List[str] = field(default_factory=list)
    files_scanned: int = 0
    root: str = ""

    @property
    def ok(self) -> bool:
        return not self.new

    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA,
            "root": self.root,
            "checkers": self.checkers,
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "counts": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale_baseline_entries": len(self.stale),
            },
            "findings": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": [
                {"rule": e.rule, "path": e.path, "key": e.key} for e in self.stale
            ],
        }

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        lines: List[str] = []
        lines.append(
            f"repro analyze: {self.files_scanned} files, "
            f"{len(self.checkers)} checkers ({', '.join(self.checkers)})"
        )
        if self.new:
            lines.append("")
            lines.append(f"{len(self.new)} new finding(s):")
            for finding in self.new:
                lines.append("  " + finding.render().replace("\n", "\n  "))
        if self.baselined:
            lines.append("")
            lines.append(f"{len(self.baselined)} baselined finding(s) (accepted debt):")
            for finding in self.baselined:
                lines.append(f"  {finding.path}: [{finding.rule}] {finding.stable_key()}")
        if self.stale:
            lines.append("")
            lines.append(
                f"{len(self.stale)} stale baseline entr{'y' if len(self.stale) == 1 else 'ies'} "
                f"(finding fixed — delete from baseline):"
            )
            for entry in self.stale:
                lines.append(f"  [{entry.rule}] {entry.path} :: {entry.key}")
        lines.append("")
        lines.append("OK — no new findings" if self.ok else "FAIL — new findings above")
        return "\n".join(lines)
