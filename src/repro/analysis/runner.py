"""Analysis runner + CLI glue (``repro analyze`` / ``python -m repro.analysis``).

``run_analysis`` loads a project, runs every registered checker, applies the
baseline, and returns a :class:`~repro.analysis.report.Report`.  The CLI exits
non-zero when any non-baselined finding (or a syntax error) survives.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .async_blocking import AsyncBlockingChecker
from .base import Checker, Project
from .baseline import DEFAULT_BASELINE, Baseline, BaselineError
from .fault_coverage import FaultCoverageChecker
from .findings import Finding
from .lock_discipline import LockDisciplineChecker
from .obs_hygiene import ObsHygieneChecker
from .report import DEFAULT_REPORT, Report


def default_checkers() -> List[Checker]:
    return [
        LockDisciplineChecker(),
        AsyncBlockingChecker(),
        FaultCoverageChecker(),
        ObsHygieneChecker(),
    ]


def analyze_project(
    project: Project,
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Baseline] = None,
) -> Report:
    checkers = list(checkers) if checkers is not None else default_checkers()
    baseline = baseline if baseline is not None else Baseline()
    findings: List[Finding] = list(project.syntax_errors)
    for checker in checkers:
        findings.extend(checker.run(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.stable_key()))
    new, baselined = baseline.split(findings)
    return Report(
        new=new,
        baselined=baselined,
        stale=baseline.stale_entries(findings),
        checkers=[checker.name for checker in checkers],
        files_scanned=len(project.modules),
        root=str(project.root or ""),
    )


def run_analysis(
    root: Path,
    baseline_path: Optional[Path] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> Report:
    project = Project.load(Path(root))
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    return analyze_project(project, checkers=checkers, baseline=baseline)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root",
        default="src",
        help="directory tree to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline/suppression file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--report",
        default=DEFAULT_REPORT,
        help=f"JSON report artifact path (default: {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0 "
        "(edit in the justification afterwards — entries ship with a "
        "placeholder that load-time validation accepts but review should not)",
    )


def main_from_args(args: argparse.Namespace) -> int:
    root = Path(args.root)
    if not root.exists():
        print(f"repro analyze: root '{root}' does not exist", file=sys.stderr)
        return 2
    try:
        report = run_analysis(root, baseline_path=Path(args.baseline))
    except BaselineError as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        everything = report.new + report.baselined
        baseline = Baseline.from_findings(
            everything, justification="TODO: justify this suppression"
        )
        baseline.write(args.baseline)
        print(
            f"repro analyze: wrote {len(baseline.entries)} entries to {args.baseline} "
            f"— replace every TODO justification before committing"
        )
        return 0
    if args.report:
        report.write(args.report)
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="repo-aware static checkers: lock discipline, asyncio "
        "blocking calls, fault/obligation coverage, obs hygiene",
    )
    add_arguments(parser)
    return main_from_args(parser.parse_args(argv))
