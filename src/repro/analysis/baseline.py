"""Baseline / suppression file for :mod:`repro.analysis`.

A baseline entry accepts one *existing* finding so the gate stays green
while the debt is tracked.  Entries match on ``(rule, path, key)`` — the
finding's stable key, not its line number — so unrelated edits don't
invalidate the baseline, but a second violation of the same rule in the
same file still fails.  Every entry must carry a non-empty ``justification``
(enforced at load time): a baseline without a reason is just a muted bug.

File format (``ANALYSIS_baseline.json``)::

    {
      "schema": "repro-analysis-baseline/1",
      "entries": [
        {"rule": "...", "path": "...", "key": "...", "justification": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .findings import Finding

SCHEMA = "repro-analysis-baseline/1"
DEFAULT_BASELINE = "ANALYSIS_baseline.json"


class BaselineError(ValueError):
    """Malformed baseline file (bad schema, missing fields, no justification)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    key: str
    justification: str

    def ident(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.key)


class Baseline:
    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries = list(entries)
        self._index = {entry.ident() for entry in self.entries}

    def suppresses(self, finding: Finding) -> bool:
        return (finding.rule, finding.path, finding.stable_key()) in self._index

    def split(self, findings: Iterable[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, baselined)."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            (baselined if self.suppresses(finding) else new).append(finding)
        return new, baselined

    def stale_entries(self, findings: Iterable[Finding]) -> List[BaselineEntry]:
        """Entries no current finding matches — candidates for deletion."""
        live = {(f.rule, f.path, f.stable_key()) for f in findings}
        return [entry for entry in self.entries if entry.ident() not in live]

    # -- persistence ---------------------------------------------------- #
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
        return cls.from_dict(payload, origin=str(path))

    @classmethod
    def from_dict(cls, payload: Dict, origin: str = "<memory>") -> "Baseline":
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            raise BaselineError(f"{origin}: expected schema '{SCHEMA}'")
        entries: List[BaselineEntry] = []
        for idx, raw in enumerate(payload.get("entries", [])):
            missing = [
                field
                for field in ("rule", "path", "key", "justification")
                if not isinstance(raw.get(field), str)
            ]
            if missing:
                raise BaselineError(
                    f"{origin}: entry {idx} missing/invalid fields: {', '.join(missing)}"
                )
            if not raw["justification"].strip():
                raise BaselineError(
                    f"{origin}: entry {idx} ({raw['rule']} @ {raw['path']}) has an "
                    f"empty justification — baselines must say why"
                )
            entries.append(
                BaselineEntry(raw["rule"], raw["path"], raw["key"], raw["justification"])
            )
        return cls(entries)

    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "key": entry.key,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_findings(cls, findings: Iterable[Finding], justification: str) -> "Baseline":
        """Build a baseline accepting every given finding (``--write-baseline``)."""
        seen = set()
        entries = []
        for finding in findings:
            ident = (finding.rule, finding.path, finding.stable_key())
            if ident in seen:
                continue
            seen.add(ident)
            entries.append(BaselineEntry(*ident, justification=justification))
        return cls(entries)
