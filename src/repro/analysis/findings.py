"""Finding model for the :mod:`repro.analysis` checkers.

A :class:`Finding` is one rule violation at one source location.  Findings
carry a *stable key* — a line-number-insensitive identifier built from the
rule id plus whatever the checker deems the violation's identity (usually
``ClassName.attr`` or a fault-point string).  Baseline entries match on
``(rule, path, key)`` so a baselined finding survives unrelated edits that
shift line numbers, but a *new* violation of the same rule elsewhere in the
file still fails the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    hint: str = ""
    key: str = ""  # stable identity for baselining; defaults to message

    def stable_key(self) -> str:
        return self.key or self.message

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "key": self.stable_key(),
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, pre-baseline."""

    findings: List[Finding] = field(default_factory=list)
    checkers: List[str] = field(default_factory=list)
    files_scanned: int = 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=lambda f: (f.path, f.line, f.rule, f.stable_key()))


def make_finding(
    rule: str,
    path: str,
    line: int,
    message: str,
    *,
    hint: str = "",
    key: Optional[str] = None,
) -> Finding:
    return Finding(rule=rule, path=path, line=line, message=message, hint=hint, key=key or message)
