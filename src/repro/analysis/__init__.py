"""Repo-aware static analysis for the repro tuning/serving stack.

Four AST-level checkers enforce the correctness conventions the codebase
relies on (see ``docs/architecture.md`` § Static analysis):

* :mod:`~repro.analysis.lock_discipline` — declared-guarded attributes are
  only touched under their lock / in ``*_locked`` helpers;
* :mod:`~repro.analysis.async_blocking` — no blocking calls inside
  ``async def`` bodies;
* :mod:`~repro.analysis.fault_coverage` — fault-point table, production
  ``poll_fault`` sites, and obligation scenarios stay in sync;
* :mod:`~repro.analysis.obs_hygiene` — metric/span names are literal,
  well-formed, and histograms observe seconds.

Entry points: ``repro analyze`` (CLI), ``python -m repro.analysis``,
``make analyze``.
"""

from .base import Checker, Project, SourceModule
from .baseline import Baseline, BaselineEntry, BaselineError
from .findings import Finding, make_finding
from .report import Report
from .runner import analyze_project, default_checkers, main, run_analysis

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "Finding",
    "Project",
    "Report",
    "SourceModule",
    "analyze_project",
    "default_checkers",
    "main",
    "make_finding",
    "run_analysis",
]
