"""Guarded-attribute registry for the lock-discipline checker.

An attribute is *guarded* when concurrent readers/writers must hold a
specific lock to touch it.  The registry is seeded with the repo's known
shared-state classes (:class:`~repro.serving.registry.ScheduleRegistry`,
:class:`~repro.records.RecordStore`, :class:`~repro.serving.service.TuningService`,
the per-job drive lock, :class:`~repro.faults.plan.FaultPlan`) and extended
in-source via ``# guarded-by: <lock>`` comments on the line that first
assigns the attribute in ``__init__``::

    self._best = {}          # guarded-by: _mutex

Two checking modes exist:

``self``
    The attribute is checked on ``self.<attr>`` accesses inside methods of
    the declaring class (matched by class name anywhere in the project).

``receiver``
    The attribute is checked on *any* receiver (``job.finished``), but only
    inside the module that declares the class — cross-module attribute names
    collide too easily (``result.trials_used``) for a global rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .base import SourceModule

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class GuardedAttr:
    """One attribute/lock pairing."""

    cls: str  # declaring class name
    attr: str
    lock: str  # lock attribute name on the same object
    mode: str = "self"  # "self" | "receiver"
    module: str = ""  # for receiver mode: only check inside this path suffix


#: The repo's known shared-state invariants.  Keep this table in sync with the
#: ``# guarded-by:`` annotations in the source files; the checker unions both.
SEED_GUARDS: Tuple[GuardedAttr, ...] = (
    # ScheduleRegistry: every structure the reader/writer paths share —
    # the lazy shard index, the materialised-entry cache, per-file states,
    # the shard-handle LRU, the per-target embedding matrices and the
    # layout/laziness flags.
    GuardedAttr("ScheduleRegistry", "_best", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_index", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_files", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_targets", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_matrices", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_all_indexed", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_native", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_manifest_ok", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_handles", "_mutex"),
    GuardedAttr("ScheduleRegistry", "_read_handles", "_mutex"),
    GuardedAttr("ScheduleRegistry", "total_lines", "_mutex"),
    GuardedAttr("ScheduleRegistry", "skipped_lines", "_mutex"),
    # RecordStore: appends come from server worker threads concurrently.
    GuardedAttr("RecordStore", "_measures", "_lock"),
    GuardedAttr("RecordStore", "_results", "_lock"),
    GuardedAttr("RecordStore", "skipped_lines", "_lock"),
    GuardedAttr("RecordStore", "slow_flushes", "_lock"),
    GuardedAttr("RecordStore", "flush_failures", "_lock"),
    # TuningService: job table + stats counters.
    GuardedAttr("TuningService", "_jobs", "_lock"),
    GuardedAttr("TuningService", "_order", "_lock"),
    GuardedAttr("TuningService", "_transfer_donors", "_lock"),
    GuardedAttr("TuningService", "_warm_start_donors", "_lock"),
    GuardedAttr("TuningService", "jobs_created", "_lock"),
    GuardedAttr("TuningService", "registry_hits", "_lock"),
    GuardedAttr("TuningService", "coalesced_requests", "_lock"),
    GuardedAttr("TuningService", "aborted_jobs", "_lock"),
    # Per-job drive lock: serializes the drivers racing run()/advance().
    GuardedAttr("_Job", "finished", "drive_lock", mode="receiver", module="serving/service.py"),
    GuardedAttr(
        "_Job", "trials_used", "drive_lock", mode="receiver", module="serving/service.py"
    ),
    # FaultPlan bookkeeping read by assertions and the gate.
    GuardedAttr("FaultPlan", "fired", "_lock"),
    GuardedAttr("FaultPlan", "_arrivals", "_lock"),
)


def parse_annotations(module: SourceModule) -> List[GuardedAttr]:
    """Collect ``# guarded-by:`` annotations from one module.

    The annotation sits on a ``self.<attr> = ...`` line inside a class body
    (conventionally ``__init__``); the declaring class is found by walking
    the AST for the innermost class containing that line.
    """
    annotated: Dict[int, str] = {}
    for lineno, text in enumerate(module.lines, start=1):
        match = GUARDED_BY_RE.search(text)
        if match:
            annotated[lineno] = match.group(1)
    if not annotated:
        return []

    guards: List[GuardedAttr] = []
    for class_node in _classes(module.tree):
        for node in ast.walk(class_node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            lock = annotated.get(node.lineno)
            if lock is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards.append(
                        GuardedAttr(class_node.name, target.attr, lock, mode="self")
                    )
    return guards


def _classes(tree: ast.Module) -> Iterable[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node
