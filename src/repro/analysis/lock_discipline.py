"""Lock-discipline checker (rule ``lock.guarded-attr`` / ``lock.locked-call``).

Enforces the repo's locking convention on attributes declared guarded (see
:mod:`repro.analysis.guarded`):

* a guarded ``self.<attr>`` may only be read or written

  - lexically inside ``with self.<lock>:`` for the declared lock,
  - inside a method whose name ends in ``_locked`` (the caller holds the
    lock — this is the repo's "private helper under lock" convention), or
  - inside ``__init__`` (the object is not yet published to other threads);

* a call to a ``*_locked`` helper must itself be lexically inside a
  ``with`` on something lock-like, or come from another ``_locked`` method
  or ``__init__``.  This is what catches deleting the ``RLock`` guard from
  ``ScheduleRegistry.record()`` (the PR 8 bug): the ``with self._mutex:``
  disappears but the ``self._append_locked(...)`` call remains.

Receiver-mode guards (the per-job ``drive_lock``) are checked on any
variable, but only inside the module that declares the class.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .base import Checker, SourceModule, dotted_name
from .findings import Finding, make_finding
from .guarded import SEED_GUARDS, GuardedAttr, parse_annotations

#: method names exempt from the lexical-lock requirement.
_EXEMPT_METHODS = {"__init__"}

_LOCKISH = ("lock", "mutex")


def _is_lockish(name: str) -> bool:
    leaf = name.rsplit(".", 1)[-1].lower()
    return any(part in leaf for part in _LOCKISH)


class LockDisciplineChecker(Checker):
    name = "lock-discipline"

    def __init__(self, guards: Tuple[GuardedAttr, ...] = SEED_GUARDS):
        self.guards = guards

    def check_module(self, module: SourceModule) -> List[Finding]:
        guards = list(self.guards) + parse_annotations(module)
        by_class: Dict[str, Dict[str, GuardedAttr]] = {}
        receiver_guards: Dict[str, GuardedAttr] = {}
        for guard in guards:
            if guard.mode == "receiver":
                if guard.module and not module.path.endswith(guard.module):
                    continue
                receiver_guards[guard.attr] = guard
            else:
                by_class.setdefault(guard.cls, {})[guard.attr] = guard

        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_guards = by_class.get(node.name, {})
            # Receiver guards apply inside every class of the declaring
            # module (the helper that drives a job is not a _Job method),
            # and the ``*_locked`` call convention applies everywhere, so
            # classes without guards are still walked.
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    findings.extend(
                        _check_method(module, node.name, item, class_guards, receiver_guards)
                    )
        # module-level functions can still touch receiver-mode attrs and
        # call ``*_locked`` helpers.
        for item in module.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_check_method(module, "", item, {}, receiver_guards))
        return findings


def _check_method(
    module: SourceModule,
    cls_name: str,
    func: ast.AST,
    class_guards: Dict[str, GuardedAttr],
    receiver_guards: Dict[str, GuardedAttr],
) -> List[Finding]:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    exempt = func.name in _EXEMPT_METHODS or func.name.endswith("_locked")
    findings: List[Finding] = []
    walker = _LockWalker(module, cls_name, func.name, exempt, class_guards, receiver_guards)
    for stmt in func.body:
        walker.visit_stmt(stmt)
    findings.extend(walker.findings)
    return findings


class _LockWalker:
    """Lexical walk of one method body tracking which locks are held."""

    def __init__(
        self,
        module: SourceModule,
        cls_name: str,
        method: str,
        exempt: bool,
        class_guards: Dict[str, GuardedAttr],
        receiver_guards: Dict[str, GuardedAttr],
    ):
        self.module = module
        self.cls_name = cls_name
        self.method = method
        self.exempt = exempt
        self.class_guards = class_guards
        self.receiver_guards = receiver_guards
        self.held: Set[Tuple[str, str]] = set()  # (receiver, lock attr)
        self.lockish_depth = 0  # inside any with on a lock-like name
        self.findings: List[Finding] = []
        self.reported: Set[Tuple[str, int]] = set()

    # -- walk ------------------------------------------------------------ #
    # One dispatch covers every node kind (including non-stmt/expr nodes
    # like excepthandler and comprehension, which hide plenty of attribute
    # accesses) so nothing escapes the lexical lock tracking.
    def visit_stmt(self, node: ast.AST) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[Tuple[str, str]] = []
            lockish = 0
            for item in node.items:
                name = dotted_name(item.context_expr)
                if not name and isinstance(item.context_expr, ast.Call):
                    name = dotted_name(item.context_expr.func)
                if "." in name:
                    receiver, leaf = name.rsplit(".", 1)
                    acquired.append((receiver, leaf))
                if name and _is_lockish(name):
                    lockish = 1
                self.visit_stmt(item.context_expr)
            before = set(self.held)
            self.held.update(acquired)
            self.lockish_depth += lockish
            for stmt in node.body:
                self.visit_stmt(stmt)
            self.held = before
            self.lockish_depth -= lockish
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # nested definitions run later, outside this lexical lock scope
            self._visit_nested(node)
            return
        if isinstance(node, ast.Attribute):
            self._check_attribute(node)
        elif isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self.visit_stmt(child)

    def _visit_nested(self, node: ast.AST) -> None:
        saved_held, saved_depth = self.held, self.lockish_depth
        self.held, self.lockish_depth = set(), 0
        body = node.body if isinstance(node.body, list) else [node.body]
        for item in body:
            self.visit_stmt(item)
        self.held, self.lockish_depth = saved_held, saved_depth

    # -- rules ----------------------------------------------------------- #
    def _check_attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.value, ast.Name):
            return
        receiver = node.value.id
        guard = None
        if receiver == "self" and node.attr in self.class_guards:
            guard = self.class_guards[node.attr]
        elif node.attr in self.receiver_guards:
            guard = self.receiver_guards[node.attr]
        if guard is None or self.exempt:
            return
        if (receiver, guard.lock) in self.held:
            return
        # ``self.finished`` inside _Job methods counts as receiver mode too:
        # accept the declared lock held on *any* receiver for receiver guards.
        if guard.mode == "receiver" and any(lock == guard.lock for _, lock in self.held):
            return
        marker = (f"{guard.cls}.{guard.attr}", node.lineno)
        if marker in self.reported:
            return
        self.reported.add(marker)
        self.findings.append(
            make_finding(
                "lock.guarded-attr",
                self.module.path,
                node.lineno,
                f"{receiver}.{node.attr} is guarded by {guard.lock} "
                f"(declared on {guard.cls}) but accessed outside "
                f"'with {receiver}.{guard.lock}:' in {self._where()}",
                hint=(
                    f"wrap the access in 'with {receiver}.{guard.lock}:', move it "
                    f"into a '*_locked' helper called under the lock, or update the "
                    f"guarded-attribute registry if the invariant changed"
                ),
                key=f"{guard.cls}.{guard.attr}@{self._where()}",
            )
        )

    def _check_call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if not name or "." not in name:
            return
        receiver, leaf = name.rsplit(".", 1)
        if not leaf.endswith("_locked"):
            return
        if self.exempt or self.lockish_depth > 0:
            return
        marker = (name, node.lineno)
        if marker in self.reported:
            return
        self.reported.add(marker)
        self.findings.append(
            make_finding(
                "lock.locked-call",
                self.module.path,
                node.lineno,
                f"call to {name}() outside any lock scope in {self._where()} — "
                f"'_locked' helpers require the caller to hold the lock",
                hint=f"wrap the call in the owning lock's 'with' block in {self._where()}",
                key=f"{name}@{self._where()}",
            )
        )

    def _where(self) -> str:
        return f"{self.cls_name}.{self.method}" if self.cls_name else self.method
