"""Project loader and checker base class for :mod:`repro.analysis`.

The framework is deliberately small: a :class:`SourceModule` wraps one
parsed file (path, source text, AST), a :class:`Project` is the set of
modules under analysis, and a :class:`Checker` contributes findings either
per module (:meth:`Checker.check_module`) or once over the whole project
(:meth:`Checker.check_project`) for cross-file rules such as
fault-point/obligation coverage.

Modules can be loaded from disk (:meth:`Project.load`) or built from
in-memory sources (:meth:`Project.from_sources`) so tests can feed checkers
small fixture snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .findings import Finding, make_finding


class SourceModule:
    """One parsed Python source file."""

    def __init__(self, path: str, source: str, tree: Optional[ast.Module] = None):
        self.path = path  # repo-relative, forward slashes
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self.lines = source.splitlines()


class Project:
    """The set of modules one analysis run looks at."""

    def __init__(self, modules: Sequence[SourceModule], root: Optional[Path] = None):
        self.modules = list(modules)
        self.root = root
        self.syntax_errors: List[Finding] = []

    @classmethod
    def load(cls, root: Path, paths: Optional[Iterable[Path]] = None) -> "Project":
        """Load every ``*.py`` under ``root`` (or just ``paths``) into a project.

        Files that fail to parse become ``analysis.syntax`` findings instead of
        aborting the run, so one broken file cannot hide every other finding.
        """
        root = Path(root)
        if paths is None:
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = sorted(Path(p) for p in paths)
        modules: List[SourceModule] = []
        errors: List[Finding] = []
        for file_path in candidates:
            rel = _relpath(file_path, root)
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as exc:
                errors.append(
                    make_finding("analysis.syntax", rel, 0, f"unreadable file: {exc}")
                )
                continue
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                errors.append(
                    make_finding(
                        "analysis.syntax",
                        rel,
                        exc.lineno or 0,
                        f"syntax error: {exc.msg}",
                    )
                )
                continue
            modules.append(SourceModule(rel, source, tree))
        project = cls(modules, root=root)
        project.syntax_errors = errors
        return project

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from ``{path: source}`` — the test-fixture entry point."""
        return cls([SourceModule(path, text) for path, text in sorted(sources.items())])

    def module(self, path: str) -> Optional[SourceModule]:
        for mod in self.modules:
            if mod.path == path:
                return mod
        return None


class Checker:
    """Base class: override :meth:`check_module` and/or :meth:`check_project`."""

    name = "checker"

    def check_module(self, module: SourceModule) -> List[Finding]:
        return []

    def check_project(self, project: Project) -> List[Finding]:
        return []

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            findings.extend(self.check_module(module))
        findings.extend(self.check_project(project))
        return findings


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


# --------------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------------- #
def call_name(node: ast.Call) -> str:
    """Dotted name of a call target: ``time.sleep`` / ``self._append`` / ``open``."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    else:
        return ""
    return ".".join(reversed(parts))


def string_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
