"""Baseline auto-schedulers.

* :class:`~repro.baselines.ansor.AnsorScheduler` — the paper's main baseline:
  uniform sketch selection, evolutionary low-level search, greedy
  gradient-based task allocation, fixed-length rounds.
* :class:`~repro.baselines.flextensor.FlextensorScheduler` — fixed-length RL
  search on a single operator (no subgraph / sketch levels), used for the
  motivation observation of Fig. 1(c).
* :class:`~repro.baselines.autotvm.SimulatedAnnealingScheduler` — an
  AutoTVM-style simulated-annealing parameter search.
* :class:`~repro.baselines.task_scheduler.GradientTaskScheduler` — Ansor's
  greedy gradient-based subgraph allocator, shared by the baselines and the
  ablation experiments.
"""

from repro.baselines.evolutionary import EvolutionarySearch
from repro.baselines.task_scheduler import GradientTaskScheduler
from repro.baselines.ansor import AnsorScheduler
from repro.baselines.flextensor import FlextensorScheduler
from repro.baselines.autotvm import SimulatedAnnealingScheduler

__all__ = [
    "AnsorScheduler",
    "EvolutionarySearch",
    "FlextensorScheduler",
    "GradientTaskScheduler",
    "SimulatedAnnealingScheduler",
]
