"""Greedy gradient-based task (subgraph) allocation — Ansor's strategy.

Ansor allocates the next tuning round to the subgraph whose gradient
estimation (Eq. 3) is the largest, deterministically.  HARL's contribution at
this level is replacing the greedy argmax with a non-stationary bandit; this
module provides the greedy allocator so the Ansor baseline, the
"HARL w/o subgraph MAB" ablation and the Fig. 1(a) observation all share one
implementation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.subgraph_reward import SubgraphState, normalized_rewards
from repro.networks.graph import NetworkGraph

__all__ = ["GradientTaskScheduler"]


class GradientTaskScheduler:
    """Deterministic greedy task selector driven by the Eq. 3 gradient reward."""

    name = "gradient"

    def __init__(
        self,
        network: NetworkGraph,
        alpha: float = 0.2,
        beta: float = 2.0,
        backward_window: int = 3,
    ):
        self.network = network
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.backward_window = int(backward_window)
        self.states: Dict[str, SubgraphState] = {
            sg.name: SubgraphState(
                name=sg.name,
                weight=sg.weight,
                flops=sg.dag.flops,
                similarity_group=sg.reward_group,
            )
            for sg in network
        }
        self.task_names: List[str] = [sg.name for sg in network]
        self.allocations: Dict[str, int] = {name: 0 for name in self.task_names}

    # ------------------------------------------------------------------ #
    def rewards(self) -> np.ndarray:
        """Current normalised gradient reward of every task."""
        return normalized_rewards(
            [self.states[name] for name in self.task_names],
            alpha=self.alpha,
            beta=self.beta,
            backward_window=self.backward_window,
        )

    def _candidates(self, among: Optional[Sequence[str]]) -> List[str]:
        """Resolve (and validate) the candidate task names of one selection."""
        if among is None:
            return list(self.task_names)
        allowed = set(among)
        candidates = [name for name in self.task_names if name in allowed]
        if not candidates:
            raise ValueError("next_task needs at least one candidate task")
        return candidates

    def _untuned(self, candidates: Sequence[str]) -> Optional[str]:
        """First never-tuned candidate: the shared warm-up discipline.

        Every candidate gets one round before any reward-driven selection,
        so every gradient estimate is grounded in a measurement.
        """
        for name in candidates:
            if self.states[name].rounds == 0:
                return name
        return None

    def next_task(self, among: Optional[Sequence[str]] = None) -> str:
        """Greedy selection: the task with the largest expected benefit.

        Never-tuned tasks are warmed up first (one round each).  ``among``
        restricts the choice to a subset of task names (used by network
        drivers to skip tasks whose budget is already settled).
        """
        candidates = self._candidates(among)
        untuned = self._untuned(candidates)
        if untuned is not None:
            return untuned
        rewards = self.rewards()
        by_name = dict(zip(self.task_names, rewards))
        return max(candidates, key=lambda name: by_name[name])

    def record(self, task_name: str, best_latency: float, trials: int = 0) -> None:
        """Record the outcome of a tuning round on ``task_name``.

        ``best_latency`` is the subgraph's best latency after the round:
        ``+inf`` marks a round whose measurements all failed, but zero,
        negative and NaN latencies are programming errors and raise, as do
        negative ``trials`` (mirroring ``HardwareTarget.__post_init__``).
        """
        if task_name not in self.states:
            raise KeyError(task_name)
        latency = float(best_latency)
        if math.isnan(latency):
            raise ValueError(f"latency for task {task_name!r} must not be NaN")
        if latency <= 0:
            raise ValueError(
                f"latency for task {task_name!r} must be positive, got {latency}"
            )
        trials = int(trials)
        if trials < 0:
            raise ValueError(
                f"trials for task {task_name!r} must be non-negative, got {trials}"
            )
        self.states[task_name].record(latency)
        self.allocations[task_name] += trials

    def estimated_latency(self) -> float:
        """Current end-to-end latency estimate ``sum_n w_n * g_n``."""
        return self.network.estimated_latency(
            {name: state.best_latency for name, state in self.states.items()}
        )

    def best_latencies(self) -> Dict[str, float]:
        return {name: state.best_latency for name, state in self.states.items()}
