"""Greedy gradient-based task (subgraph) allocation — Ansor's strategy.

Ansor allocates the next tuning round to the subgraph whose gradient
estimation (Eq. 3) is the largest, deterministically.  HARL's contribution at
this level is replacing the greedy argmax with a non-stationary bandit; this
module provides the greedy allocator so the Ansor baseline, the
"HARL w/o subgraph MAB" ablation and the Fig. 1(a) observation all share one
implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.subgraph_reward import SubgraphState, normalized_rewards
from repro.networks.graph import NetworkGraph

__all__ = ["GradientTaskScheduler"]


class GradientTaskScheduler:
    """Deterministic greedy task selector driven by the Eq. 3 gradient reward."""

    def __init__(
        self,
        network: NetworkGraph,
        alpha: float = 0.2,
        beta: float = 2.0,
        backward_window: int = 3,
    ):
        self.network = network
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.backward_window = int(backward_window)
        self.states: Dict[str, SubgraphState] = {
            sg.name: SubgraphState(
                name=sg.name,
                weight=sg.weight,
                flops=sg.dag.flops,
                similarity_group=sg.similarity_group or str(sg.dag.tags.get("op", "")),
            )
            for sg in network
        }
        self.task_names: List[str] = [sg.name for sg in network]
        self.allocations: Dict[str, int] = {name: 0 for name in self.task_names}

    # ------------------------------------------------------------------ #
    def rewards(self) -> np.ndarray:
        """Current normalised gradient reward of every task."""
        return normalized_rewards(
            [self.states[name] for name in self.task_names],
            alpha=self.alpha,
            beta=self.beta,
            backward_window=self.backward_window,
        )

    def next_task(self) -> str:
        """Greedy selection: the task with the largest expected benefit.

        Never-tuned tasks are warmed up first (one round each) so every
        gradient estimate is grounded in at least one measurement round.
        """
        for name in self.task_names:
            if self.states[name].rounds == 0:
                return name
        rewards = self.rewards()
        return self.task_names[int(np.argmax(rewards))]

    def record(self, task_name: str, best_latency: float, trials: int = 0) -> None:
        """Record the outcome of a tuning round on ``task_name``."""
        if task_name not in self.states:
            raise KeyError(task_name)
        self.states[task_name].record(best_latency)
        self.allocations[task_name] += int(trials)

    def estimated_latency(self) -> float:
        """Current end-to-end latency estimate ``sum_n w_n * g_n``."""
        return self.network.estimated_latency(
            {name: state.best_latency for name, state in self.states.items()}
        )

    def best_latencies(self) -> Dict[str, float]:
        return {name: state.best_latency for name, state in self.states.items()}
