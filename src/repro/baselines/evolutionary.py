"""Evolutionary schedule search (Ansor's low-level exploration strategy).

A population of schedules evolves for a few generations: parents are selected
with probability proportional to their cost-model score, children are produced
by mutation (random modification actions) and crossover (mixing the knob
groups of two parents), and every visited schedule is recorded so the caller
can pick the top-K candidates for measurement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.actions import ActionSpace, apply_action
from repro.tensor.sampler import sample_initial_schedules, sample_schedule
from repro.tensor.schedule import CPU_UNROLL_DEPTHS, Schedule
from repro.tensor.sketch import Sketch

__all__ = ["EvolutionarySearch"]


class EvolutionarySearch:
    """Cost-model-guided evolutionary search over schedules of one sketch."""

    def __init__(
        self,
        cost_model,
        population_size: int = 128,
        generations: int = 4,
        mutation_prob: float = 0.85,
        crossover_prob: float = 0.4,
        mutation_steps: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        self.cost_model = cost_model
        self.population_size = int(population_size)
        self.generations = int(generations)
        self.mutation_prob = float(mutation_prob)
        self.crossover_prob = float(crossover_prob)
        self.mutation_steps = int(mutation_steps)
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    def search(
        self,
        sketch: Sketch,
        unroll_depths: Tuple[int, ...] = CPU_UNROLL_DEPTHS,
        warm_start: Optional[Sequence[Schedule]] = None,
    ) -> List[Tuple[Schedule, float]]:
        """Run the evolutionary search and return all visited (schedule, score)
        pairs sorted by descending predicted score."""
        action_space = ActionSpace(sketch)
        population = sample_initial_schedules(
            sketch, self.population_size, self.rng, unroll_depths
        )
        if warm_start:
            for i, schedule in enumerate(list(warm_start)[: self.population_size // 4]):
                if schedule.sketch.key == sketch.key:
                    population[i] = schedule.copy()

        history: Dict[Tuple, Tuple[Schedule, float]] = {}
        self.visited = 0

        for _generation in range(self.generations):
            scores = np.asarray(self.cost_model.predict(population), dtype=np.float64)
            self.visited += len(population)
            for schedule, score in zip(population, scores):
                key = schedule.signature()
                prev = history.get(key)
                if prev is None or score > prev[1]:
                    history[key] = (schedule, float(score))
            population = self._next_generation(population, scores, action_space, sketch, unroll_depths)

        # Score the final generation too.
        scores = np.asarray(self.cost_model.predict(population), dtype=np.float64)
        self.visited += len(population)
        for schedule, score in zip(population, scores):
            key = schedule.signature()
            prev = history.get(key)
            if prev is None or score > prev[1]:
                history[key] = (schedule, float(score))

        return sorted(history.values(), key=lambda pair: pair[1], reverse=True)

    # ------------------------------------------------------------------ #
    def _next_generation(
        self,
        population: List[Schedule],
        scores: np.ndarray,
        action_space: ActionSpace,
        sketch: Sketch,
        unroll_depths: Tuple[int, ...],
    ) -> List[Schedule]:
        probs = self._selection_probabilities(scores)
        children: List[Schedule] = []
        n = len(population)
        while len(children) < self.population_size:
            parent_idx = int(self.rng.choice(n, p=probs))
            child = population[parent_idx]
            if self.rng.random() < self.crossover_prob:
                other_idx = int(self.rng.choice(n, p=probs))
                child = self._crossover(child, population[other_idx])
            if self.rng.random() < self.mutation_prob:
                for _ in range(1 + int(self.rng.integers(0, self.mutation_steps))):
                    child = apply_action(child, action_space.sample(self.rng))
            else:
                child = sample_schedule(sketch, self.rng, unroll_depths)
            children.append(child)
        return children

    @staticmethod
    def _selection_probabilities(scores: np.ndarray) -> np.ndarray:
        shifted = scores - np.max(scores) if len(scores) else scores
        weights = np.exp(shifted * 4.0)
        total = float(np.sum(weights))
        if not np.isfinite(total) or total <= 0:
            return np.full(len(scores), 1.0 / max(len(scores), 1))
        return weights / total

    def _crossover(self, a: Schedule, b: Schedule) -> Schedule:
        """Mix the knob groups of two parents of the same sketch."""
        if a.sketch.key != b.sketch.key:
            return a.copy()
        child = a.copy()
        for i in range(len(child.tile_sizes)):
            if self.rng.random() < 0.5:
                child.tile_sizes[i] = list(b.tile_sizes[i])
        if self.rng.random() < 0.5:
            child.compute_at_index = b.compute_at_index
        if self.rng.random() < 0.5:
            child.num_parallel = b.num_parallel
        if self.rng.random() < 0.5:
            child.unroll_index = b.unroll_index
        return child
