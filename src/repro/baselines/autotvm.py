"""AutoTVM-like baseline: simulated-annealing parameter search.

AutoTVM explores a user-template search space with simulated annealing guided
by a learned cost model.  Here the "template" is the first generated sketch,
and the annealer proposes random modification actions, accepting worse states
with a temperature-controlled probability.  Included for completeness of the
related-work comparison (the paper's evaluation uses Ansor as its only
baseline because Ansor dominates AutoTVM).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.caching import cached_sketches_for_target
from repro.core.tuner import TuningResult
from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.hardware.target import HardwareTarget, cpu_target
from repro.tensor.actions import ActionSpace, apply_action
from repro.tensor.dag import ComputeDAG
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.schedule import Schedule

__all__ = ["SimulatedAnnealingScheduler"]


class SimulatedAnnealingScheduler:
    """Simulated annealing over schedule states, guided by the cost model."""

    name = "autotvm-sa"

    def __init__(
        self,
        target: Optional[HardwareTarget] = None,
        seed: int = 0,
        num_chains: int = 64,
        steps_per_round: int = 64,
        measures_per_round: int = 64,
        initial_temperature: float = 1.0,
        cooling: float = 0.9,
        cost_model: Optional[ScheduleCostModel] = None,
        measurer: Optional[Measurer] = None,
        record_store=None,
    ):
        if num_chains < 1 or steps_per_round < 1:
            raise ValueError("num_chains and steps_per_round must be >= 1")
        self.target = target or cpu_target()
        self.seed = int(seed)
        self.num_chains = int(num_chains)
        self.steps_per_round = int(steps_per_round)
        self.measures_per_round = int(measures_per_round)
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self._rng = np.random.default_rng(seed)
        self.measurer = measurer or Measurer(self.target, seed=seed)
        self.cost_model = cost_model or ScheduleCostModel(seed=seed)
        self.record_store = record_store
        if record_store is not None and self.measurer.record_store is None:
            self.measurer.record_store = record_store
        self._resume_store = None
        self._resumed: set = set()
        self._search_steps: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def resume_from(self, store) -> "SimulatedAnnealingScheduler":
        """Resume from a persisted record store (lazy per-workload replay).

        Warm-starts the cost model with the recorded measurements and
        preloads the measurer's best-known statistics; returns ``self``.
        """
        self._resume_store = store
        self._resumed.clear()
        return self

    def tune(self, dag: ComputeDAG, n_trials: int) -> TuningResult:
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self._resume_store is not None and dag.name not in self._resumed:
            self._resumed.add(dag.name)
            self._resume_store.replay(
                dag, cost_model=self.cost_model, measurer=self.measurer
            )
        sketch = cached_sketches_for_target(dag, self.target)[0]
        action_space = ActionSpace(sketch)
        temperature = self.initial_temperature
        start_trials = self.measurer.trials(dag.name)

        while self.measurer.trials(dag.name) - start_trials < n_trials:
            remaining = n_trials - (self.measurer.trials(dag.name) - start_trials)
            history = self._anneal_round(dag, sketch, action_space, temperature)
            budget = min(self.measures_per_round, remaining)
            candidates = sorted(history.values(), key=lambda pair: pair[1], reverse=True)
            top = [schedule for schedule, _score in candidates[:budget]]
            results = self.measurer.measure(top)
            self.cost_model.update([r.schedule for r in results], [r.throughput for r in results])
            temperature *= self.cooling

        best_latency = self.measurer.best_latency(dag.name)
        result = TuningResult(
            workload=dag.name,
            scheduler=self.name,
            best_latency=best_latency,
            best_throughput=dag.flops / best_latency if np.isfinite(best_latency) else 0.0,
            best_schedule=self.measurer.best_schedule(dag.name),
            trials_used=self.measurer.trials(dag.name),
            search_steps=self._search_steps.get(dag.name, 0),
            history=self.measurer.history(dag.name),
            extras={"final_temperature": temperature},
        )
        if self.record_store is not None:
            self.record_store.append_result(result)
        return result

    def _anneal_round(
        self,
        dag: ComputeDAG,
        sketch,
        action_space: ActionSpace,
        temperature: float,
    ) -> Dict[Tuple, Tuple[Schedule, float]]:
        chains = sample_initial_schedules(
            sketch, self.num_chains, self._rng, self.target.unroll_depths
        )
        scores = np.asarray(self.cost_model.predict(chains), dtype=np.float64)
        history: Dict[Tuple, Tuple[Schedule, float]] = {
            s.signature(): (s, float(sc)) for s, sc in zip(chains, scores)
        }

        for _step in range(self.steps_per_round):
            proposals = [
                apply_action(chain, action_space.sample(self._rng)) for chain in chains
            ]
            new_scores = np.asarray(self.cost_model.predict(proposals), dtype=np.float64)
            delta = new_scores - scores
            accept = (delta >= 0) | (
                self._rng.random(len(chains)) < np.exp(delta / max(temperature, 1e-6))
            )
            for i, accepted in enumerate(accept):
                if accepted:
                    chains[i] = proposals[i]
                    scores[i] = new_scores[i]
                key = proposals[i].signature()
                prev = history.get(key)
                if prev is None or new_scores[i] > prev[1]:
                    history[key] = (proposals[i], float(new_scores[i]))
            self._search_steps[dag.name] = self._search_steps.get(dag.name, 0) + len(chains)

        return history

    def tune_network(self, network, n_trials: int):
        """Template-based AutoTVM does not combine operators into subgraphs."""
        raise NotImplementedError(
            "the AutoTVM-style baseline only supports single-operator tuning"
        )
