"""Flextensor-like baseline: fixed-length RL search on single operators.

Flextensor applies an RL agent to the low-level parameter search but (per
Table 1) supports neither subgraph nor sketch selection and uses uniform
fixed-length allocations for every schedule track.  This baseline therefore
reuses HARL's PPO parameter search with a :class:`FixedLengthStopper`, pinned
to the first (plain multi-level tiling) sketch, and exposes the per-track
critical-step positions needed for the Fig. 1(c) observation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.caching import cached_sketches_for_target
from repro.core.actor_critic import PPOAgent
from repro.core.adaptive_stopping import FixedLengthStopper
from repro.core.config import HARLConfig
from repro.core.parameter_search import ParameterSearcher
from repro.core.tuner import TuningResult
from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.hardware.target import HardwareTarget, cpu_target
from repro.tensor.actions import ActionSpace
from repro.tensor.dag import ComputeDAG
from repro.tensor.features import FEATURE_SIZE

__all__ = ["FlextensorScheduler"]


class FlextensorScheduler:
    """Fixed-length RL parameter search without the hierarchical levels."""

    name = "flextensor"

    def __init__(
        self,
        target: Optional[HardwareTarget] = None,
        config: Optional[HARLConfig] = None,
        seed: int = 0,
        cost_model: Optional[ScheduleCostModel] = None,
        measurer: Optional[Measurer] = None,
        record_store=None,
    ):
        self.target = target or cpu_target()
        self.config = config or HARLConfig()
        self.seed = int(seed)
        self.measurer = measurer or Measurer(self.target, seed=seed)
        self.cost_model = cost_model or ScheduleCostModel(seed=seed)
        self.record_store = record_store
        if record_store is not None and self.measurer.record_store is None:
            self.measurer.record_store = record_store
        self._resume_store = None
        self._resumed: set = set()
        self._searchers: Dict[str, ParameterSearcher] = {}
        self._search_steps: Dict[str, int] = {}
        #: Per-workload list of relative critical-step positions (Fig. 1c data).
        self.critical_positions: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------ #
    def _searcher(self, dag: ComputeDAG) -> ParameterSearcher:
        searcher = self._searchers.get(dag.name)
        if searcher is None:
            # Flextensor works from a single general template: the plain
            # multi-level tiling sketch.
            sketch = cached_sketches_for_target(dag, self.target)[0]
            agent = PPOAgent(
                feature_size=FEATURE_SIZE,
                head_sizes=ActionSpace(sketch).head_sizes,
                config=self.config,
                seed=self.seed + len(dag.name),
            )
            searcher = ParameterSearcher(
                sketch=sketch,
                agent=agent,
                cost_model=self.cost_model,
                measurer=self.measurer,
                config=self.config,
                stopper=FixedLengthStopper(episode_length=self.config.episode_length),
                rng=np.random.default_rng(self.seed + 13),
            )
            self._searchers[dag.name] = searcher
        return searcher

    def resume_from(self, store) -> "FlextensorScheduler":
        """Resume from a persisted record store (lazy per-workload replay).

        Warm-starts the cost model with the recorded measurements and
        preloads the measurer's best-known statistics; returns ``self``.
        """
        self._resume_store = store
        self._resumed.clear()
        return self

    def tune(self, dag: ComputeDAG, n_trials: int) -> TuningResult:
        """Tune a single operator with fixed-length RL episodes."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self._resume_store is not None and dag.name not in self._resumed:
            self._resumed.add(dag.name)
            self._resume_store.replay(
                dag, cost_model=self.cost_model, measurer=self.measurer
            )
        searcher = self._searcher(dag)
        start_trials = self.measurer.trials(dag.name)
        positions = self.critical_positions.setdefault(dag.name, [])

        while self.measurer.trials(dag.name) - start_trials < n_trials:
            remaining = n_trials - (self.measurer.trials(dag.name) - start_trials)
            episode = searcher.run_episode(max_measures=remaining)
            self._search_steps[dag.name] = (
                self._search_steps.get(dag.name, 0) + episode.num_visited
            )
            positions.extend(episode.critical_positions)

        best_latency = self.measurer.best_latency(dag.name)
        result = TuningResult(
            workload=dag.name,
            scheduler=self.name,
            best_latency=best_latency,
            best_throughput=dag.flops / best_latency if np.isfinite(best_latency) else 0.0,
            best_schedule=self.measurer.best_schedule(dag.name),
            trials_used=self.measurer.trials(dag.name),
            search_steps=self._search_steps.get(dag.name, 0),
            history=self.measurer.history(dag.name),
            extras={"critical_positions": list(positions)},
        )
        if self.record_store is not None:
            self.record_store.append_result(result)
        return result

    def tune_network(self, network, n_trials: int):
        """Flextensor does not support end-to-end network optimisation (Table 1)."""
        raise NotImplementedError(
            "Flextensor does not support end-to-end neural network optimisation"
        )
