"""Ansor-like auto-scheduler (the paper's main baseline).

Ansor's search differs from HARL's exactly where Table 1 says it does:

* subgraph selection — **greedy** gradient allocation (no bandit),
* sketch selection — **uniform** random,
* schedule selection — **evolutionary search** guided by the cost model
  (no RL agent),
* time allocation — fixed-length rounds with a fixed number of measured
  candidates per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.caching import cached_sketches_for_target
from repro.baselines.evolutionary import EvolutionarySearch
from repro.baselines.task_scheduler import GradientTaskScheduler
from repro.core.config import HARLConfig
from repro.core.tuner import NetworkTuningResult, TuningResult
from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.hardware.target import HardwareTarget, cpu_target
from repro.networks.graph import NetworkGraph
from repro.tensor.dag import ComputeDAG
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import Sketch

__all__ = ["AnsorConfig", "AnsorScheduler"]


@dataclass(frozen=True)
class AnsorConfig:
    """Search-scale parameters of the Ansor baseline.

    ``population_size x (generations + 1)`` schedules are visited per round
    and ``measures_per_round`` of them are measured — the paper configures
    Ansor and HARL with the same number of measured candidates per round for
    a fair comparison.
    """

    population_size: int = 256
    generations: int = 4
    measures_per_round: int = 64
    mutation_prob: float = 0.85
    crossover_prob: float = 0.4

    @staticmethod
    def from_harl(config: HARLConfig) -> "AnsorConfig":
        """Match the episode width of a HARL configuration."""
        return AnsorConfig(
            population_size=config.num_tracks,
            generations=max(2, config.episode_length // 8),
            measures_per_round=config.measures_per_round,
        )


class AnsorScheduler:
    """Evolutionary-search auto-scheduler with greedy task allocation."""

    name = "ansor"

    def __init__(
        self,
        target: Optional[HardwareTarget] = None,
        config: Optional[AnsorConfig] = None,
        seed: int = 0,
        cost_model: Optional[ScheduleCostModel] = None,
        measurer: Optional[Measurer] = None,
        alpha: float = 0.2,
        beta: float = 2.0,
        record_store=None,
        warm_start_provider=None,
    ):
        self.target = target or cpu_target()
        self.config = config or AnsorConfig()
        self.seed = int(seed)
        self.alpha = alpha
        self.beta = beta
        self._rng = np.random.default_rng(seed)
        self.measurer = measurer or Measurer(self.target, seed=seed)
        self.cost_model = cost_model or ScheduleCostModel(seed=seed)
        self.record_store = record_store
        if record_store is not None and self.measurer.record_store is None:
            self.measurer.record_store = record_store
        self.warm_start_provider = warm_start_provider
        self._resume_store = None
        self._resumed: set = set()
        self._warm_started: set = set()
        self._pending_warm: Dict[str, List[Schedule]] = {}
        self._search_steps: Dict[str, int] = {}
        self._best_schedules: Dict[str, List[Schedule]] = {}
        self._rounds: Dict[str, int] = {}
        self._sketch_lists: Dict[str, List[Sketch]] = {}

    # ------------------------------------------------------------------ #
    def resume_from(self, store) -> "AnsorScheduler":
        """Resume tuning from a persisted record store.

        Replayed lazily per workload: the cost model is warm-started with
        the recorded measurements, the measurer's best-known statistics are
        preloaded, and the best recorded schedules seed the evolutionary
        warm starts.  Returns ``self`` for chaining.
        """
        self._resume_store = store
        self._resumed.clear()
        return self

    def _maybe_replay(self, dag: ComputeDAG) -> None:
        if self._resume_store is None or dag.name in self._resumed:
            return
        self._resumed.add(dag.name)
        restored = self._resume_store.replay(
            dag, cost_model=self.cost_model, measurer=self.measurer
        )
        if restored:
            self._best_schedules[dag.name] = list(reversed(restored[:8]))

    def _maybe_warm_start(self, dag: ComputeDAG) -> None:
        """Queue transferred (registry) schedules for direct measurement."""
        if self.warm_start_provider is None or dag.name in self._warm_started:
            return
        self._warm_started.add(dag.name)
        seeds = list(self.warm_start_provider(dag) or [])
        if seeds:
            self._pending_warm[dag.name] = seeds

    def _sketches(self, dag: ComputeDAG) -> List[Sketch]:
        sketches = self._sketch_lists.get(dag.name)
        if sketches is None:
            sketches = cached_sketches_for_target(dag, self.target)
            self._sketch_lists[dag.name] = sketches
        return sketches

    # ------------------------------------------------------------------ #
    def tune(self, dag: ComputeDAG, n_trials: int) -> TuningResult:
        """Tune a single operator within a measurement-trial budget."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        self._maybe_replay(dag)
        self._maybe_warm_start(dag)
        sketches = self._sketches(dag)
        start_trials = self.measurer.trials(dag.name)
        while self.measurer.trials(dag.name) - start_trials < n_trials:
            remaining = n_trials - (self.measurer.trials(dag.name) - start_trials)
            self._run_round(dag, sketches, max_measures=remaining)
        result = self._build_result(dag)
        if self.record_store is not None:
            self.record_store.append_result(result)
        return result

    def _run_round(
        self, dag: ComputeDAG, sketches: List[Sketch], max_measures: Optional[int] = None
    ) -> float:
        """One round: uniform sketch choice, evolutionary search, measure top-K."""
        pending = self._pending_warm.get(dag.name)
        if pending:
            # Transferred schedules are measured directly (one batch) before
            # the evolutionary search starts, mirroring HARL's warm start.
            budget = len(pending) if max_measures is None else min(len(pending), max_measures)
            batch = pending[:budget]
            self._pending_warm[dag.name] = pending[budget:]
            results = self.measurer.measure(batch)
            self.cost_model.update(
                [r.schedule for r in results], [r.throughput for r in results]
            )
            if results:
                best = min(results, key=lambda r: r.latency)
                bucket = self._best_schedules.setdefault(dag.name, [])
                bucket.append(best.schedule)
                del bucket[:-8]
                return best.latency
            return float("inf")
        cfg = self.config
        sketch = sketches[int(self._rng.integers(0, len(sketches)))]
        search = EvolutionarySearch(
            cost_model=self.cost_model,
            population_size=cfg.population_size,
            generations=cfg.generations,
            mutation_prob=cfg.mutation_prob,
            crossover_prob=cfg.crossover_prob,
            rng=self._rng,
        )
        warm_start = self._best_schedules.get(dag.name)
        candidates = search.search(sketch, self.target.unroll_depths, warm_start=warm_start)
        self._search_steps[dag.name] = self._search_steps.get(dag.name, 0) + search.visited

        budget = cfg.measures_per_round
        if max_measures is not None:
            budget = min(budget, max_measures)
        top = [schedule for schedule, _score in candidates[:budget]]
        results = self.measurer.measure(top)
        self.cost_model.update([r.schedule for r in results], [r.throughput for r in results])
        self._rounds[dag.name] = self._rounds.get(dag.name, 0) + 1

        if results:
            best = min(results, key=lambda r: r.latency)
            bucket = self._best_schedules.setdefault(dag.name, [])
            bucket.append(best.schedule)
            del bucket[:-8]
            return best.latency
        return float("inf")

    def tune_round(self, dag: ComputeDAG, max_measures: Optional[int] = None) -> int:
        """Run one incremental tuning round; returns trials consumed.

        The incremental counterpart of :meth:`tune`, used by the
        multi-tenant :class:`~repro.serving.service.TuningService` to
        interleave rounds of several jobs under one budget allocator.
        """
        if max_measures is not None and max_measures <= 0:
            return 0
        self._maybe_replay(dag)
        self._maybe_warm_start(dag)
        before = self.measurer.trials(dag.name)
        self._run_round(dag, self._sketches(dag), max_measures=max_measures)
        return self.measurer.trials(dag.name) - before

    def finalize(self, dag: ComputeDAG) -> TuningResult:
        """Build (and persist) the current tuning result of one workload."""
        result = self._build_result(dag)
        if self.record_store is not None:
            self.record_store.append_result(result)
        return result

    def _build_result(self, dag: ComputeDAG) -> TuningResult:
        best_latency = self.measurer.best_latency(dag.name)
        return TuningResult(
            workload=dag.name,
            scheduler=self.name,
            best_latency=best_latency,
            best_throughput=dag.flops / best_latency if np.isfinite(best_latency) else 0.0,
            best_schedule=self.measurer.best_schedule(dag.name),
            trials_used=self.measurer.trials(dag.name),
            search_steps=self._search_steps.get(dag.name, 0),
            history=self.measurer.history(dag.name),
            extras={"rounds": self._rounds.get(dag.name, 0)},
        )

    # ------------------------------------------------------------------ #
    def tune_network(self, network: NetworkGraph, n_trials: int) -> NetworkTuningResult:
        """End-to-end tuning with greedy gradient-based task allocation."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        task_scheduler = GradientTaskScheduler(network, alpha=self.alpha, beta=self.beta)
        sketch_cache = {
            sg.name: cached_sketches_for_target(sg.dag, self.target) for sg in network
        }
        latency_history: List[Tuple[int, float]] = []
        start_trials = self.measurer.total_trials

        for sg in network:
            self._maybe_replay(sg.dag)
            self._maybe_warm_start(sg.dag)
        while self.measurer.total_trials - start_trials < n_trials:
            remaining = n_trials - (self.measurer.total_trials - start_trials)
            task_name = task_scheduler.next_task()
            sg = network.subgraph(task_name)
            trials_before = self.measurer.trials(sg.dag.name)
            self._run_round(sg.dag, sketch_cache[task_name], max_measures=remaining)
            spent = self.measurer.trials(sg.dag.name) - trials_before
            task_scheduler.record(task_name, self.measurer.best_latency(sg.dag.name), spent)
            latency_history.append(
                (self.measurer.total_trials - start_trials, task_scheduler.estimated_latency())
            )

        task_results = {sg.name: self._build_result(sg.dag) for sg in network}
        if self.record_store is not None:
            for task_result in task_results.values():
                self.record_store.append_result(task_result)
        return NetworkTuningResult(
            network=network.name,
            scheduler=self.name,
            task_results=task_results,
            task_weights=network.weights(),
            latency_history=latency_history,
            allocations=dict(task_scheduler.allocations),
            extras={"task_names": list(task_scheduler.task_names)},
        )
