"""Persistence of tuning results (the equivalent of TVM's log-file records).

Auto-scheduler users keep the best schedules found during long tuning runs so
they can be re-applied without re-tuning.  This module serialises schedules
and :class:`~repro.core.tuner.TuningResult` objects to JSON and restores the
schedules against a freshly-built compute DAG.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.tuner import TuningResult
from repro.tensor.dag import ComputeDAG
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import generate_sketches

__all__ = [
    "TuningRecord",
    "schedule_to_dict",
    "schedule_from_dict",
    "result_to_record",
    "save_records",
    "load_records",
    "best_record",
]


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialise a schedule to a JSON-compatible dictionary."""
    sketch = schedule.sketch
    return {
        "workload": sketch.dag.name,
        "sketch_key": sketch.key,
        "spatial_levels": sketch.spatial_levels,
        "reduction_levels": sketch.reduction_levels,
        "tile_sizes": [list(map(int, sizes)) for sizes in schedule.tile_sizes],
        "compute_at_index": int(schedule.compute_at_index),
        "num_parallel": int(schedule.num_parallel),
        "unroll_index": int(schedule.unroll_index),
        "unroll_depths": list(map(int, schedule.unroll_depths)),
    }


def schedule_from_dict(data: dict, dag: ComputeDAG) -> Schedule:
    """Reconstruct a schedule against a compute DAG built by the caller.

    The DAG must describe the same workload the record was produced from
    (matching stage/iterator structure); the sketch is re-generated from the
    stored rule key and tiling depths.
    """
    if data["workload"] != dag.name:
        raise ValueError(
            f"record belongs to workload {data['workload']!r}, not {dag.name!r}"
        )
    sketches = generate_sketches(
        dag,
        spatial_levels=int(data["spatial_levels"]),
        reduction_levels=int(data["reduction_levels"]),
    )
    matches = [s for s in sketches if s.key == data["sketch_key"]]
    if not matches:
        raise ValueError(
            f"sketch {data['sketch_key']!r} cannot be regenerated for {dag.name!r}"
        )
    return Schedule(
        sketch=matches[0],
        tile_sizes=[list(sizes) for sizes in data["tile_sizes"]],
        compute_at_index=int(data["compute_at_index"]),
        num_parallel=int(data["num_parallel"]),
        unroll_index=int(data["unroll_index"]),
        unroll_depths=tuple(int(d) for d in data["unroll_depths"]),
    )


@dataclass(frozen=True)
class TuningRecord:
    """One persisted tuning outcome: the best schedule found for a workload."""

    workload: str
    scheduler: str
    latency: float
    throughput: float
    trials_used: int
    schedule: Optional[dict]
    history: List[List[float]]

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "latency": self.latency,
            "throughput": self.throughput,
            "trials_used": self.trials_used,
            "schedule": self.schedule,
            "history": self.history,
        }

    @staticmethod
    def from_dict(data: dict) -> "TuningRecord":
        return TuningRecord(
            workload=data["workload"],
            scheduler=data["scheduler"],
            latency=float(data["latency"]),
            throughput=float(data["throughput"]),
            trials_used=int(data["trials_used"]),
            schedule=data.get("schedule"),
            history=[list(map(float, pair)) for pair in data.get("history", [])],
        )

    def restore_schedule(self, dag: ComputeDAG) -> Schedule:
        if self.schedule is None:
            raise ValueError(f"record for {self.workload!r} holds no schedule")
        return schedule_from_dict(self.schedule, dag)


def result_to_record(result: TuningResult) -> TuningRecord:
    """Convert a :class:`TuningResult` into a persistable record."""
    return TuningRecord(
        workload=result.workload,
        scheduler=result.scheduler,
        latency=float(result.best_latency),
        throughput=float(result.best_throughput),
        trials_used=int(result.trials_used),
        schedule=schedule_to_dict(result.best_schedule) if result.best_schedule else None,
        history=[[float(t), float(l)] for t, l in result.history],
    )


def save_records(path: Union[str, Path], records: Sequence[Union[TuningRecord, TuningResult]]) -> Path:
    """Write records (or results, converted on the fly) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = []
    for record in records:
        if isinstance(record, TuningResult):
            record = result_to_record(record)
        payload.append(record.to_dict())
    path.write_text(json.dumps({"version": 1, "records": payload}, indent=2))
    return path


def load_records(path: Union[str, Path]) -> List[TuningRecord]:
    """Load records previously written by :func:`save_records`."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != 1:
        raise ValueError(f"unsupported record file version: {data.get('version')!r}")
    return [TuningRecord.from_dict(entry) for entry in data["records"]]


def best_record(records: Sequence[TuningRecord], workload: str) -> TuningRecord:
    """The lowest-latency record for a workload."""
    matching = [r for r in records if r.workload == workload]
    if not matching:
        raise KeyError(f"no record for workload {workload!r}")
    return min(matching, key=lambda r: r.latency)
