"""Persistence of tuning results (the equivalent of TVM's log-file records).

Auto-scheduler users keep the best schedules found during long tuning runs so
they can be re-applied without re-tuning.  This module provides two layers of
persistence:

* **Snapshot files** — :func:`save_records` / :func:`load_records` write the
  final :class:`TuningRecord` of each workload to one JSON document, the
  original seed format.
* **Append-only JSONL logs** — :class:`RecordStore` streams every individual
  measurement (and final result) to disk *as it happens*, one JSON object per
  line.  Because lines are appended and flushed eagerly, a killed tuning run
  loses at most the line being written; :meth:`RecordStore.load` tolerates a
  truncated or corrupted trailing line.  A store can be replayed into a fresh
  scheduler (warm-starting its cost model and best-schedule statistics), which
  is what powers the CLI's ``--records-out`` / ``--resume-from`` flags.

Schedules are serialised structurally (sketch key, tiling depths, knob
values) and restored against a freshly-built compute DAG of the same
workload.
"""

from __future__ import annotations

import io
import json
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.tuner import TuningResult
from repro.faults.plan import poll as poll_fault
from repro.jsonl import repair_torn_tail
from repro.obs.metrics import counter, histogram
from repro.serving.fingerprint import structural_fingerprint, workload_embedding
from repro.tensor.dag import ComputeDAG
from repro.tensor.schedule import Schedule
from repro.caching import cached_sketches

_APPENDS = counter("records.appends", "Lines durably appended to record logs")
_SLOW_FLUSHES = counter("records.slow_flushes", "Appends slower than the slow-flush threshold")
_FLUSH_FAILURES = counter("records.flush_failures", "Appends rolled back after an OSError")
_FLUSH_SECONDS = histogram("records.flush_seconds", help="Record-log append+flush time")

__all__ = [
    "MeasureRecord",
    "RecordStore",
    "TuningRecord",
    "schedule_to_dict",
    "schedule_from_dict",
    "result_to_record",
    "save_records",
    "load_records",
    "best_record",
]


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialise a schedule to a JSON-compatible dictionary."""
    sketch = schedule.sketch
    return {
        "workload": sketch.dag.name,
        "sketch_key": sketch.key,
        "spatial_levels": sketch.spatial_levels,
        "reduction_levels": sketch.reduction_levels,
        "tile_sizes": [list(map(int, sizes)) for sizes in schedule.tile_sizes],
        "compute_at_index": int(schedule.compute_at_index),
        "num_parallel": int(schedule.num_parallel),
        "unroll_index": int(schedule.unroll_index),
        "unroll_depths": list(map(int, schedule.unroll_depths)),
    }


def schedule_from_dict(
    data: dict, dag: ComputeDAG, sketch_cache: Optional[dict] = None,
    check_workload: bool = True,
) -> Schedule:
    """Reconstruct a schedule against a compute DAG built by the caller.

    The DAG must describe the same workload the record was produced from
    (matching stage/iterator structure); the sketch is re-generated from the
    stored rule key and tiling depths.

    ``sketch_cache`` (an arbitrary caller-owned dict) memoises the generated
    sketch lists per (tiling-depth) configuration, so bulk restores — e.g.
    :meth:`RecordStore.replay` over thousands of log lines — regenerate each
    sketch list once instead of once per record.

    ``check_workload=False`` skips the display-name equality check; callers
    that already matched identities structurally (canonical fingerprints —
    the schedule registry, fingerprint-routed replay) use it to restore
    records onto renamed-but-identical DAGs.
    """
    if check_workload and data["workload"] != dag.name:
        raise ValueError(
            f"record belongs to workload {data['workload']!r}, not {dag.name!r}"
        )
    depths = (int(data["spatial_levels"]), int(data["reduction_levels"]))
    sketches = None if sketch_cache is None else sketch_cache.get(depths)
    if sketches is None:
        sketches = cached_sketches(
            dag, spatial_levels=depths[0], reduction_levels=depths[1]
        )
        if sketch_cache is not None:
            sketch_cache[depths] = sketches
    matches = [s for s in sketches if s.key == data["sketch_key"]]
    if not matches:
        raise ValueError(
            f"sketch {data['sketch_key']!r} cannot be regenerated for {dag.name!r}"
        )
    return Schedule(
        sketch=matches[0],
        tile_sizes=[list(sizes) for sizes in data["tile_sizes"]],
        compute_at_index=int(data["compute_at_index"]),
        num_parallel=int(data["num_parallel"]),
        unroll_index=int(data["unroll_index"]),
        unroll_depths=tuple(int(d) for d in data["unroll_depths"]),
    )


@dataclass(frozen=True)
class TuningRecord:
    """One persisted tuning outcome: the best schedule found for a workload.

    ``fingerprint`` is the canonical structural identity of the workload
    (see :func:`repro.serving.fingerprint.structural_fingerprint`); it lets
    renamed-but-identical DAGs share records.  Legacy records without one
    fall back to display-name matching.
    """

    workload: str
    scheduler: str
    latency: float
    throughput: float
    trials_used: int
    schedule: Optional[dict]
    history: List[List[float]]
    fingerprint: str = ""

    def to_dict(self) -> dict:
        """JSON-compatible representation of this record."""
        return {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "latency": self.latency,
            "throughput": self.throughput,
            "trials_used": self.trials_used,
            "schedule": self.schedule,
            "history": self.history,
            "fingerprint": self.fingerprint,
        }

    @staticmethod
    def from_dict(data: dict) -> "TuningRecord":
        """Inverse of :meth:`to_dict`."""
        return TuningRecord(
            workload=data["workload"],
            scheduler=data["scheduler"],
            latency=float(data["latency"]),
            throughput=float(data["throughput"]),
            trials_used=int(data["trials_used"]),
            schedule=data.get("schedule"),
            history=[list(map(float, pair)) for pair in data.get("history", [])],
            fingerprint=data.get("fingerprint", ""),
        )

    def restore_schedule(self, dag: ComputeDAG, check_workload: bool = True) -> Schedule:
        """Rebuild the stored best schedule against a caller-provided DAG.

        ``check_workload=False`` skips the display-name check for callers
        that already matched identity structurally (e.g. via
        :meth:`RecordStore.results_for`).
        """
        if self.schedule is None:
            raise ValueError(f"record for {self.workload!r} holds no schedule")
        return schedule_from_dict(self.schedule, dag, check_workload=check_workload)


def result_to_record(result: TuningResult) -> TuningRecord:
    """Convert a :class:`TuningResult` into a persistable record."""
    return TuningRecord(
        workload=result.workload,
        scheduler=result.scheduler,
        latency=float(result.best_latency),
        throughput=float(result.best_throughput),
        trials_used=int(result.trials_used),
        schedule=schedule_to_dict(result.best_schedule) if result.best_schedule else None,
        history=[[float(t), float(l)] for t, l in result.history],
        fingerprint=(
            structural_fingerprint(result.best_schedule.dag)
            if result.best_schedule is not None
            else ""
        ),
    )


def save_records(path: Union[str, Path], records: Sequence[Union[TuningRecord, TuningResult]]) -> Path:
    """Write records (or results, converted on the fly) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = []
    for record in records:
        if isinstance(record, TuningResult):
            record = result_to_record(record)
        payload.append(record.to_dict())
    path.write_text(json.dumps({"version": 1, "records": payload}, indent=2))
    return path


def load_records(path: Union[str, Path]) -> List[TuningRecord]:
    """Load records previously written by :func:`save_records`."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != 1:
        raise ValueError(f"unsupported record file version: {data.get('version')!r}")
    return [TuningRecord.from_dict(entry) for entry in data["records"]]


def best_record(records: Sequence[TuningRecord], workload: str) -> TuningRecord:
    """The lowest-latency record for a workload."""
    matching = [r for r in records if r.workload == workload]
    if not matching:
        raise KeyError(f"no record for workload {workload!r}")
    return min(matching, key=lambda r: r.latency)


# --------------------------------------------------------------------- #
# append-only JSONL record store
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MeasureRecord:
    """One persisted hardware measurement (one line of the JSONL log).

    Attributes
    ----------
    workload:
        Name of the workload (compute DAG) the schedule belongs to.
    latency:
        Measured latency in seconds.
    throughput:
        Achieved FLOP/s of the measurement.
    trial_index:
        Global trial index the measurement was committed at.
    schedule:
        Structural schedule serialisation (see :func:`schedule_to_dict`).
    scheduler:
        Optional name of the scheduler that produced the candidate.
    fingerprint:
        Canonical structural identity of the workload; empty for legacy
        records (which then match by display name only).
    embedding:
        Workload embedding (see
        :func:`repro.serving.fingerprint.workload_embedding`) of the measured
        DAG; empty for legacy records.  Persisting it through the record
        stream keeps registry entries recovered from a crashed service
        visible to nearest-neighbour / cross-target transfer.
    """

    workload: str
    latency: float
    throughput: float
    trial_index: int
    schedule: dict
    scheduler: str = ""
    fingerprint: str = ""
    embedding: Tuple[float, ...] = ()

    def to_dict(self) -> dict:
        """JSON-compatible representation of this measurement."""
        return {
            "workload": self.workload,
            "latency": self.latency,
            "throughput": self.throughput,
            "trial_index": self.trial_index,
            "schedule": self.schedule,
            "scheduler": self.scheduler,
            "fingerprint": self.fingerprint,
            "embedding": list(self.embedding),
        }

    @staticmethod
    def from_dict(data: dict) -> "MeasureRecord":
        """Inverse of :meth:`to_dict`."""
        return MeasureRecord(
            workload=data["workload"],
            latency=float(data["latency"]),
            throughput=float(data["throughput"]),
            trial_index=int(data["trial_index"]),
            schedule=data["schedule"],
            scheduler=data.get("scheduler", ""),
            fingerprint=data.get("fingerprint", ""),
            embedding=tuple(float(v) for v in data.get("embedding", ())),
        )

    def restore_schedule(
        self, dag: ComputeDAG, sketch_cache: Optional[dict] = None,
        check_workload: bool = True,
    ) -> Schedule:
        """Rebuild the measured schedule against a caller-provided DAG.

        ``sketch_cache`` is forwarded to :func:`schedule_from_dict` to share
        regenerated sketch lists across bulk restores; ``check_workload`` is
        forwarded too (fingerprint-matched callers disable the name check).
        """
        return schedule_from_dict(
            self.schedule, dag, sketch_cache, check_workload=check_workload
        )


class RecordStore:
    """Append-only JSONL store of measurements and tuning results.

    Each line of the backing file is one JSON object tagged with a ``kind``
    field: ``"measure"`` lines hold individual :class:`MeasureRecord` entries
    (written live during tuning), ``"result"`` lines hold final
    :class:`TuningRecord` summaries.  Appends are flushed immediately so the
    log survives crashed or killed tuning processes.

    Parameters
    ----------
    path:
        Backing file.  If it already exists its lines are loaded (tolerantly,
        see ``strict``) and subsequent appends continue the same log, which
        makes resumed runs accumulate into one file.  ``None`` keeps the
        store purely in memory.
    strict:
        When true, corrupted (non-JSON or structurally invalid) lines raise
        :class:`ValueError` at load time; when false (the default) they are
        skipped and counted in :attr:`skipped_lines`.
    """

    #: Flushes slower than this (seconds) are counted in ``slow_flushes`` —
    #: the observability hook behind the gate's slow-disk obligation.
    slow_flush_threshold = 0.025

    def __init__(self, path: Optional[Union[str, Path]] = None, strict: bool = False):
        self.path = Path(path) if path is not None else None
        self.strict = bool(strict)
        # Serialises appends (disk commit + memory append as one atomic step)
        # against each other and against query snapshots: server worker
        # threads append to one shared store concurrently.
        self._lock = threading.Lock()
        self.skipped_lines = 0  # guarded-by: _lock
        self.truncated_tails = 0
        self.slow_flushes = 0  # guarded-by: _lock
        self.flush_failures = 0  # guarded-by: _lock
        self._measures: List[MeasureRecord] = []  # guarded-by: _lock
        self._results: List[TuningRecord] = []  # guarded-by: _lock
        self._fh: Optional[IO[str]] = None
        if self.path is not None and self.path.exists():
            # A run killed mid-append leaves a torn final line; truncate it so
            # this process never appends onto a partial write.
            if repair_torn_tail(self.path, label="record store"):
                self.truncated_tails += 1
            self._load_lines_locked(self.path.read_text())

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Union[str, Path], strict: bool = False) -> "RecordStore":
        """Load an existing JSONL log (raises if the file is missing)."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"record store {path} does not exist")
        return cls(path, strict=strict)

    def _load_lines_locked(self, text: str) -> None:
        # Caller holds _lock (or the store is not yet published: __init__).
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                kind = data.get("kind")
                if kind == "measure":
                    self._measures.append(MeasureRecord.from_dict(data))
                elif kind == "result":
                    self._results.append(TuningRecord.from_dict(data))
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
            except (ValueError, KeyError, TypeError) as exc:
                if self.strict:
                    raise ValueError(
                        f"corrupted record at {self.path}:{lineno}: {exc}"
                    ) from exc
                self.skipped_lines += 1

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def _write_line_locked(self, payload: dict) -> None:
        """Durably append one line, keeping the log well-formed on failure.

        Caller holds ``_lock``: the seek/tell/write/flush/rollback sequence
        below assumes no concurrent append moves the file position.

        A flush that fails (e.g. ENOSPC) may have written a partial line; the
        log is rolled back to its pre-append length before the error is
        re-raised, so a later retry appends a clean, complete line instead of
        concatenating onto the partial one (which would corrupt the retried
        record itself).  Load-time torn-tail repair remains the backstop when
        even the rollback cannot complete.
        """
        if self.path is None:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        line = json.dumps(payload) + "\n"
        # "a" mode leaves the initial position platform-defined; pin it to the
        # end so the rollback offset below is trustworthy.
        self._fh.seek(0, io.SEEK_END)
        committed = self._fh.tell()
        began = time.perf_counter()
        try:
            fired = poll_fault("records.flush", detail=str(payload.get("kind", "")))
            if fired is not None:
                if fired.spec.kind == "slow_disk":
                    fired.sleep()
                elif fired.spec.kind == "enospc":
                    self._fh.write(fired.torn_prefix(line))
                    self._fh.flush()
                    fired.raise_enospc()
            self._fh.write(line)
            self._fh.flush()
        except OSError:
            self.flush_failures += 1
            _FLUSH_FAILURES.inc()
            self._rollback_to(committed)
            raise
        elapsed = time.perf_counter() - began
        _APPENDS.inc()
        _FLUSH_SECONDS.observe(elapsed)
        if elapsed > self.slow_flush_threshold:
            self.slow_flushes += 1
            _SLOW_FLUSHES.inc()

    def _rollback_to(self, offset: int) -> None:
        """Best-effort truncation of a partial append back to ``offset``."""
        assert self._fh is not None
        try:
            self._fh.truncate(offset)
        except OSError:
            pass  # the disk is truly wedged; load-time repair takes over

    def append_measure(self, record: MeasureRecord) -> None:
        """Append one measurement record to the log.

        The disk commit precedes the in-memory append: a failed flush raises
        with memory and file still agreeing (the record simply is not
        committed), so callers can retry without double counting.
        """
        with self._lock:
            self._write_line_locked({"kind": "measure", **record.to_dict()})
            self._measures.append(record)

    def append_result(self, record: Union[TuningRecord, TuningResult]) -> None:
        """Append one final tuning result (converted from a result if needed)."""
        if isinstance(record, TuningResult):
            record = result_to_record(record)
        with self._lock:
            self._write_line_locked({"kind": "result", **record.to_dict()})
            self._results.append(record)

    def record_measure(self, result, scheduler: str = "") -> None:
        """Append a live :class:`~repro.hardware.measurer.MeasureResult`.

        This is the hook the measurer calls for every committed measurement;
        it converts the in-memory result (which holds a live
        :class:`~repro.tensor.schedule.Schedule`) into its structural
        serialisation.
        """
        self.append_measure(
            MeasureRecord(
                workload=result.schedule.dag.name,
                latency=float(result.latency),
                throughput=float(result.throughput),
                trial_index=int(result.trial_index),
                schedule=schedule_to_dict(result.schedule),
                scheduler=scheduler,
                fingerprint=structural_fingerprint(result.schedule.dag),
                # Memoised per DAG, so this costs one tuple() per measurement.
                embedding=tuple(workload_embedding(result.schedule.dag).tolist()),
            )
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @staticmethod
    def _matches(record, fingerprint: str, name: str) -> bool:
        """Structural identity match with a legacy display-name fallback."""
        if record.fingerprint and fingerprint:
            return record.fingerprint == fingerprint
        return record.workload == name

    def query(
        self,
        kind: str = "measure",
        *,
        dag: Optional[ComputeDAG] = None,
        workload: Optional[str] = None,
        best: bool = False,
    ):
        """The one query entry point over the store's records.

        Parameters
        ----------
        kind:
            ``"measure"`` for per-measurement records, ``"result"`` for
            final tuning results.
        dag:
            Filter to one workload by canonical structural fingerprint —
            renamed-but-structurally-identical DAGs share their records, and
            records written before fingerprints existed fall back to display-
            name matching.  Mutually exclusive with ``workload``.
        workload:
            Filter by display name only (exact string match).
        best:
            Return only the lowest-latency matching record (or ``None`` when
            nothing matches) instead of the full list.

        Returns
        -------
        A list of matching records (newest last), or — with ``best=True`` —
        the single lowest-latency record or ``None``.
        """
        if kind not in ("measure", "result"):
            raise ValueError(
                f"unknown record kind {kind!r}; expected 'measure' or 'result'"
            )
        if dag is not None and workload is not None:
            raise ValueError("pass either dag= or workload=, not both")
        fingerprint = structural_fingerprint(dag) if dag is not None else ""
        with self._lock:
            records = self._measures if kind == "measure" else self._results
            if dag is not None:
                matching = [r for r in records if self._matches(r, fingerprint, dag.name)]
            elif workload is not None:
                matching = [r for r in records if r.workload == workload]
            else:
                matching = list(records)
        if best:
            return min(matching, key=lambda r: r.latency) if matching else None
        return matching

    # -- deprecated accessor shims (all delegate to :meth:`query`) ----- #
    def measures(self, workload: Optional[str] = None) -> List[MeasureRecord]:
        """Deprecated: use :meth:`query` (``kind="measure"``)."""
        warnings.warn(
            "RecordStore.measures() is deprecated; use query(kind='measure')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(kind="measure", workload=workload)

    def measures_for(self, dag: ComputeDAG) -> List[MeasureRecord]:
        """Deprecated: use :meth:`query` (``kind="measure", dag=...``)."""
        warnings.warn(
            "RecordStore.measures_for() is deprecated; use query(kind='measure', dag=dag)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(kind="measure", dag=dag)

    def results_for(self, dag: ComputeDAG) -> List[TuningRecord]:
        """Deprecated: use :meth:`query` (``kind="result", dag=...``)."""
        warnings.warn(
            "RecordStore.results_for() is deprecated; use query(kind='result', dag=dag)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(kind="result", dag=dag)

    def results(self, workload: Optional[str] = None) -> List[TuningRecord]:
        """Deprecated: use :meth:`query` (``kind="result"``)."""
        warnings.warn(
            "RecordStore.results() is deprecated; use query(kind='result')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(kind="result", workload=workload)

    def best_measure(self, workload: str) -> MeasureRecord:
        """Deprecated: use :meth:`query` (``kind="measure", best=True``)."""
        warnings.warn(
            "RecordStore.best_measure() is deprecated; use "
            "query(kind='measure', workload=..., best=True)",
            DeprecationWarning,
            stacklevel=2,
        )
        best = self.query(kind="measure", workload=workload, best=True)
        if best is None:
            raise KeyError(f"no measurements for workload {workload!r}")
        return best

    def best_latency(self, workload: str) -> float:
        """Deprecated: derive from :meth:`query` with ``best=True``.

        Best latency seen for a workload across measures and results.
        """
        warnings.warn(
            "RecordStore.best_latency() is deprecated; use "
            "query(..., best=True) per record kind",
            DeprecationWarning,
            stacklevel=2,
        )
        candidates = [
            r.latency
            for kind in ("measure", "result")
            for r in (self.query(kind=kind, workload=workload, best=True),)
            if r is not None
        ]
        return min(candidates) if candidates else float("inf")

    def workloads(self) -> List[str]:
        """Sorted names of all workloads that appear in the store."""
        with self._lock:
            names = {m.workload for m in self._measures}
            names.update(r.workload for r in self._results)
        return sorted(names)

    def __len__(self) -> int:
        with self._lock:
            return len(self._measures) + len(self._results)

    def __iter__(self) -> Iterator[MeasureRecord]:
        # An index-walk generator instead of a full copy under the lock:
        # appends are strictly append-only, so positions already yielded stay
        # valid and each step only holds the lock long enough for one read.
        index = 0
        while True:
            with self._lock:
                if index >= len(self._measures):
                    return
                record = self._measures[index]
            yield record
            index += 1

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay(
        self,
        dag: ComputeDAG,
        cost_model=None,
        measurer=None,
        max_schedules: Optional[int] = None,
    ) -> List[Schedule]:
        """Replay this store's measurements of one workload into a new run.

        Restores every stored schedule of ``dag``'s workload (best first),
        feeds the (schedule, throughput) pairs back into ``cost_model`` so it
        warm-starts instead of facing a cold landscape, and preloads
        ``measurer``'s best-known statistics so resumed runs never report a
        regression over what the log already contains.

        Parameters
        ----------
        dag:
            Compute DAG of the workload to replay (must structurally match
            the recorded schedules).
        cost_model:
            Optional cost model implementing ``update(schedules, throughputs)``.
        measurer:
            Optional measurer implementing ``preload(workload, latency, schedule)``.
        max_schedules:
            Cap on how many (best-latency-first) records to replay.

        Returns
        -------
        The restored schedules, best latency first.
        """
        matching = sorted(self.query(kind="measure", dag=dag), key=lambda m: m.latency)
        if max_schedules is not None:
            matching = matching[:max_schedules]
        schedules: List[Schedule] = []
        throughputs: List[float] = []
        best_latency = float("inf")
        best_schedule: Optional[Schedule] = None
        sketch_cache: dict = {}  # regenerate each sketch list once, not per record
        for record in matching:
            try:
                # Identity was already matched structurally above, so restores
                # go through even when the DAG was renamed since recording.
                schedule = record.restore_schedule(dag, sketch_cache, check_workload=False)
            except ValueError:
                continue  # sketch shape drifted since the log was written
            schedules.append(schedule)
            throughputs.append(record.throughput)
            if record.latency < best_latency:
                best_latency = record.latency
                best_schedule = schedule
        if cost_model is not None and schedules:
            cost_model.update(schedules, throughputs)
        if measurer is not None and best_schedule is not None:
            measurer.preload(dag.name, best_latency, best_schedule)
        return schedules

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the backing file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RecordStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
