"""Fault-then-recover scenarios backing the release-gate obligations.

Each scenario is a plain callable taking a :class:`ScenarioContext` (a seed
and a scratch directory) that builds real subsystem state, arms a seeded
:class:`~repro.faults.plan.FaultPlan` around the operation under test, then
*recovers the way production would* — reloading stores from disk, retrying a
client call, restarting the service — and asserts the obligation's invariant
with :meth:`ScenarioContext.require`.  A failed ``require`` raises
:class:`ObligationViolation`, which the runner in
:mod:`repro.faults.obligations` reports with the message intact.

Scenarios must stay deterministic for a fixed seed: all randomness comes from
the armed plan's RNG or from values derived from ``ctx.seed``, never from the
wall clock or process state.
"""

from __future__ import annotations

import errno
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple

from repro.faults.plan import FaultPlan, InjectedCrash, WorkerDeath, inject

__all__ = ["ObligationViolation", "ScenarioContext", "SCENARIOS"]


class ObligationViolation(AssertionError):
    """A recovery invariant did not hold after an injected fault."""


@dataclass
class ScenarioContext:
    """What every scenario gets: a seed and a private scratch directory."""

    seed: int
    root: Path

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ObligationViolation(message)


# --------------------------------------------------------------------- #
# shared builders
# --------------------------------------------------------------------- #
def _tiny_config():
    from repro.core.config import HARLConfig

    return HARLConfig(
        window_size=4,
        elimination_ratio=0.5,
        min_tracks=2,
        num_tracks=8,
        episode_length=8,
        measures_per_round=4,
        minibatch_size=32,
        replay_capacity=512,
        ucb_window=16,
    )


def _entry(idx: int, latency: float, target: str = "sim-cpu"):
    from repro.serving.registry import RegistryEntry

    return RegistryEntry(
        fingerprint=f"wl-{idx:02d}",
        target=target,
        workload=f"workload_{idx}",
        latency=float(latency),
        throughput=1.0 / float(latency),
        trials=8,
        scheduler="harl",
        schedule={"stub": idx},
        embedding=(float(idx), 1.0),
        source="scenario",
    )


def _measure(idx: int):
    from repro.records import MeasureRecord

    return MeasureRecord(
        workload="scenario_workload",
        latency=1.0 + idx * 0.01,
        throughput=1.0 / (1.0 + idx * 0.01),
        trial_index=idx,
        schedule={"stub": idx},
        scheduler="harl",
        fingerprint="fp-scenario",
    )


def _best_map(registry) -> Dict[Tuple[str, str], float]:
    return {entry.key: entry.latency for entry in registry.entries()}


def _quiet_registry(root: Path, num_shards: int = 4, strict: bool = False):
    """Reload a registry with recovery warnings suppressed (expected here)."""
    from repro.serving.registry import ScheduleRegistry

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return ScheduleRegistry(root, num_shards=num_shards, strict=strict)


# --------------------------------------------------------------------- #
# registry obligations
# --------------------------------------------------------------------- #
def registry_no_lost_best(ctx: ScenarioContext) -> None:
    """A torn shard append + crash loses no (fingerprint, target) best."""
    from repro.serving.registry import ScheduleRegistry

    entries = [_entry(i, 1.0 + ((i * 7 + ctx.seed) % 5) / 10) for i in range(10)]

    clean = ScheduleRegistry(ctx.root / "clean", num_shards=4)
    for entry in entries:
        clean.record(entry)
    clean.close()
    expected = _best_map(_quiet_registry(ctx.root / "clean"))

    faulted_root = ctx.root / "faulted"
    victim = ScheduleRegistry(faulted_root, num_shards=4)
    plan = FaultPlan.single("registry.append", "torn_write", at=5, seed=ctx.seed)
    crashed_at = None
    with inject(plan):
        for index, entry in enumerate(entries):
            try:
                victim.record(entry)
            except InjectedCrash:
                crashed_at = index
                break
    ctx.require(crashed_at is not None, "the planned torn append never fired")

    # Restart: reload from the surviving files, then the client retries every
    # append it never saw acknowledged.
    recovered = _quiet_registry(faulted_root)
    ctx.require(
        recovered.truncated_tails >= 1,
        "reload did not repair the torn shard tail",
    )
    for entry in entries[crashed_at:]:
        recovered.record(entry)
    recovered.close()

    final = _best_map(_quiet_registry(faulted_root))
    ctx.require(
        final == expected,
        f"recovered registry diverged from fault-free registry: {final} != {expected}",
    )


def registry_torn_tail_truncated(ctx: ScenarioContext) -> None:
    """A torn final line on every shard is truncated (with a warning), not fatal."""
    from repro.serving.registry import ScheduleRegistry

    root = ctx.root / "registry"
    registry = ScheduleRegistry(root, num_shards=2)
    for i in range(6):
        registry.record(_entry(i, 2.0 - i / 10))
    registry.close()

    torn_shards = 0
    for shard in sorted(root.glob("shard-*.jsonl")):
        lines = shard.read_text().splitlines()
        if not lines:
            continue
        cut = 1 + (ctx.seed + torn_shards) % max(1, len(lines[-1]) - 1)
        head = "".join(line + "\n" for line in lines[:-1])
        shard.write_text(head + lines[-1][:cut])
        torn_shards += 1
    ctx.require(torn_shards >= 1, "scenario built no shards to tear")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        recovered = ScheduleRegistry(root, num_shards=2, strict=True)
    ctx.require(
        recovered.truncated_tails == torn_shards,
        f"expected {torn_shards} repaired tails, saw {recovered.truncated_tails}",
    )
    ctx.require(
        any("torn" in str(w.message) for w in caught),
        "truncation happened silently — operators must be told data was dropped",
    )
    for shard in sorted(root.glob("shard-*.jsonl")):
        raw = shard.read_bytes()
        ctx.require(
            not raw or raw.endswith(b"\n"),
            f"{shard.name} still does not end on a line boundary",
        )

    # The store must be appendable again: the next append may not concatenate
    # onto any leftover partial line.
    recovered.record(_entry(99, 0.5))
    recovered.close()
    reloaded = _quiet_registry(root, num_shards=2, strict=True)
    ctx.require(
        ("wl-99", "sim-cpu") in _best_map(reloaded),
        "append after tail repair was not readable on reload",
    )
    ctx.require(reloaded.truncated_tails == 0, "repair did not converge in one pass")


# --------------------------------------------------------------------- #
# record-store obligations
# --------------------------------------------------------------------- #
def records_no_double_count(ctx: ScenarioContext) -> None:
    """An ENOSPC'd append is rolled back everywhere; its retry lands once."""
    from repro.records import RecordStore

    path = ctx.root / "records.jsonl"
    store = RecordStore(path)
    for i in range(1, 4):
        store.append_measure(_measure(i))

    plan = FaultPlan.single(
        "records.flush", "enospc", at=0, match="measure", seed=ctx.seed
    )
    with inject(plan):
        try:
            store.append_measure(_measure(4))
            ctx.require(False, "the planned ENOSPC never surfaced")
        except OSError as exc:
            ctx.require(exc.errno == errno.ENOSPC, f"wrong errno: {exc.errno}")
    ctx.require(
        len(store.query(kind='measure')) == 3,
        "a failed append still landed in memory (double count on retry)",
    )
    ctx.require(store.flush_failures == 1, "flush failure was not counted")

    store.append_measure(_measure(4))  # the client's retry, disk now healthy
    store.close()

    reloaded = RecordStore.load(path, strict=True)
    trials = [m.trial_index for m in reloaded.query(kind='measure')]
    ctx.require(
        trials == [1, 2, 3, 4],
        f"log does not hold each measurement exactly once: {trials}",
    )


def records_slow_flush_flagged(ctx: ScenarioContext) -> None:
    """A slow-disk stall is surfaced via the counter and corrupts nothing."""
    from repro.records import RecordStore

    path = ctx.root / "records.jsonl"
    store = RecordStore(path)
    plan = FaultPlan.single("records.flush", "slow_disk", at=1, seed=ctx.seed)
    with inject(plan):
        for i in range(1, 4):
            store.append_measure(_measure(i))
    ctx.require(store.slow_flushes >= 1, "slow flush went unflagged")
    ctx.require(store.flush_failures == 0, "a stall is not a failure")
    store.close()

    reloaded = RecordStore.load(path, strict=True)
    ctx.require(
        [m.trial_index for m in reloaded.query(kind='measure')] == [1, 2, 3],
        "slow flush corrupted the log",
    )


# --------------------------------------------------------------------- #
# compaction obligations
# --------------------------------------------------------------------- #
def _registry_with_stale_lines(root: Path, num_shards: int = 2):
    from repro.serving.registry import ScheduleRegistry

    registry = ScheduleRegistry(root, num_shards=num_shards)
    for i in range(6):
        registry.record(_entry(i, 2.0))
        registry.record(_entry(i, 1.0 + i / 100))  # improvement → stale line
    registry.close()


def compaction_atomic(ctx: ScenarioContext) -> None:
    """A crash mid-compaction loses nothing; only a temp file is left behind."""
    root = ctx.root / "registry"
    _registry_with_stale_lines(root)
    expected = _best_map(_quiet_registry(root, num_shards=2))

    victim = _quiet_registry(root, num_shards=2)
    plan = FaultPlan.single(
        "registry.compact", "torn_write", match="mid_write", at=2, seed=ctx.seed
    )
    with inject(plan):
        try:
            victim.compact()
            ctx.require(False, "the planned compaction crash never fired")
        except InjectedCrash:
            pass

    tmps = list(root.glob("shard-*.jsonl.tmp"))
    ctx.require(
        len(tmps) >= 1,
        "crashed compaction left no temp file — is it writing shards in place?",
    )

    recovered = _quiet_registry(root, num_shards=2)
    ctx.require(
        _best_map(recovered) == expected,
        "entries were lost to a compaction crash",
    )
    ctx.require(recovered.removed_orphans >= 1, "orphaned temp file not cleaned up")
    ctx.require(not list(root.glob("*.tmp")), "temp file survived recovery")

    recovered.compact()
    recovered.close()
    ctx.require(
        _best_map(_quiet_registry(root, num_shards=2)) == expected,
        "re-running compaction after the crash changed the best map",
    )

    # Compaction also publishes the v2 index sidecars: a fresh reload must
    # answer an exact hit from the index after touching at most its one shard.
    ctx.require(
        len(list(root.glob("shard-*.idx.json"))) >= 1,
        "compaction published no index sidecars",
    )
    lazy = _quiet_registry(root, num_shards=2)
    ctx.require(
        lazy.lookup("wl-00", "sim-cpu", k=0).entry is not None,
        "indexed reload lost an entry after the compaction crash",
    )
    ctx.require(
        lazy.indexed_shards <= 1,
        "an exact lookup after compaction indexed more than its one shard",
    )
    lazy.close()


def compaction_idempotent(ctx: ScenarioContext) -> None:
    """Compaction converges: a second pass removes nothing and rewrites nothing."""
    root = ctx.root / "registry"
    _registry_with_stale_lines(root)
    expected = _best_map(_quiet_registry(root, num_shards=2))

    first = _quiet_registry(root, num_shards=2)
    removed = first.compact()
    first.close()
    ctx.require(removed >= 1, "scenario built no stale lines to compact")
    snapshot = {f.name: f.read_bytes() for f in sorted(root.glob("shard-*.jsonl"))}

    second = _quiet_registry(root, num_shards=2)
    removed_again = second.compact()
    second.close()
    ctx.require(removed_again == 0, f"second compaction removed {removed_again} lines")
    ctx.require(
        {f.name: f.read_bytes() for f in sorted(root.glob("shard-*.jsonl"))} == snapshot,
        "second compaction rewrote shard bytes",
    )

    # Crash in the instant before the atomic publish: disk must hold either
    # the old shard or the new one, never a mixture.
    third = _quiet_registry(root, num_shards=2)
    third.record(_entry(0, 0.25))  # fresh stale line so compaction has work
    third.close()
    expected[("wl-00", "sim-cpu")] = 0.25

    victim = _quiet_registry(root, num_shards=2)
    plan = FaultPlan.single(
        "registry.compact", "crash", match="before_replace", seed=ctx.seed
    )
    with inject(plan):
        try:
            victim.compact()
            ctx.require(False, "the planned before-replace crash never fired")
        except InjectedCrash:
            pass

    recovered = _quiet_registry(root, num_shards=2)
    ctx.require(
        _best_map(recovered) == expected,
        "crash before the atomic replace corrupted a shard",
    )
    recovered.compact()
    recovered.close()
    ctx.require(
        _best_map(_quiet_registry(root, num_shards=2)) == expected,
        "compaction retried after the crash changed the best map",
    )

    # The retried compaction must leave every shard's index sidecar coherent:
    # a lazy reload answers exactly without a full scan.
    lazy = _quiet_registry(root, num_shards=2)
    ctx.require(
        lazy.lookup("wl-00", "sim-cpu", k=0).entry is not None
        and lazy.indexed_shards <= 1,
        "retried compaction left the shard index unusable for lazy lookups",
    )
    lazy.close()


# --------------------------------------------------------------------- #
# measurement-pool obligation
# --------------------------------------------------------------------- #
def parallel_worker_retry(ctx: ScenarioContext) -> None:
    """A dead worker's span is retried to bit-identical results; retries bound."""
    import numpy as np

    from repro.hardware.measurer import Measurer
    from repro.hardware.parallel import ParallelMeasurer
    from repro.hardware.target import cpu_target
    from repro.tensor.sampler import sample_initial_schedules
    from repro.tensor.sketch import generate_sketches
    from repro.tensor.workloads import gemm

    target = cpu_target()
    sketch = generate_sketches(gemm(64, 64, 64))[0]
    schedules = sample_initial_schedules(
        sketch, 8, np.random.default_rng(ctx.seed)
    )

    serial = Measurer(target, seed=ctx.seed).measure(schedules)

    plan = FaultPlan.single(
        "parallel.worker", "worker_death", match="chunk-1", seed=ctx.seed
    )
    with ParallelMeasurer(target, num_workers=4, seed=ctx.seed) as pool:
        with inject(plan):
            parallel = pool.measure(schedules)
        ctx.require(pool.worker_deaths == 1, "the planned worker death never fired")
        ctx.require(pool.worker_retries == 1, "recovery did not go through a retry")
    ctx.require(
        [r.latency for r in serial] == [r.latency for r in parallel],
        "retried batch diverged from the serial measurer",
    )
    ctx.require(
        [r.trial_index for r in serial] == [r.trial_index for r in parallel],
        "retried batch shifted trial accounting",
    )

    # A span that keeps dying must eventually surface the failure instead of
    # retrying forever: this plan kills chunk-0's first submission and every
    # one of its retries.
    from repro.faults.plan import FaultSpec

    stubborn = FaultPlan(
        [FaultSpec("parallel.worker", "worker_death", match="chunk-0", times=50)],
        seed=ctx.seed,
    )
    with ParallelMeasurer(target, num_workers=4, seed=ctx.seed) as pool:
        with inject(stubborn):
            try:
                pool.measure(schedules)
                ctx.require(False, "a permanently dying span did not raise")
            except WorkerDeath:
                pass


# --------------------------------------------------------------------- #
# service obligations
# --------------------------------------------------------------------- #
def service_finish_after_crash_recovers(ctx: ScenarioContext) -> None:
    """Crash between advance and finish: a restarted service recovers the job."""
    from repro.records import RecordStore
    from repro.serving.registry import ScheduleRegistry
    from repro.serving.service import SOURCE_REGISTRY, TuningRequest, TuningService
    from repro.tensor.workloads import gemm

    registry_root = ctx.root / "registry"
    records_path = ctx.root / "records.jsonl"
    store = RecordStore(records_path)
    service = TuningService(
        registry=ScheduleRegistry(registry_root, num_shards=4),
        config=_tiny_config(),
        seed=ctx.seed,
        record_store=store,
    )
    handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=12))
    service.advance(handle, max_measures=4)  # one clean round, durably logged

    plan = FaultPlan.single("service.advance", "crash", seed=ctx.seed)
    with inject(plan):
        try:
            service.advance(handle, max_measures=4)
            ctx.require(False, "the planned service crash never fired")
        except InjectedCrash:
            pass
    service.registry.close()
    store.close()

    # --- restart: everything rebuilt from disk ---
    registry = _quiet_registry(registry_root)
    fingerprint = handle.fingerprint
    ctx.require(
        registry.lookup(fingerprint, service.target.name, k=0).entry is None,
        "scenario defect: the crashed job finished before the crash",
    )
    reloaded_store = RecordStore.load(records_path)
    measures = reloaded_store.query(kind="measure")
    ctx.require(len(measures) >= 1, "no measurements survived the crash on disk")

    revived = TuningService(
        registry=registry,
        config=_tiny_config(),
        seed=ctx.seed,
        record_store=reloaded_store,
    )
    recovered = revived.recover_from_records()
    ctx.require(recovered >= 1, "recovery accepted no registry entries")

    entry = registry.lookup(fingerprint, revived.target.name, k=0).entry
    ctx.require(entry is not None, "recovered registry still misses the workload")
    best_logged = min(m.latency for m in measures if m.fingerprint == fingerprint)
    ctx.require(
        entry.latency == best_logged,
        f"recovered latency {entry.latency} != best logged {best_logged}",
    )

    # The recovered entry must actually serve clients: a resubmission of the
    # same workload is a registry hit costing zero trials.
    twin = revived.submit(
        TuningRequest(dag=gemm(64, 64, 64, name="after_restart"), n_trials=12)
    )
    ctx.require(twin.source == SOURCE_REGISTRY, "restarted service re-tuned from scratch")
    ctx.require(twin.result.trials_used == 0, "registry hit consumed trials")


def service_waiters_released(ctx: ScenarioContext) -> None:
    """A scheduler error releases every coalesced waiter instead of deadlocking."""
    from repro.serving.registry import ScheduleRegistry
    from repro.serving.service import SOURCE_SCHEDULED, TuningRequest, TuningService
    from repro.tensor.workloads import gemm

    class _ExplodingScheduler:
        def tune_round(self, dag, max_measures):
            raise RuntimeError("injected scheduler failure")

        def finalize(self, dag):
            raise RuntimeError("injected scheduler failure")

    service = TuningService(
        registry=ScheduleRegistry(),
        config=_tiny_config(),
        seed=ctx.seed,
        scheduler_factory=lambda name, seed, provider: _ExplodingScheduler(),
    )
    handles = [
        service.submit(
            TuningRequest(dag=gemm(64, 64, 64, name=f"client_{i}"), n_trials=8)
        )
        for i in range(3)
    ]
    try:
        service.run()
        ctx.require(False, "the scheduler error was swallowed")
    except RuntimeError:
        pass

    ctx.require(
        all(handle.done for handle in handles),
        "coalesced waiters were left hanging after the scheduler error",
    )
    ctx.require(
        all(
            "injected scheduler failure" in handle.result.extras.get("error", "")
            for handle in handles
        ),
        "aborted results do not carry the error",
    )
    ctx.require(service.active_jobs() == 0, "the failed job is still in flight")
    ctx.require(service.aborted_jobs == 1, "abort accounting is off")

    # The key must be free again: a resubmission builds a fresh job rather
    # than coalescing onto the corpse.
    retry = service.submit(
        TuningRequest(dag=gemm(64, 64, 64, name="retry"), n_trials=8)
    )
    ctx.require(retry.source == SOURCE_SCHEDULED, "resubmission did not get a new job")
    ctx.require(service.jobs_created == 2, "resubmission reused the aborted job")


# --------------------------------------------------------------------- #
# network-server obligations
# --------------------------------------------------------------------- #
def _tiny_service(ctx: ScenarioContext):
    from repro.serving.registry import ScheduleRegistry
    from repro.serving.service import TuningService

    return TuningService(
        registry=ScheduleRegistry(), config=_tiny_config(), seed=ctx.seed
    )


def server_timeout_enforced(ctx: ScenarioContext) -> None:
    """A wedged backend gets an explicit ``timeout`` answer, not a hang."""
    import time

    from repro.serving.netclient import TuningClient
    from repro.serving.server import ServerConfig, ServingServer

    config = ServerConfig(workers=1, max_inflight=2, request_timeout=0.25)
    plan = FaultPlan.single("server.accept", "slow_disk", seed=ctx.seed, delay=1.5)
    with ServingServer(_tiny_service(ctx), config) as server:
        with inject(plan):
            with TuningClient(server.host, server.port, timeout=10.0,
                              max_retries=0) as client:
                began = time.perf_counter()
                reply = client.tune("GEMM-S", trials=4)
                elapsed = time.perf_counter() - began
                ctx.require(
                    not reply.ok and reply.error_code == "timeout",
                    f"wedged backend did not answer 'timeout': {reply}",
                )
                ctx.require(
                    elapsed < 1.2,
                    f"timeout answered only after the {1.5}s stall cleared "
                    f"({elapsed:.2f}s) — the deadline is not enforced",
                )
                ctx.require(
                    client.ping(),
                    "server unresponsive after answering a timeout",
                )
            ctx.require(plan.fired, "the planned backend stall never fired")
            ctx.require(server.timeouts >= 1, "timeout was not counted")
        # Context exit joins the stalled worker, so the armed plan of the
        # next scenario can never leak into this server's backend.


def server_retry_bounded(ctx: ScenarioContext) -> None:
    """Client retry is bounded, and a recovering backend is ridden out."""
    from repro.serving.netclient import NetClientError, TuningClient
    from repro.serving.server import ServerConfig, ServingServer

    with ServingServer(_tiny_service(ctx), ServerConfig(workers=2)) as server:
        # A backend that keeps dying must exhaust the client after exactly
        # 1 + max_retries attempts instead of retrying forever.
        stubborn = FaultPlan.single("server.accept", "crash", seed=ctx.seed, times=50)
        with inject(stubborn):
            with TuningClient(server.host, server.port, timeout=10.0,
                              max_retries=2, backoff=0.01) as client:
                try:
                    client.tune("GEMM-S", trials=4)
                    ctx.require(False, "a permanently dead backend did not raise")
                except NetClientError as exc:
                    ctx.require(
                        exc.attempts == 3,
                        f"retry not bounded at 1+max_retries: {exc.attempts}",
                    )
            ctx.require(
                len(stubborn.fired) == 3,
                f"client hit the backend {len(stubborn.fired)} times, not 3",
            )

        # A backend that recovers within the budget: the retry rides out the
        # two drops and the third attempt is answered normally.
        flaky = FaultPlan.single("server.accept", "crash", seed=ctx.seed, times=2)
        with inject(flaky):
            with TuningClient(server.host, server.port, timeout=10.0,
                              max_retries=3, backoff=0.01) as client:
                reply = client.tune("GEMM-S", trials=4)
                ctx.require(reply.ok, f"recovering backend not ridden out: {reply}")
                ctx.require(
                    reply.attempts == 3,
                    f"expected success on attempt 3, got {reply.attempts}",
                )
        ctx.require(len(flaky.fired) == 2, "the flaky-backend drops never fired")
        ctx.require(server.dropped >= 5, "dropped connections were not counted")


def server_shed_from_registry(ctx: ScenarioContext) -> None:
    """A saturated server answers registry-only with an explicit degraded flag."""
    import threading
    import time

    from repro.faults.plan import FaultSpec
    from repro.serving.netclient import TuningClient
    from repro.serving.server import ServerConfig, ServingServer

    config = ServerConfig(workers=1, max_inflight=1, request_timeout=30.0)
    with ServingServer(_tiny_service(ctx), config) as server:
        with TuningClient(server.host, server.port, timeout=30.0) as client:
            primed = client.tune("GEMM-S", trials=4)
            ctx.require(
                primed.ok and not primed.degraded,
                f"priming tune failed: {primed}",
            )

        plan = FaultPlan(
            [
                # Wedge the only admission slot: the blocker tenant's job
                # stalls in the backend long enough to saturate the server.
                FaultSpec("server.accept", "slow_disk", match="blocker:",
                          delay=1.5),
                # And the first shed answer dies mid-shed: the client's
                # bounded retry must recover it.
                FaultSpec("server.shed", "crash", at=0),
            ],
            seed=ctx.seed,
        )
        with inject(plan):
            def _block() -> None:
                with TuningClient(server.host, server.port, timeout=30.0,
                                  max_retries=0) as blocker:
                    blocker.tune("C1D", trials=4, tenant="blocker")

            blocker = threading.Thread(target=_block, daemon=True)
            blocker.start()
            deadline = time.monotonic() + 5.0
            while server.accepted < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            ctx.require(server.accepted >= 2, "blocker request was never admitted")

            with TuningClient(server.host, server.port, timeout=30.0,
                              max_retries=2, backoff=0.01) as client:
                # force_tune asks for fresh trials; the saturated server must
                # answer from the registry instead and say so.
                reply = client.tune("GEMM-S", trials=4, force_tune=True)
                ctx.require(
                    reply.ok and reply.degraded,
                    f"saturated server did not degrade explicitly: {reply}",
                )
                ctx.require(
                    reply.trials_used == 0,
                    f"shed answer consumed {reply.trials_used} fresh trials",
                )
                ctx.require(
                    reply.source == "registry-hit",
                    f"shed answer not from the registry: {reply.source!r}",
                )
                ctx.require(
                    reply.latency == primed.latency,
                    "shed answer diverged from the stored best",
                )
                ctx.require(
                    reply.attempts == 2,
                    f"the crashed shed was not retried once: {reply.attempts}",
                )

                # Unknown workload while saturated: an explicit overloaded
                # error (still flagged degraded), never a hang or silent drop.
                miss = client.tune("GEMM-M", trials=4)
                ctx.require(
                    not miss.ok and miss.error_code == "overloaded",
                    f"registry miss under saturation not rejected: {miss}",
                )
                ctx.require(miss.degraded, "overloaded answer not flagged degraded")
            ctx.require(server.shed >= 3, f"shed counter off: {server.shed}")
            blocker.join(timeout=10.0)
            ctx.require(not blocker.is_alive(), "wedged job never completed")


#: name → scenario callable (consumed by :mod:`repro.faults.obligations`).
SCENARIOS = {
    "registry_no_lost_best": registry_no_lost_best,
    "registry_torn_tail_truncated": registry_torn_tail_truncated,
    "records_no_double_count": records_no_double_count,
    "records_slow_flush_flagged": records_slow_flush_flagged,
    "compaction_atomic": compaction_atomic,
    "compaction_idempotent": compaction_idempotent,
    "parallel_worker_retry": parallel_worker_retry,
    "service_finish_after_crash_recovers": service_finish_after_crash_recovers,
    "service_waiters_released": service_waiters_released,
    "server_timeout_enforced": server_timeout_enforced,
    "server_retry_bounded": server_retry_bounded,
    "server_shed_from_registry": server_shed_from_registry,
}
