"""Command-line entry point of the obligation release gate.

``python -m repro.faults.gate`` (or ``make gate``) runs every obligation in
:data:`~repro.faults.obligations.OBLIGATIONS` under several seeds, writes the
``GATE_obligations.json`` report artifact, prints one PASS/FAIL line per
run, and exits non-zero if any obligation failed — which is what makes it a
*gate*: CI refuses the build on a red report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.faults.obligations import OBLIGATIONS, ObligationOutcome, run_gate

__all__ = ["main"]


def _print_outcome(outcome: ObligationOutcome) -> None:
    verdict = "PASS" if outcome.passed else "FAIL"
    line = (
        f"[{verdict}] {outcome.obligation.name} "
        f"(seed {outcome.seed}, {outcome.duration_s:.2f}s)"
    )
    if not outcome.passed:
        line += f": {outcome.message}"
    print(line)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.gate",
        description="Run the fault-injection recovery obligations (release gate).",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        metavar="N",
        help="run every obligation under seeds 0..N-1 (default: 3)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this obligation (repeatable)",
    )
    parser.add_argument(
        "--report",
        default="GATE_obligations.json",
        metavar="PATH",
        help="where to write the JSON report artifact",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the obligation table and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for obligation in OBLIGATIONS:
            print(f"{obligation.name}: {obligation.description}")
        return 0

    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    report = run_gate(
        seeds=range(args.seeds), names=args.only, progress=_print_outcome
    )
    report.write(args.report)

    failures = report.failures()
    total = len(report.outcomes)
    if failures:
        print(
            f"\nGATE FAILED: {len(failures)}/{total} obligation runs failed "
            f"(report: {args.report})"
        )
        return 1
    print(f"\nGATE PASSED: {total}/{total} obligation runs passed (report: {args.report})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
