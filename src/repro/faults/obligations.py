"""The obligation table and gate runner: *what must hold after a fault*.

An :class:`Obligation` is a named recovery invariant of the serving/tuning
stack, bound to the :mod:`~repro.faults.scenarios` scenario that enforces it
by injecting the fault and exercising the production recovery path.  The
table is declarative on purpose — reviewers audit *invariants* here and read
the mechanics in one place (the scenario) rather than piecing them together
from scattered test files.

:func:`run_gate` executes every obligation under several seeds (each run in a
fresh temporary directory, so obligations are hermetic and order-independent)
and returns a :class:`GateReport` that serialises to the
``GATE_obligations.json`` artifact published by ``make gate`` and CI.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Callable, List, Optional, Sequence

from repro.faults.plan import InjectedFault
from repro.faults.scenarios import SCENARIOS, ObligationViolation, ScenarioContext

__all__ = [
    "GateReport",
    "Obligation",
    "ObligationOutcome",
    "OBLIGATIONS",
    "run_gate",
    "run_obligation",
]


@dataclass(frozen=True)
class Obligation:
    """One release-gate invariant: a name, the promise, and its enforcer."""

    name: str
    description: str
    scenario: Callable[[ScenarioContext], None]


def _scenario(key: str) -> Callable[[ScenarioContext], None]:
    return SCENARIOS[key]


#: The release gate.  Every entry must pass, under every gate seed, before a
#: build ships.  Names are ``subsystem.invariant``.
OBLIGATIONS = (
    Obligation(
        "registry.no_lost_best",
        "A crash that tears a shard append loses no (fingerprint, target) "
        "best: after reload plus client retry the registry equals a "
        "fault-free one.",
        _scenario("registry_no_lost_best"),
    ),
    Obligation(
        "registry.torn_tail_truncated",
        "A torn final line on any shard (even all of them) is truncated "
        "with a warning at load — never an exception, even in strict mode — "
        "and the shard is cleanly appendable afterwards.",
        _scenario("registry_torn_tail_truncated"),
    ),
    Obligation(
        "records.no_double_count",
        "A record append that fails with ENOSPC leaves memory and disk "
        "agreeing, and its retry lands exactly once in the log.",
        _scenario("records_no_double_count"),
    ),
    Obligation(
        "records.slow_flush_flagged",
        "A slow-disk stall on a record flush is surfaced via the "
        "slow_flushes counter and corrupts nothing.",
        _scenario("records_slow_flush_flagged"),
    ),
    Obligation(
        "compaction.atomic_replace",
        "A crash mid-compaction loses no entries: shards are replaced "
        "atomically and the orphaned temp file is cleaned up on reload.",
        _scenario("compaction_atomic"),
    ),
    Obligation(
        "compaction.idempotent",
        "Compaction converges — a second pass removes nothing and rewrites "
        "no bytes — and a crash just before the atomic publish leaves "
        "either the old shard or the new one, never a mixture.",
        _scenario("compaction_idempotent"),
    ),
    Obligation(
        "parallel.worker_retry_bounded",
        "A worker dying mid-batch is recovered by re-running its span to "
        "bit-identical results; a span that keeps dying raises after a "
        "bounded number of retries.",
        _scenario("parallel_worker_retry"),
    ),
    Obligation(
        "service.finish_after_crash_recovers",
        "A service crash between a round commit and the job finish is "
        "recoverable: a restarted service folds the measurement log back "
        "into the registry and answers the workload as a zero-trial hit.",
        _scenario("service_finish_after_crash_recovers"),
    ),
    Obligation(
        "service.waiters_released_on_error",
        "A scheduler error aborts the job and releases every coalesced "
        "waiter with an error-tagged result; the workload key is free for "
        "resubmission.",
        _scenario("service_waiters_released"),
    ),
    Obligation(
        "timeout.enforced",
        "A request whose backend wedges is answered with the explicit "
        "'timeout' error code within the configured deadline — the server "
        "never hangs the client and stays responsive afterwards.",
        _scenario("server_timeout_enforced"),
    ),
    Obligation(
        "retry.bounded",
        "The wire client's transport retry is bounded: a permanently dead "
        "backend surfaces after exactly 1+max_retries attempts, while a "
        "backend that recovers within the budget is ridden out.",
        _scenario("server_retry_bounded"),
    ),
    Obligation(
        "shed.answers_from_registry",
        "A saturated server sheds load by answering registry-only with an "
        "explicit degraded flag and zero fresh trials; a registry miss gets "
        "the explicit 'overloaded' error — never a hang or a silent drop.",
        _scenario("server_shed_from_registry"),
    ),
)


@dataclass
class ObligationOutcome:
    """Result of one (obligation, seed) scenario run."""

    obligation: Obligation
    seed: int
    passed: bool
    message: str
    duration_s: float


def run_obligation(obligation: Obligation, seed: int) -> ObligationOutcome:
    """Run one obligation's scenario under one seed, hermetically."""
    started = time.perf_counter()
    passed, message = True, "ok"
    with TemporaryDirectory(prefix=f"gate-{obligation.name}-") as scratch:
        ctx = ScenarioContext(seed=seed, root=Path(scratch))
        try:
            with warnings.catch_warnings():
                # Scenarios provoke recovery warnings on purpose; the ones
                # that must warn assert on them explicitly.
                warnings.simplefilter("ignore")
                obligation.scenario(ctx)
        except ObligationViolation as violation:
            passed, message = False, str(violation)
        except InjectedFault as fault:
            passed = False
            message = f"unhandled injected fault escaped recovery: {fault}"
        except Exception as exc:  # scenario crashed outright
            passed, message = False, f"{type(exc).__name__}: {exc}"
    return ObligationOutcome(
        obligation=obligation,
        seed=seed,
        passed=passed,
        message=message,
        duration_s=time.perf_counter() - started,
    )


@dataclass
class GateReport:
    """All outcomes of one gate run, serialisable to the report artifact."""

    seeds: List[int]
    outcomes: List[ObligationOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def failures(self) -> List[ObligationOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def to_dict(self) -> dict:
        obligations = []
        for obligation in OBLIGATIONS:
            runs = [o for o in self.outcomes if o.obligation.name == obligation.name]
            if not runs:
                continue
            obligations.append(
                {
                    "name": obligation.name,
                    "description": obligation.description,
                    "passed": all(run.passed for run in runs),
                    # Wall clock summed over this obligation's seed runs, so
                    # gate-time regressions show up per row in the artifact.
                    "duration_s": round(sum(run.duration_s for run in runs), 4),
                    "runs": [
                        {
                            "seed": run.seed,
                            "passed": run.passed,
                            "message": run.message,
                            "duration_s": round(run.duration_s, 4),
                        }
                        for run in runs
                    ],
                }
            )
        return {
            "schema": "obligation-gate/1",
            "seeds": list(self.seeds),
            "passed": self.passed,
            "duration_s": round(sum(o.duration_s for o in self.outcomes), 4),
            "obligations": obligations,
        }

    def write(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def run_gate(
    seeds: Sequence[int] = (0, 1, 2),
    names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[ObligationOutcome], None]] = None,
) -> GateReport:
    """Run the obligation table (optionally a named subset) over ``seeds``."""
    selected = list(OBLIGATIONS)
    if names:
        wanted = set(names)
        unknown = wanted - {obligation.name for obligation in OBLIGATIONS}
        if unknown:
            known = sorted(obligation.name for obligation in OBLIGATIONS)
            raise KeyError(f"unknown obligation(s) {sorted(unknown)}; known: {known}")
        selected = [o for o in selected if o.name in wanted]
    report = GateReport(seeds=list(seeds))
    for obligation in selected:
        for seed in seeds:
            outcome = run_obligation(obligation, seed)
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    return report
