"""Deterministic fault-injection plans for the stateful serving/tuning stack.

The stack has several crash-sensitive commit points: registry shard appends,
record-log flushes, worker pools evaluating a measurement batch, compaction
rewrites, and the service's round-commit → job-finish window.  This module
lets a test (or the release gate, see :mod:`repro.faults.obligations`) arm a
seeded, reproducible :class:`FaultPlan` that fires at exactly those points:

* Production code consults a **named fault point** via :func:`poll`, which is
  a no-op returning ``None`` unless a plan is active (``with inject(plan):``),
  so the hooks cost one global read on the happy path.
* A :class:`FaultSpec` selects *where* (``point`` + optional ``match`` against
  the hook's detail string), *when* (the ``at``-th matching arrival, for
  ``times`` consecutive arrivals) and *what* (``kind``: a torn partial write,
  a simulated process crash, ENOSPC, a slow disk stall, or a worker death).
* Everything random (e.g. where a torn write is cut) comes from the plan's
  seeded RNG, and hooks are polled from deterministic control points, so one
  ``(plan specs, seed)`` pair replays the same fault sequence every run.

The injected exceptions model real failure modes: :class:`InjectedCrash`
simulates the process dying (nothing may run afterwards on that object's
behalf — recovery happens in a *reloaded* instance), :class:`WorkerDeath`
simulates one pool worker disappearing mid-batch, and ENOSPC is raised as a
genuine ``OSError`` so production code exercises its real error handling.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import counter
from repro.obs.trace import trace_event

__all__ = [
    "FAULT_POINTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "InjectedCrash",
    "InjectedFault",
    "WorkerDeath",
    "active_plan",
    "inject",
    "poll",
]

#: Every named fault point production code consults, with what firing there
#: simulates.  ``poll`` rejects unknown names so hooks and plans cannot drift
#: apart silently.
FAULT_POINTS = {
    "registry.append": "torn/partial shard append followed by process death",
    "registry.compact": "crash mid-compaction (mid temp write or just before the atomic replace)",
    "records.flush": "ENOSPC or a slow-disk stall on a record-log flush",
    "parallel.worker": "death of one pool worker mid-batch (details: chunk-N / retry-K:chunk-N)",
    "service.advance": "process crash between a round commit and the job finish",
    "server.accept": "stall or drop of an admitted request before tuning starts",
    "server.shed": "failure while shedding load (answering registry-only)",
}

#: What a firing spec does at its point.
FAULT_KINDS = ("torn_write", "crash", "enospc", "slow_disk", "worker_death")

_INJECTED = counter("faults.injected", "Faults fired by an armed FaultPlan")


class InjectedFault(Exception):
    """Base class of all injected failures."""


class InjectedCrash(InjectedFault):
    """Simulated process death: nothing runs after this on the dead object.

    Recovery is only legitimate through a freshly constructed instance over
    the surviving on-disk state, exactly like a real restart.
    """


class WorkerDeath(InjectedFault):
    """Simulated death of one worker while it evaluated part of a batch."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where, when and what to inject.

    Parameters
    ----------
    point:
        Name of the fault point (a key of :data:`FAULT_POINTS`).
    kind:
        One of :data:`FAULT_KINDS`.
    at / times:
        Fire on the ``at``-th *matching* arrival at the point (0-based), for
        ``times`` consecutive matching arrivals.
    match:
        Only arrivals whose detail string contains this substring count (and
        can fire).  ``None`` matches every arrival at the point.
    fraction:
        For torn writes: keep this fraction of the intended bytes.  ``None``
        (the default) draws the cut from the plan's seeded RNG.
    delay:
        For ``slow_disk``: stall duration in seconds.
    """

    point: str
    kind: str
    at: int = 0
    times: int = 1
    match: Optional[str] = None
    fraction: Optional[float] = None
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known: {sorted(FAULT_POINTS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.at < 0 or self.times < 1:
            raise ValueError("FaultSpec needs at >= 0 and times >= 1")
        if self.fraction is not None and not (0.0 < self.fraction < 1.0):
            raise ValueError("fraction must lie strictly between 0 and 1")


class FiredFault:
    """A spec that just fired, plus helpers to enact its kind.

    Production hooks receive this from :func:`poll` and apply the failure
    themselves (they know their I/O handles); the helpers keep the failure
    shapes consistent across hooks.
    """

    def __init__(self, spec: FaultSpec, plan: "FaultPlan", detail: str):
        self.spec = spec
        self.plan = plan
        self.detail = detail

    def torn_prefix(self, text: str) -> str:
        """A strict prefix of an intended write (at least one byte is lost)."""
        if len(text) <= 1:
            return ""
        if self.spec.fraction is not None:
            cut = int(len(text) * self.spec.fraction)
        else:
            with self.plan._lock:
                cut = 1 + self.plan.rng.randrange(len(text) - 1)
        return text[: max(1, min(cut, len(text) - 1))]

    def sleep(self) -> None:
        """Stall, simulating a slow disk."""
        time.sleep(self.spec.delay)

    def raise_enospc(self) -> None:
        """Raise a genuine out-of-space ``OSError``."""
        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), self.detail or None)

    def crash(self, message: str) -> None:
        """Simulate process death at this point."""
        raise InjectedCrash(f"{self.spec.point}: {message}")


class FaultPlan:
    """A seeded, reproducible set of :class:`FaultSpec` injections.

    Each spec keeps its own count of matching arrivals, so ``at``/``times``
    windows are relative to the arrivals that spec could have fired on.  The
    first spec whose window covers the current arrival wins; later specs do
    not observe that arrival.  ``fired`` logs every injection as
    ``(point, kind, detail)`` so scenarios can assert the fault really
    happened (a plan that never fires usually means a hook regressed).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.fired: List[Tuple[str, str, str]] = []
        self._arrivals = [0] * len(self.specs)
        self._lock = threading.Lock()

    @classmethod
    def single(cls, point: str, kind: str, seed: int = 0, **kwargs) -> "FaultPlan":
        """Convenience: a plan holding exactly one spec."""
        return cls([FaultSpec(point, kind, **kwargs)], seed=seed)

    def poll(self, point: str, detail: str = "") -> Optional[FiredFault]:
        """Record one arrival at ``point``; return the firing spec, if any."""
        fired: Optional[FiredFault] = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.point != point:
                    continue
                if spec.match is not None and spec.match not in detail:
                    continue
                arrival = self._arrivals[index]
                self._arrivals[index] += 1
                if spec.at <= arrival < spec.at + spec.times:
                    self.fired.append((point, spec.kind, detail))
                    fired = FiredFault(spec, self, detail)
                    break
        if fired is not None:
            # Observability hooks run outside the plan lock: a fired fault is
            # both a counter tick and a trace event, so trace trees show the
            # injected failure inline with the spans it disturbed.
            _INJECTED.inc()
            trace_event(
                "fault.injected", point=point, kind=fired.spec.kind, detail=detail
            )
        return fired


# --------------------------------------------------------------------- #
# module-level activation (what production hooks consult)
# --------------------------------------------------------------------- #
_ACTIVE: Optional[FaultPlan] = None
_ACTIVATION_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None``."""
    return _ACTIVE


def poll(point: str, detail: str = "") -> Optional[FiredFault]:
    """Consult a named fault point; ``None`` (fast) when no plan is armed.

    Worker threads share the armed plan — arrivals are counted under the
    plan's lock — but deterministic callers poll from sequential control
    points (batch submission loops, commit points), so firing order is
    reproducible for a fixed plan.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    if point not in FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; known: {sorted(FAULT_POINTS)}"
        )
    return plan.poll(point, detail)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block (plans never nest)."""
    global _ACTIVE
    with _ACTIVATION_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a fault plan is already active; plans do not nest")
        _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
