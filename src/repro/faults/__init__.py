"""Fault injection and the obligation-style release gate.

Two layers live here:

* :mod:`repro.faults.plan` — the deterministic fault-injection harness: a
  seeded :class:`FaultPlan` armed with ``inject(plan)`` fires at named fault
  points that the registry, record store, measurer pools and tuning service
  consult (``poll`` is a near-free no-op when no plan is armed).
* :mod:`repro.faults.obligations` / :mod:`repro.faults.scenarios` — the
  release gate: a declarative table of recovery invariants (*what must hold
  after a fault, not how it is tested*), each executed as a seeded
  fault-then-recover scenario.  ``python -m repro.faults.gate`` (wired as
  ``make gate`` and a CI job) runs the table and writes a report artifact.

Only the harness layer is re-exported here; the gate layers import the wider
system and are loaded explicitly by their consumers.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    FiredFault,
    InjectedCrash,
    InjectedFault,
    WorkerDeath,
    active_plan,
    inject,
    poll,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "InjectedCrash",
    "InjectedFault",
    "WorkerDeath",
    "active_plan",
    "inject",
    "poll",
]
