"""Persistent, sharded best-schedule registry.

The registry is the shared database layer of the serving subsystem: it maps
``(structural fingerprint, hardware target)`` to the best-known schedule of
that workload plus provenance, so tuning work done anywhere — benchmark runs,
CLI sessions, the multi-tenant tuning service — accumulates into one reusable
knowledge base.

Storage model
-------------
Entries live in ``num_shards`` append-only JSONL shard files under one
directory, sharded by fingerprint prefix so concurrent writers on different
workloads rarely touch the same file.  Appends are single ``write`` +
``flush`` calls of one line, the same crash-tolerant discipline as
:class:`~repro.records.RecordStore`; corrupted lines are skipped (and
counted) at load time.  An improvement to a key appends a new line rather
than rewriting the shard, so files grow monotonically until
:meth:`ScheduleRegistry.compact` rewrites each shard with only the current
best entry per key (atomically, via temp file + ``os.replace``).

Shard format v2 (``repro-shard/2``) adds a per-shard *index sidecar*
(``shard-NN.idx.json``) next to each data file: byte offset + length, key,
latency and embedding of the best line per key, plus the line counters and a
CRC of the data-file prefix.  A registry directory with a matching
``registry.json`` manifest loads *lazily*: construction touches no shard, an
exact :meth:`lookup` indexes only the one shard its key hashes to (one small
sidecar parse), and entry bodies are materialised on demand with a single
``seek`` + ``read`` through an LRU cache of open shard handles.  Sidecars
are advisory: a stale or missing one (crash between data replace and sidecar
write, a shard torn-tail repair, a v1 directory) falls back to scanning the
data file, and lines appended after the sidecar was written are absorbed by
scanning only the tail beyond ``data_bytes``.  v1 directories (no manifest)
are read transparently — every file is scanned eagerly on first access —
and upgraded to v2 by :meth:`compact` (or on :meth:`close` after writes).

Reuse model
-----------
:meth:`lookup` is the single query entry point: it answers the exact
structural hit, the ``k`` nearest same-target neighbours and (on request)
ranked cross-target transfer candidates in one :class:`LookupResult`.
Nearest-neighbour scoring keeps a contiguous per-target NumPy matrix of the
stored workload embeddings and ranks all candidates in one vectorised pass
(the legacy per-entry loop remains behind
:func:`~repro.caching.legacy_hot_path` for A/B measurement).
:meth:`warm_start_schedules` packages lookup results into ready-to-measure
:class:`~repro.tensor.schedule.Schedule` objects (tile sizes are re-fitted
to the new extents when the relative's shape differs).

When a target has no registered entries yet, the transfer search falls back
*across* targets: donors are ranked by the sum of workload embedding
distance and hardware :func:`~repro.hardware.catalog.target_distance`
(so a close cousin device with the exact workload beats a remote device, and
same-kind donors always beat cross-kind ones), and the borrowed schedule is
re-fitted to the destination device — tiling depths, innermost tile sizes
rounded to the destination ``vector_width``, register/L1 working set shrunk
to its cache capacities, and the unroll depth mapped onto the destination's
candidate list.  Results recorded after a cross-target warm start carry the
donor target in their provenance (``RegistryEntry.donor_target``).

Deprecated surface
------------------
``get()`` / ``nearest()`` / ``cross_target_candidates()`` survive as thin
wrappers over :meth:`lookup`'s internals and emit ``DeprecationWarning``;
new code should call :meth:`lookup`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import warnings
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import IO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.caching import MemoCache, cached_sketches, hot_path_enabled
from repro.faults.plan import poll as poll_fault
from repro.hardware.catalog import default_catalog, target_distance
from repro.jsonl import repair_torn_tail
from repro.hardware.target import HardwareTarget
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span as obs_span
from repro.serving.fingerprint import (
    embedding_distance,
    structural_fingerprint,
    workload_embedding,
)
from repro.tensor.dag import DTYPE_BYTES, ComputeDAG
from repro.tensor.factors import prime_factors, product
from repro.tensor.schedule import Schedule

__all__ = [
    "LookupResult",
    "RegistryEntry",
    "ScheduleRegistry",
    "TransferCandidate",
]

#: Version tag of the per-shard index sidecar (``shard-NN.idx.json``).
SHARD_INDEX_FORMAT = "repro-shard/2"
#: Version tag of the registry-level layout manifest (``registry.json``).
REGISTRY_MANIFEST_FORMAT = "repro-registry/2"

#: How many leading bytes of a data file its sidecar checksums.  Enough to
#: catch a shard rewritten in place (compaction under a different mapping),
#: cheap enough to verify on every lazy load.
_PREFIX_CRC_CAP = 64 * 1024

_LOOKUPS = counter("registry.lookups", "Exact (fingerprint, target) lookups")
_HITS = counter("registry.hits", "Exact lookups answered from the best map")
_MISSES = counter("registry.misses", "Exact lookups with no stored entry")
_TRANSFER_LOOKUPS = counter("registry.transfer_lookups", "Warm-start transfer searches")
_TRANSFER_CANDIDATES = counter(
    "registry.transfer_candidates", "Warm-start candidates produced"
)
_SHARD_OPENS = counter("registry.shard_opens", "Shard files opened for indexed reads")
_INDEX_HITS = counter(
    "registry.index_hits", "Entries materialised via a shard-index seek"
)
_INDEX_LOADS = counter("registry.index_loads", "Shard indexes ingested from sidecars")
_SHARD_LOAD = histogram("registry.shard_load_seconds", help="Per-shard JSONL scan time")
_INDEX_LOAD = histogram(
    "registry.index_load_seconds", help="Per-shard index load (sidecar or scan) time"
)
_APPEND = histogram("registry.append_seconds", help="Single-entry shard append time")
_COMPACT = histogram("registry.compact_seconds", help="Full registry compaction time")


@dataclass(frozen=True)
class RegistryEntry:
    """Best-known schedule of one (workload fingerprint, target) pair.

    ``schedule`` is the structural serialisation produced by
    :func:`~repro.records.schedule_to_dict`; ``source`` records provenance
    (which runner / service tenant / import produced the entry) and
    ``donor_target`` names the target(s) whose registered schedules
    warm-started the run that produced this entry (empty for cold runs).
    """

    fingerprint: str
    target: str
    workload: str
    latency: float
    throughput: float
    trials: int
    scheduler: str
    schedule: Optional[dict]
    embedding: Tuple[float, ...] = ()
    source: str = ""
    donor_target: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.fingerprint, self.target)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "target": self.target,
            "workload": self.workload,
            "latency": self.latency,
            "throughput": self.throughput,
            "trials": self.trials,
            "scheduler": self.scheduler,
            "schedule": self.schedule,
            "embedding": list(self.embedding),
            "source": self.source,
            "donor_target": self.donor_target,
        }

    @staticmethod
    def from_dict(data: dict) -> "RegistryEntry":
        return RegistryEntry(
            fingerprint=data["fingerprint"],
            target=data["target"],
            workload=data["workload"],
            latency=float(data["latency"]),
            throughput=float(data["throughput"]),
            trials=int(data.get("trials", 0)),
            scheduler=data.get("scheduler", ""),
            schedule=data.get("schedule"),
            embedding=tuple(float(v) for v in data.get("embedding", ())),
            source=data.get("source", ""),
            donor_target=data.get("donor_target", ""),
        )


@dataclass(frozen=True)
class TransferCandidate:
    """One warm-start schedule plus its provenance.

    ``donor`` is the registry entry the schedule was borrowed from;
    ``cross_target`` marks candidates transferred from a *different* hardware
    target (with ``target_distance`` the embedding distance between donor and
    destination device — 0.0 for same-target transfers).
    """

    schedule: Schedule
    donor: RegistryEntry
    target_distance: float = 0.0
    cross_target: bool = False


@dataclass(frozen=True)
class LookupResult:
    """Everything one registry query can answer, in one return type.

    ``entry`` is the exact ``(fingerprint, target)`` hit (or ``None``);
    ``neighbors`` are the ranked same-target relatives as
    ``(embedding distance, entry)`` pairs; ``transfers`` are the ranked
    cross-target donors as ``(target distance, entry)`` pairs.  ``source``
    tags where the best answer came from: ``"exact"``, ``"neighbor"``,
    ``"transfer"`` or ``"miss"``.
    """

    fingerprint: str
    target: str
    entry: Optional[RegistryEntry]
    neighbors: Tuple[Tuple[float, RegistryEntry], ...] = ()
    transfers: Tuple[Tuple[float, RegistryEntry], ...] = ()
    source: str = "miss"

    @property
    def best(self) -> Optional[RegistryEntry]:
        """The single best answer across exact / neighbor / transfer tiers."""
        if self.entry is not None:
            return self.entry
        if self.neighbors:
            return self.neighbors[0][1]
        if self.transfers:
            return self.transfers[0][1]
        return None

    @property
    def provenance(self) -> str:
        """``source`` string of the winning entry (empty on a miss)."""
        best = self.best
        return best.source if best is not None else ""

    def __bool__(self) -> bool:
        return self.source != "miss"


def _reshape_reference(reference: Sequence[int], levels: int) -> List[int]:
    """Re-shape a donor tile-size list to a new tiling depth.

    Innermost (vector / register) tiles carry the transferable structure, so
    surplus *outer* levels are folded together and missing outer levels are
    padded with 1 — the innermost entries always survive verbatim.
    """
    ref = [max(int(v), 1) for v in reference]
    if len(ref) > levels:
        keep = levels - 1
        ref = [product(ref[: len(ref) - keep])] + ref[len(ref) - keep:]
    elif len(ref) < levels:
        ref = [1] * (levels - len(ref)) + ref
    return ref


def _fit_tile_sizes(extent: int, levels: int, reference: Sequence[int]) -> List[int]:
    """Re-fit a reference tile-size list to a new extent.

    Distributes the prime factors of ``extent`` (largest first) over
    ``levels`` slots, greedily assigning each factor to the slot furthest
    below its reference size, so the shape of the borrowed tiling is
    preserved as closely as the new extent's factorisation allows.  The
    result always multiplies to ``extent`` exactly.
    """
    reference = list(reference) + [1] * (levels - len(reference))
    sizes = [1] * levels
    for p in sorted(prime_factors(extent), reverse=True):
        ratios = [reference[i] / sizes[i] for i in range(levels)]
        slot = max(range(levels), key=lambda i: (ratios[i], i))
        sizes[slot] *= p
    assert product(sizes) == extent
    return sizes


class _IndexEntry:
    """Light in-memory index record of one key's best on-disk line.

    Holds everything queries rank on (latency, embedding, has-schedule)
    without the parsed entry body; the body is materialised on demand by a
    ``seek``/``read`` at ``(path, offset, length)``.  ``offset < 0`` marks an
    entry that lives only in memory (in-memory registries, or an append that
    crashed between absorb and write on a dead object).
    """

    __slots__ = (
        "fingerprint",
        "target",
        "latency",
        "has_schedule",
        "embedding",
        "path",
        "offset",
        "length",
    )

    def __init__(
        self,
        fingerprint: str,
        target: str,
        latency: float,
        has_schedule: bool,
        embedding: Tuple[float, ...],
        path: Optional[Path] = None,
        offset: int = -1,
        length: int = 0,
    ):
        self.fingerprint = fingerprint
        self.target = target
        self.latency = latency
        self.has_schedule = has_schedule
        self.embedding = embedding
        self.path = path
        self.offset = offset
        self.length = length

    @property
    def key(self) -> Tuple[str, str]:
        return (self.fingerprint, self.target)


class _FileState:
    """Per shard-file bookkeeping: what has been indexed and how far."""

    __slots__ = ("indexed", "data_bytes", "total_lines", "skipped_lines", "dirty")

    def __init__(self) -> None:
        self.indexed = False
        self.data_bytes = 0
        self.total_lines = 0
        self.skipped_lines = 0
        #: the in-memory index is ahead of the on-disk sidecar
        self.dirty = False


class _TargetMatrix:
    """Contiguous embedding matrix of one target's index entries.

    Rows are sorted by fingerprint so a stable row order doubles as the
    distance tie-break; ``extras`` holds entries without embeddings (they
    only ever match by exact fingerprint).  ``embeddings`` is ``None`` when
    the stored embedding dimensions are inconsistent — queries then fall
    back to the per-entry reference loop (which raises on the mismatch,
    exactly like the pre-vectorised code).
    """

    __slots__ = (
        "rows",
        "extras",
        "keys",
        "fingerprints",
        "embeddings",
        "sched_mask",
        "row_of",
    )

    def __init__(self, entries: Iterable[_IndexEntry]):
        pool = list(entries)
        self.rows = sorted(
            (ie for ie in pool if ie.embedding), key=lambda ie: ie.fingerprint
        )
        self.extras = [ie for ie in pool if not ie.embedding]
        self.keys = [ie.key for ie in self.rows]
        self.fingerprints = [ie.fingerprint for ie in self.rows]
        dims = {len(ie.embedding) for ie in self.rows}
        if len(dims) == 1:
            self.embeddings: Optional[np.ndarray] = np.array(
                [ie.embedding for ie in self.rows], dtype=np.float64
            )
            self.sched_mask: Optional[np.ndarray] = np.fromiter(
                (ie.has_schedule for ie in self.rows),
                dtype=bool,
                count=len(self.rows),
            )
        else:
            self.embeddings = None
            self.sched_mask = None
        self.row_of = {fp: i for i, fp in enumerate(self.fingerprints)}


class ScheduleRegistry:
    """Sharded persistent map (fingerprint, target) → best schedule.

    Parameters
    ----------
    root:
        Directory holding the shard files (created on first write).  ``None``
        keeps the registry purely in memory.
    num_shards:
        Number of JSONL shard files; the shard of an entry is derived from
        its fingerprint prefix, so the mapping is stable across processes.
    strict:
        When true, corrupted lines raise at load time instead of being
        skipped and counted in :attr:`skipped_lines`.  Strict registries
        index every shard eagerly at construction (validation implies
        reading everything anyway).
    max_open_shards:
        Capacity of the LRU cache of open read handles used to materialise
        entries through the shard index.

    Thread safety
    -------------
    One re-entrant mutex guards the index, the best-entry cache, the shard
    handles and the line counters, so :meth:`record` is atomic per entry
    (absorb + append commit together) and concurrent writers — racing
    service drivers, the network front end's worker threads — can never
    interleave shard writes or lose a best-entry update.  Query methods
    operate under the same lock; the lock is re-entrant so
    :meth:`merge`/:meth:`import_file` can call :meth:`record` while holding
    it.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        num_shards: int = 16,
        strict: bool = False,
        max_open_shards: int = 64,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.root = Path(root) if root is not None else None
        self.num_shards = int(num_shards)
        self.strict = bool(strict)
        self._mutex = threading.RLock()
        self.skipped_lines = 0  # guarded-by: _mutex
        self.total_lines = 0  # guarded-by: _mutex
        self.truncated_tails = 0
        self.removed_orphans = 0
        #: authoritative light index: key → best on-disk line
        self._index: Dict[Tuple[str, str], _IndexEntry] = {}  # guarded-by: _mutex
        #: materialised-entry cache over ``_index`` (filled on demand)
        self._best: Dict[Tuple[str, str], RegistryEntry] = {}  # guarded-by: _mutex
        self._files: Dict[Path, _FileState] = {}  # guarded-by: _mutex
        self._targets: set = set()  # guarded-by: _mutex
        self._matrices: Dict[str, _TargetMatrix] = {}  # guarded-by: _mutex
        self._all_indexed = False  # guarded-by: _mutex
        self._native = True  # guarded-by: _mutex
        self._manifest_ok = False  # guarded-by: _mutex
        self._handles: Dict[int, IO[bytes]] = {}  # guarded-by: _mutex
        #: LRU of open read handles; eviction closes the file
        self._read_handles = MemoCache(  # guarded-by: _mutex
            "registry.shard_handles",
            maxsize=max(int(max_open_shards), 1),
            on_evict=lambda fh: fh.close(),
            legacy_bypass=False,
        )
        if self.root is not None and self.root.exists():
            self.removed_orphans = self._remove_orphan_tmps()
            # Torn-tail repair stays eager (it is O(final line) per file):
            # re-opened shards must never append onto a partial line, and
            # crash-recovery counters must be correct at construction.
            for path in sorted(self.root.glob("shard-*.jsonl")):
                if repair_torn_tail(path, label="registry shard"):
                    self.truncated_tails += 1
            self._native, self._manifest_ok = self._detect_layout()
            if self.strict:
                with self._mutex:
                    self._ensure_all_indexed_locked()
        else:
            self._all_indexed = True

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def _shard_of(self, fingerprint: str) -> int:
        # crc32 keeps the shard mapping stable across processes and total
        # over arbitrary (e.g. imported) fingerprint strings.
        return zlib.crc32(fingerprint.encode("utf-8")) % self.num_shards

    def _shard_path(self, shard: int) -> Path:
        assert self.root is not None
        return self.root / f"shard-{shard:02d}.jsonl"

    @staticmethod
    def _sidecar_path(path: Path) -> Path:
        # shard-NN.jsonl → shard-NN.idx.json: the sidecar describes the data
        # *file*, so the name derives from the filename, not the shard map.
        return path.with_name(path.name[: -len(".jsonl")] + ".idx.json")

    def _manifest_path(self) -> Path:
        assert self.root is not None
        return self.root / "registry.json"

    def _detect_layout(self) -> Tuple[bool, bool]:
        """``(native, manifest_ok)`` for the on-disk directory.

        *Native* means every data file is ``shard-i.jsonl`` for ``i`` under
        the current ``num_shards`` **and** the manifest agrees on the shard
        count, so the fingerprint→file mapping holds and shards may load
        lazily.  Anything else (a v1 directory, a different shard count, a
        half-migrated layout) is foreign: correctness first — every file is
        scanned eagerly on first access, exactly like the v1 reader.
        """
        assert self.root is not None
        data_paths = sorted(self.root.glob("shard-*.jsonl"))
        if not data_paths:
            return True, False
        try:
            manifest = json.loads(self._manifest_path().read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False, False
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != REGISTRY_MANIFEST_FORMAT
        ):
            return False, False
        try:
            if int(manifest["num_shards"]) != self.num_shards:
                return False, False
        except (KeyError, TypeError, ValueError):
            return False, False
        for path in data_paths:
            try:
                shard = int(path.name[len("shard-"): -len(".jsonl")])
            except ValueError:
                return False, False
            if not 0 <= shard < self.num_shards:
                return False, False
        return True, True

    def _write_manifest_locked(self) -> None:
        manifest = self._manifest_path()
        tmp = manifest.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {"format": REGISTRY_MANIFEST_FORMAT, "num_shards": self.num_shards}
            ),
            encoding="utf-8",
        )
        os.replace(tmp, manifest)
        self._manifest_ok = True

    def _remove_orphan_tmps(self) -> int:
        """Delete half-written temp files left behind by a crash.

        A compaction (or sidecar/manifest write) killed before its atomic
        ``os.replace`` leaves a ``*.tmp`` next to the intact file; a crash
        between a data-file unlink and its sidecar unlink leaves a sidecar
        with no data file.  Neither holds anything the surviving files do
        not, so dropping them is the whole recovery — but they must be
        dropped, or crashed maintenance accumulates garbage files forever.
        """
        assert self.root is not None
        removed = 0
        for pattern in ("shard-*.jsonl.tmp", "shard-*.idx.json.tmp", "registry.json.tmp"):
            for tmp in self.root.glob(pattern):
                tmp.unlink()
                removed += 1
        for sidecar in self.root.glob("shard-*.idx.json"):
            data = sidecar.with_name(sidecar.name[: -len(".idx.json")] + ".jsonl")
            if not data.exists():
                sidecar.unlink()
                removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def _ensure_key_indexed_locked(self, fingerprint: str) -> None:
        """Index exactly the shard ``fingerprint`` hashes to (lazy path)."""
        if self._all_indexed or self.root is None:
            return
        if not self._native:
            self._ensure_all_indexed_locked()
            return
        self._ensure_shard_indexed_locked(self._shard_of(fingerprint))

    def _ensure_shard_indexed_locked(self, shard: int) -> None:
        path = self._shard_path(shard)
        state = self._files.get(path)
        if state is not None and state.indexed:
            return
        if not path.exists():
            state = _FileState()
            state.indexed = True
            self._files[path] = state
            return
        self._index_file_locked(path)

    def _ensure_all_indexed_locked(self) -> None:
        if self._all_indexed:
            return
        if self.root is None or not self.root.exists():
            self._all_indexed = True
            return
        if self._native:
            for shard in range(self.num_shards):
                self._ensure_shard_indexed_locked(shard)
        else:
            # Glob rather than range(num_shards): a registry written with a
            # different shard count must still load every entry.
            for path in sorted(self.root.glob("shard-*.jsonl")):
                state = self._files.get(path)
                if state is None or not state.indexed:
                    self._index_file_locked(path)
        self._all_indexed = True

    def _index_file_locked(self, path: Path) -> None:
        began = time.perf_counter()
        state = self._files.get(path)
        if state is None:
            state = _FileState()
        if not self._load_sidecar_locked(path, state):
            scan_began = time.perf_counter()
            data = path.read_bytes()
            self._scan_lines_locked(path, state, data, base_offset=0, lineno_base=0)
            state.data_bytes = len(data)
            if self._native:
                # a scanned native shard is upgrade-eligible: close() will
                # write its sidecar so the next open loads lazily.
                state.dirty = True
            _SHARD_LOAD.observe(time.perf_counter() - scan_began)
        state.indexed = True
        self._files[path] = state
        _INDEX_LOAD.observe(time.perf_counter() - began)

    def _load_sidecar_locked(self, path: Path, state: _FileState) -> bool:
        """Ingest a v2 sidecar; False → caller must scan the data file.

        The sidecar is only trusted when it provably matches the data file:
        its ``data_bytes`` must not exceed the file, the indexed region must
        end on a line boundary, and the checksummed file prefix must match.
        Lines appended after the sidecar was written (``data_bytes`` …
        end-of-file) are absorbed by scanning just that tail.
        """
        sidecar = self._sidecar_path(path)
        try:
            payload = json.loads(sidecar.read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        if not isinstance(payload, dict) or payload.get("format") != SHARD_INDEX_FORMAT:
            return False
        try:
            data_bytes = int(payload["data_bytes"])
            total_lines = int(payload["total_lines"])
            skipped_lines = int(payload["skipped_lines"])
            prefix_len = int(payload["prefix_len"])
            prefix_crc = int(payload["prefix_crc"])
            parsed = [
                _IndexEntry(
                    fingerprint=str(item[0]),
                    target=sys.intern(str(item[1])),
                    latency=float(item[2]),
                    has_schedule=bool(item[5]),
                    embedding=tuple(float(v) for v in item[6]),
                    path=path,
                    offset=int(item[3]),
                    length=int(item[4]),
                )
                for item in payload["entries"]
            ]
        except (IndexError, KeyError, TypeError, ValueError):
            return False
        if data_bytes < 0 or total_lines < 0 or skipped_lines < 0:
            return False
        try:
            with path.open("rb") as fh:
                size = fh.seek(0, os.SEEK_END)
                if data_bytes > size:
                    return False  # file shrank (tail repair): index is stale
                if data_bytes:
                    fh.seek(data_bytes - 1)
                    if fh.read(1) != b"\n":
                        return False  # indexed region no longer line-aligned
                    fh.seek(0)
                    if zlib.crc32(fh.read(min(prefix_len, data_bytes))) != prefix_crc:
                        return False  # file was rewritten under the sidecar
                tail = b""
                if size > data_bytes:
                    fh.seek(data_bytes)
                    tail = fh.read()
        except OSError:
            return False
        for ie in parsed:
            self._absorb_index_locked(ie, None)
        state.data_bytes = data_bytes
        state.total_lines = total_lines
        state.skipped_lines = skipped_lines
        self.total_lines += total_lines
        self.skipped_lines += skipped_lines
        _INDEX_LOADS.inc()
        if tail:
            self._scan_lines_locked(
                path, state, tail, base_offset=data_bytes, lineno_base=total_lines
            )
            state.data_bytes = data_bytes + len(tail)
            state.dirty = True
        return True

    def _scan_lines_locked(
        self,
        path: Path,
        state: _FileState,
        blob: bytes,
        base_offset: int,
        lineno_base: int,
    ) -> None:
        """Parse raw shard bytes into the index, tracking line offsets."""
        pos = base_offset
        for lineno, raw in enumerate(blob.splitlines(keepends=True), start=lineno_base + 1):
            offset = pos
            pos += len(raw)
            text = raw.strip()
            if not text:
                continue
            state.total_lines += 1
            self.total_lines += 1
            try:
                entry = RegistryEntry.from_dict(json.loads(text))
            except (ValueError, KeyError, TypeError) as exc:
                if self.strict:
                    raise ValueError(
                        f"corrupted registry entry at {path}:{lineno}: {exc}"
                    ) from exc
                state.skipped_lines += 1
                self.skipped_lines += 1
                continue
            self._absorb_index_locked(
                _IndexEntry(
                    fingerprint=entry.fingerprint,
                    target=sys.intern(entry.target),
                    latency=entry.latency,
                    has_schedule=entry.schedule is not None,
                    embedding=entry.embedding,
                    path=path,
                    offset=offset,
                    length=len(raw),
                ),
                None,
            )

    def _absorb_index_locked(
        self, ie: _IndexEntry, entry: Optional[RegistryEntry]
    ) -> bool:
        """Fold an index entry into the best map (no disk write).

        ``entry`` carries the already-parsed body when the caller has it
        (a live :meth:`record`); scans pass ``None`` so a million-entry load
        indexes light records only and bodies stay on disk.
        """
        key = ie.key
        current = self._index.get(key)
        if current is not None and ie.latency >= current.latency:
            return False
        self._index[key] = ie
        self._targets.add(ie.target)
        self._matrices.pop(ie.target, None)
        if entry is not None:
            self._best[key] = entry
        else:
            # drop a stale materialised body; re-read on next lookup
            self._best.pop(key, None)
        return True

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def _open_read_handle(self, path: Path) -> IO[bytes]:
        _SHARD_OPENS.inc()
        return path.open("rb")

    def _read_span_locked(self, path: Path, offset: int, length: int) -> bytes:
        fh = self._read_handles.get_or_create(
            str(path), lambda: self._open_read_handle(path)
        )
        fh.seek(offset)
        return fh.read(length)

    def _materialise_locked(self, key: Tuple[str, str]) -> Optional[RegistryEntry]:
        entry = self._best.get(key)
        if entry is not None:
            return entry
        ie = self._index.get(key)
        if ie is None or ie.path is None or ie.offset < 0:
            return None
        raw = self._read_span_locked(ie.path, ie.offset, ie.length)
        entry = RegistryEntry.from_dict(json.loads(raw))
        self._best[key] = entry
        _INDEX_HITS.inc()
        return entry

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def _append_locked(self, entry: RegistryEntry) -> None:
        # Caller holds _mutex: the get-or-open handle dance and the
        # write+flush+count must not interleave with another appender.
        if self.root is None:
            return
        began = time.perf_counter()
        shard = self._shard_of(entry.fingerprint)
        fh = self._handles.get(shard)
        if fh is None:
            self.root.mkdir(parents=True, exist_ok=True)
            if self._native and not self._manifest_ok:
                self._write_manifest_locked()
            fh = self._shard_path(shard).open("ab")
            self._handles[shard] = fh
        line = json.dumps(entry.to_dict()) + "\n"
        data = line.encode("utf-8")
        offset = fh.seek(0, os.SEEK_END)
        fired = poll_fault(
            "registry.append", detail=f"shard-{shard:02d}:{entry.fingerprint}"
        )
        if fired is not None:
            if fired.spec.kind == "torn_write":
                fh.write(fired.torn_prefix(line).encode("utf-8"))
                fh.flush()
            fired.crash(f"died appending {entry.fingerprint!r} to shard {shard}")
        fh.write(data)
        fh.flush()
        path = self._shard_path(shard)
        ie = self._index.get(entry.key)
        if ie is not None:
            ie.path = path
            ie.offset = offset
            ie.length = len(data)
        state = self._files.get(path)
        if state is None:
            state = _FileState()
            state.indexed = True
            self._files[path] = state
        state.total_lines += 1
        state.data_bytes = offset + len(data)
        state.dirty = True
        self.total_lines += 1
        _APPEND.observe(time.perf_counter() - began)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, entry: RegistryEntry) -> bool:
        """Record an entry; returns True if it improved (or created) its key.

        Only improvements are appended to disk, so shard files hold the
        monotone history of best schedules per key.
        """
        if not entry.fingerprint:
            raise ValueError("registry entries need a non-empty fingerprint")
        # Absorb + append must commit together: a second writer slipping in
        # between them could absorb a worse entry over the unappended best,
        # or append a line the best map never saw.  The key's shard is
        # indexed first so the on-disk best takes part in the comparison.
        with self._mutex:
            self._ensure_key_indexed_locked(entry.fingerprint)
            accepted = self._absorb_index_locked(
                _IndexEntry(
                    fingerprint=entry.fingerprint,
                    target=sys.intern(entry.target),
                    latency=entry.latency,
                    has_schedule=entry.schedule is not None,
                    embedding=entry.embedding,
                ),
                entry,
            )
            if accepted:
                self._append_locked(entry)
        return accepted

    def record_result(
        self, dag: ComputeDAG, target, result, source: str = "", donor_target: str = ""
    ) -> bool:
        """Record a :class:`~repro.core.tuner.TuningResult` for a DAG.

        ``target`` is a :class:`~repro.hardware.target.HardwareTarget` (or its
        name).  ``donor_target`` records cross-target transfer provenance:
        the target(s) whose registered schedules warm-started this run.
        Results without a schedule or a finite latency are ignored.
        """
        from repro.records import schedule_to_dict  # local import: records imports us

        if result.best_schedule is None or not (result.best_latency < float("inf")):
            return False
        target_name = target if isinstance(target, str) else target.name
        return self.record(
            RegistryEntry(
                fingerprint=structural_fingerprint(dag),
                target=target_name,
                workload=dag.name,
                latency=float(result.best_latency),
                throughput=float(result.best_throughput),
                trials=int(result.trials_used),
                scheduler=result.scheduler,
                schedule=schedule_to_dict(result.best_schedule),
                embedding=tuple(workload_embedding(dag).tolist()),
                source=source,
                donor_target=donor_target,
            )
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        dag: Union[ComputeDAG, str],
        target,
        *,
        k: int = 1,
        cross_target: bool = False,
        catalog=None,
    ) -> LookupResult:
        """One-stop registry query: exact hit, neighbours and transfers.

        ``dag`` is a :class:`~repro.tensor.dag.ComputeDAG` or a raw
        fingerprint string (fingerprints answer the exact tier only — there
        is no embedding to rank neighbours with).  ``k`` bounds the ranked
        same-target ``neighbors`` (``k=0`` skips the similarity search: the
        cheapest exact-only probe).  ``cross_target=True`` additionally
        ranks transfer donors from other targets (requires a
        :class:`~repro.hardware.target.HardwareTarget`; donor targets are
        resolved through ``catalog``, default the built-in one).

        The exact tier indexes only the one shard the key hashes to; the
        similarity tiers index everything (they must rank all candidates).
        """
        target_name = target if isinstance(target, str) else target.name
        if isinstance(dag, ComputeDAG):
            fingerprint = structural_fingerprint(dag)
            query_dag: Optional[ComputeDAG] = dag
        else:
            fingerprint = str(dag)
            query_dag = None
        entry = self._lookup_exact(fingerprint, target_name)
        neighbors: Tuple[Tuple[float, RegistryEntry], ...] = ()
        transfers: Tuple[Tuple[float, RegistryEntry], ...] = ()
        if query_dag is not None and k > 0:
            neighbors = tuple(
                self._nearest_impl(query_dag, target_name, k=k, exclude_exact=True)
            )
        if query_dag is not None and cross_target and isinstance(target, HardwareTarget):
            transfers = tuple(
                self._cross_target_impl(query_dag, target, catalog=catalog, k=max(k, 1))
            )
        if entry is not None:
            source = "exact"
        elif neighbors:
            source = "neighbor"
        elif transfers:
            source = "transfer"
        else:
            source = "miss"
        return LookupResult(
            fingerprint=fingerprint,
            target=target_name,
            entry=entry,
            neighbors=neighbors,
            transfers=transfers,
            source=source,
        )

    def _lookup_exact(
        self, fingerprint: str, target_name: str
    ) -> Optional[RegistryEntry]:
        with self._mutex:
            self._ensure_key_indexed_locked(fingerprint)
            entry = self._materialise_locked((fingerprint, target_name))
        _LOOKUPS.inc()
        (_HITS if entry is not None else _MISSES).inc()
        return entry

    def get(self, fingerprint: str, target) -> Optional[RegistryEntry]:
        """Deprecated: use ``lookup(fingerprint, target, k=0).entry``."""
        warnings.warn(
            "ScheduleRegistry.get() is deprecated; use "
            "lookup(fingerprint, target, k=0).entry",
            DeprecationWarning,
            stacklevel=2,
        )
        target_name = target if isinstance(target, str) else target.name
        return self._lookup_exact(fingerprint, target_name)

    def entries(self) -> List[RegistryEntry]:
        """Current best entry of every (fingerprint, target) key.

        Materialises every entry body — a full-store copy.  Maintenance
        (merge / export / compaction checks) wants exactly that; hot query
        paths should go through :meth:`lookup` instead.
        """
        with self._mutex:
            self._ensure_all_indexed_locked()
            return [self._materialise_locked(key) for key in sorted(self._index)]

    def nearest(
        self,
        dag: ComputeDAG,
        target,
        k: int = 1,
        exclude_exact: bool = True,
    ) -> List[Tuple[float, RegistryEntry]]:
        """Deprecated: use ``lookup(dag, target, k=k).neighbors``."""
        warnings.warn(
            "ScheduleRegistry.nearest() is deprecated; use "
            "lookup(dag, target, k=k).neighbors",
            DeprecationWarning,
            stacklevel=2,
        )
        target_name = target if isinstance(target, str) else target.name
        return self._nearest_impl(dag, target_name, k=k, exclude_exact=exclude_exact)

    def _nearest_impl(
        self, dag: ComputeDAG, target_name: str, k: int, exclude_exact: bool = True
    ) -> List[Tuple[float, RegistryEntry]]:
        if k <= 0:
            return []
        fingerprint = structural_fingerprint(dag)
        query = workload_embedding(dag)
        with self._mutex:
            self._ensure_all_indexed_locked()
            return self._nearest_locked(fingerprint, query, target_name, k, exclude_exact)

    def _nearest_locked(
        self,
        fingerprint: str,
        query: np.ndarray,
        target_name: str,
        k: int,
        exclude_exact: bool,
    ) -> List[Tuple[float, RegistryEntry]]:
        matrix = self._matrix_locked(target_name)
        if (
            hot_path_enabled()
            and matrix.embeddings is not None
            and (len(matrix.rows) == 0 or matrix.embeddings.shape[1] == len(query))
        ):
            return self._nearest_vector_locked(
                matrix, fingerprint, query, k, exclude_exact
            )
        # Reference path: per-entry loop, kept for legacy_hot_path() A/B
        # runs and for stores whose embedding dimensions are inconsistent
        # (embedding_distance raises on the mismatch, as it always did).
        scored: List[Tuple[float, _IndexEntry]] = []
        for ie in matrix.rows:
            if exclude_exact and ie.fingerprint == fingerprint:
                continue
            scored.append((embedding_distance(query, ie.embedding), ie))
        scored.sort(key=lambda pair: (pair[0], pair[1].fingerprint))
        return [
            (dist, self._materialise_locked(ie.key)) for dist, ie in scored[: max(k, 0)]
        ]

    def _nearest_vector_locked(
        self,
        matrix: _TargetMatrix,
        fingerprint: str,
        query: np.ndarray,
        k: int,
        exclude_exact: bool,
    ) -> List[Tuple[float, RegistryEntry]]:
        n = len(matrix.rows)
        if n == 0:
            return []
        emb = matrix.embeddings
        assert emb is not None
        diff = emb - np.asarray(query, dtype=np.float64)
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        exact_row = matrix.row_of.get(fingerprint) if exclude_exact else None
        over = min(k + (1 if exact_row is not None else 0), n)
        if over < n:
            cand = np.argpartition(dist, over - 1)[:over]
        else:
            cand = np.arange(n)
        # primary: distance; tie-break: row order == fingerprint order,
        # reproducing the reference sort key (distance, fingerprint).
        order = np.lexsort((cand, dist[cand]))
        out: List[Tuple[float, RegistryEntry]] = []
        for row in cand[order]:
            if exact_row is not None and row == exact_row:
                continue
            entry = self._materialise_locked(matrix.keys[row])
            if entry is None:
                continue
            out.append((float(dist[row]), entry))
            if len(out) == k:
                break
        return out

    def cross_target_candidates(
        self,
        dag: ComputeDAG,
        target: HardwareTarget,
        catalog=None,
        k: int = 4,
    ) -> List[Tuple[float, RegistryEntry]]:
        """Deprecated: use ``lookup(dag, target, cross_target=True).transfers``."""
        warnings.warn(
            "ScheduleRegistry.cross_target_candidates() is deprecated; use "
            "lookup(dag, target, cross_target=True, catalog=...).transfers",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._cross_target_impl(dag, target, catalog=catalog, k=k)

    def _cross_target_impl(
        self,
        dag: ComputeDAG,
        target: HardwareTarget,
        catalog=None,
        k: int = 4,
    ) -> List[Tuple[float, RegistryEntry]]:
        """Donor entries from *other* targets, best transfer prospects first.

        Candidates are ranked by the sum of workload embedding distance
        (0 for the exact fingerprint) and donor↔destination
        :func:`~repro.hardware.catalog.target_distance`, so the exact workload
        on a cousin device outranks a vaguely similar workload on a remote
        one, and the CPU/GPU kind gap keeps same-kind donors first.  Donor
        target names are resolved to embeddings through ``catalog`` (the
        built-in :func:`~repro.hardware.catalog.default_catalog` when
        ``None``); entries on unknown targets are skipped.

        Returns ``(target distance, entry)`` pairs.
        """
        if not isinstance(target, HardwareTarget) or k <= 0:
            return []
        catalog = catalog if catalog is not None else default_catalog()
        fingerprint = structural_fingerprint(dag)
        query = workload_embedding(dag)
        with self._mutex:
            self._ensure_all_indexed_locked()
            return self._cross_target_locked(fingerprint, query, target, catalog, k)

    def _cross_target_locked(
        self,
        fingerprint: str,
        query: np.ndarray,
        target: HardwareTarget,
        catalog,
        k: int,
    ) -> List[Tuple[float, RegistryEntry]]:
        q = np.asarray(query, dtype=np.float64)
        # (score, fingerprint, target, t_dist, key) — sorted on the first
        # three, exactly the pre-vectorised tie-break.
        scored: List[Tuple[float, str, str, float, Tuple[str, str]]] = []
        for target_name in sorted(self._targets):
            if target_name == target.name:
                continue
            donor = catalog.get_optional(target_name)
            t_dist = target_distance(target, donor) if donor is not None else -1.0
            if t_dist < 0:
                continue
            matrix = self._matrix_locked(target_name)
            if (
                hot_path_enabled()
                and matrix.embeddings is not None
                and (len(matrix.rows) == 0 or matrix.embeddings.shape[1] == q.shape[0])
            ):
                n = len(matrix.rows)
                if n:
                    assert matrix.sched_mask is not None
                    diff = matrix.embeddings - q
                    score = np.sqrt(np.einsum("ij,ij->i", diff, diff)) + t_dist
                    row = matrix.row_of.get(fingerprint)
                    if row is not None:
                        score[row] = t_dist  # exact workload: w_dist == 0
                    cand = np.nonzero(matrix.sched_mask)[0]
                    if cand.size:
                        take = min(k, int(cand.size))
                        sub = score[cand]
                        if take < cand.size:
                            pick = np.argpartition(sub, take - 1)[:take]
                        else:
                            pick = np.arange(cand.size)
                        order = np.lexsort((cand[pick], sub[pick]))
                        for r in cand[pick][order]:
                            scored.append(
                                (
                                    float(score[r]),
                                    matrix.fingerprints[r],
                                    target_name,
                                    t_dist,
                                    matrix.keys[r],
                                )
                            )
                for ie in matrix.extras:
                    # no embedding: only the exact workload can transfer
                    if ie.has_schedule and ie.fingerprint == fingerprint:
                        scored.append(
                            (t_dist, ie.fingerprint, target_name, t_dist, ie.key)
                        )
            else:
                for ie in matrix.rows + matrix.extras:
                    if not ie.has_schedule:
                        continue
                    if ie.fingerprint == fingerprint:
                        w_dist = 0.0
                    elif ie.embedding:
                        w_dist = embedding_distance(query, ie.embedding)
                    else:
                        continue
                    scored.append(
                        (w_dist + t_dist, ie.fingerprint, target_name, t_dist, ie.key)
                    )
        scored.sort(key=lambda item: (item[0], item[1], item[2]))
        out: List[Tuple[float, RegistryEntry]] = []
        for _score, _fp, _tname, t_dist, key in scored[: max(k, 0)]:
            entry = self._materialise_locked(key)
            if entry is not None:
                out.append((t_dist, entry))
        return out

    def _matrix_locked(self, target_name: str) -> _TargetMatrix:
        matrix = self._matrices.get(target_name)
        if matrix is None:
            matrix = _TargetMatrix(
                ie for ie in self._index.values() if ie.target == target_name
            )
            self._matrices[target_name] = matrix
        return matrix

    def stats(self) -> dict:
        """Aggregate registry statistics (entries, shards, stale lines, ...)."""
        shard_files = 0
        index_sidecars = 0
        if self.root is not None and self.root.exists():
            shard_files = len(list(self.root.glob("shard-*.jsonl")))
            index_sidecars = len(list(self.root.glob("shard-*.idx.json")))
        with self._mutex:
            self._ensure_all_indexed_locked()
            return {
                "entries": len(self._index),
                "workloads": len({fp for fp, _t in self._index}),
                "targets": sorted(self._targets),
                "shard_files": shard_files,
                "index_sidecars": index_sidecars,
                "total_lines": self.total_lines,
                "stale_lines": max(
                    self.total_lines - self.skipped_lines - len(self._index), 0
                ),
                "skipped_lines": self.skipped_lines,
                "truncated_tails": self.truncated_tails,
                "removed_orphans": self.removed_orphans,
                "open_read_handles": len(self._read_handles),
            }

    @property
    def indexed_shards(self) -> int:
        """How many shard files have been indexed so far (lazy-load probe)."""
        with self._mutex:
            return sum(1 for state in self._files.values() if state.indexed)

    def __len__(self) -> int:
        with self._mutex:
            self._ensure_all_indexed_locked()
            return len(self._index)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._mutex:
            self._ensure_key_indexed_locked(key[0])
            return key in self._index

    # ------------------------------------------------------------------ #
    # warm starts
    # ------------------------------------------------------------------ #
    def warm_start_transfers(
        self,
        dag: ComputeDAG,
        target,
        max_candidates: int = 4,
        catalog=None,
        cross_target: bool = True,
    ) -> List[TransferCandidate]:
        """Warm-start schedules for a DAG on one target, with provenance.

        An exact structural hit contributes its stored schedule verbatim
        (restored against ``dag``); nearest registered relatives contribute
        schedules whose tile sizes are re-fitted to the new extents.  When the
        destination target still has fewer than ``max_candidates`` donors, the
        lookup falls back across targets and re-fits the borrowed schedules to
        the destination device.  Candidates arrive best-first: exact hit,
        same-target relatives, cross-target donors.
        """
        from repro.records import schedule_from_dict  # records imports us

        _TRANSFER_LOOKUPS.inc()
        target_name = target if isinstance(target, str) else target.name
        out: List[TransferCandidate] = []
        seen: set = set()

        def push(schedule: Schedule, donor: RegistryEntry, t_dist: float, cross: bool) -> None:
            key = schedule.signature()
            if key not in seen:
                seen.add(key)
                out.append(TransferCandidate(schedule, donor, t_dist, cross))

        exact = self._lookup_exact(structural_fingerprint(dag), target_name)
        if exact is not None and exact.schedule is not None:
            try:
                push(
                    schedule_from_dict(exact.schedule, dag, check_workload=False),
                    exact, 0.0, False,
                )
            except (KeyError, TypeError, ValueError):
                # Malformed stored schedule (older format / torn write):
                # skip it, matching the registry's corruption tolerance.
                pass
        for _distance, entry in self._nearest_impl(dag, target_name, k=max_candidates):
            if len(out) >= max_candidates:
                break
            if entry.schedule is None:
                continue
            adapted = self._adapt_schedule(entry.schedule, dag)
            if adapted is not None:
                push(adapted, entry, 0.0, False)
        if cross_target and len(out) < max_candidates and isinstance(target, HardwareTarget):
            remaining = max_candidates - len(out)
            donors: List[Tuple[RegistryEntry, float, List[Schedule]]] = []
            for t_dist, entry in self._cross_target_impl(
                dag, target, catalog=catalog, k=remaining
            ):
                adapted = self._adapt_schedule_to_target(entry.schedule, dag, target)
                if adapted is not None:
                    donors.append(
                        (entry, t_dist, self._target_variants(adapted, remaining))
                    )
            # Round-robin across donors: every donor's straight adaptation is
            # proposed before any donor's ensemble variants, so one donor
            # cannot crowd the others out of the measurement budget.
            level = 0
            while len(out) < max_candidates and any(
                level < len(ensemble) for _e, _d, ensemble in donors
            ):
                for entry, t_dist, ensemble in donors:
                    if level < len(ensemble) and len(out) < max_candidates:
                        push(ensemble[level], entry, t_dist, True)
                level += 1
        out = out[:max_candidates]
        _TRANSFER_CANDIDATES.inc(len(out))
        return out

    def warm_start_schedules(
        self,
        dag: ComputeDAG,
        target,
        max_candidates: int = 4,
        catalog=None,
        cross_target: bool = True,
    ) -> List[Schedule]:
        """Ready-to-measure warm-start schedules (see :meth:`warm_start_transfers`)."""
        return [
            candidate.schedule
            for candidate in self.warm_start_transfers(
                dag, target, max_candidates=max_candidates,
                catalog=catalog, cross_target=cross_target,
            )
        ]

    @staticmethod
    def _adapt_schedule(data: dict, dag: ComputeDAG) -> Optional[Schedule]:
        """Transfer a stored schedule onto a structurally *similar* DAG.

        Regenerates the sketch family of ``dag`` at the stored tiling depths,
        picks the stored sketch rule if it exists, and re-fits every tile-size
        list to the new iterator extents; knob indices are clamped to the new
        valid ranges.  Returns ``None`` when no sketch of ``dag`` matches the
        stored rule (e.g. a fusion sketch borrowed for a fusion-free DAG).
        """
        try:
            sketches = cached_sketches(
                dag,
                spatial_levels=int(data["spatial_levels"]),
                reduction_levels=int(data["reduction_levels"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        matches = [s for s in sketches if s.key == data.get("sketch_key")]
        if not matches:
            return None
        sketch = matches[0]
        try:
            reference = [list(map(int, sizes)) for sizes in data.get("tile_sizes", [])]
            tile_sizes: List[List[int]] = []
            for idx, (_name, _kind, extent, levels) in enumerate(sketch.tiled_iters):
                ref = reference[idx] if idx < len(reference) else []
                tile_sizes.append(_fit_tile_sizes(int(extent), int(levels), ref))
            n_candidates = len(dag.compute_at_candidates())
            max_parallel = len(dag.main_stage.spatial_iters)
            unroll_depths = tuple(int(d) for d in data.get("unroll_depths", (0,)))
            return Schedule(
                sketch=sketch,
                tile_sizes=tile_sizes,
                compute_at_index=min(int(data.get("compute_at_index", 0)), n_candidates - 1),
                num_parallel=min(int(data.get("num_parallel", 1)), max_parallel),
                unroll_index=min(
                    int(data.get("unroll_index", 0)), len(unroll_depths) - 1
                ),
                unroll_depths=unroll_depths,
            )
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def _target_variants(schedule: Schedule, limit: int) -> List[Schedule]:
        """Small ensemble of near variants of one transferred schedule.

        Cross-target transfer is uncertain — the donor's optimal unroll depth
        and parallelism rarely survive a change of vector width, cache sizes
        or core count exactly — so the straight adaptation is proposed
        together with its unroll and parallelism neighbours and the
        destination's measurements arbitrate.  The straight adaptation is
        always first.
        """
        out = [schedule]
        for index in range(len(schedule.unroll_depths)):
            if index != schedule.unroll_index:
                variant = schedule.copy()
                variant.unroll_index = index
                out.append(variant)
        if schedule.num_parallel > 1:
            variant = schedule.copy()
            variant.num_parallel = schedule.num_parallel - 1
            out.append(variant)
        if schedule.num_parallel < schedule.max_parallel:
            variant = schedule.copy()
            variant.num_parallel = schedule.num_parallel + 1
            out.append(variant)
        return out[: max(limit, 0)]

    @staticmethod
    def _adapt_schedule_to_target(
        data: dict, dag: ComputeDAG, target: HardwareTarget
    ) -> Optional[Schedule]:
        """Transfer a stored schedule onto a *different* hardware target.

        Unlike :meth:`_adapt_schedule` (same target, similar workload), the
        donor's tiling depths, vector width, cache capacities and unroll
        candidates may all differ from the destination's.  The sketch family
        is regenerated at the destination's tiling depths; each donor
        tile-size list is re-shaped to the new depth (innermost tiles
        preserved), the innermost spatial tile is rounded to a multiple of
        the destination ``vector_width``, the register/L1 working set is
        shrunk until it fits ``l1_bytes``, and the unroll depth is mapped to
        the nearest destination candidate.  Returns ``None`` when no sketch
        of ``dag`` at the destination depths matches the stored rule.
        """
        try:
            sketches = cached_sketches(
                dag,
                spatial_levels=target.sketch_spatial_levels,
                reduction_levels=target.sketch_reduction_levels,
            )
        except (TypeError, ValueError):
            return None
        matches = [s for s in sketches if s.key == data.get("sketch_key")]
        if not matches:
            return None
        sketch = matches[0]
        try:
            reference = [list(map(int, sizes)) for sizes in data.get("tile_sizes", [])]
            refs: List[List[int]] = []
            for idx, (_name, _kind, _extent, levels) in enumerate(sketch.tiled_iters):
                ref = reference[idx] if idx < len(reference) else []
                refs.append(_reshape_reference(ref, levels))

            spatial_idx = [
                i for i, (_n, kind, _e, _l) in enumerate(sketch.tiled_iters)
                if kind == "spatial"
            ]
            reduction_idx = [
                i for i, (_n, kind, _e, _l) in enumerate(sketch.tiled_iters)
                if kind == "reduction"
            ]
            vw = target.vector_width
            if spatial_idx:
                # The innermost spatial tile is the vectorised axis: round the
                # donor's size to a whole number of destination SIMD lanes.
                vec = refs[spatial_idx[-1]]
                vec[-1] = max(vw, vw * max(1, round(vec[-1] / vw)))
            # Shrink the register/L1 tile until it fits the destination cache:
            # the footprint is the innermost spatial tile volume streamed over
            # the innermost reduction tile (cf. the simulator's cache model).
            def l1_footprint() -> float:
                sp = product([refs[i][-1] for i in spatial_idx]) if spatial_idx else 1
                red = product([refs[i][-1] for i in reduction_idx]) if reduction_idx else 1
                return DTYPE_BYTES * sp * max(red, 1)

            while l1_footprint() > target.l1_bytes:
                shrinkable = [
                    i for i in spatial_idx + reduction_idx
                    if refs[i][-1] > (vw if spatial_idx and i == spatial_idx[-1] else 1)
                ]
                if not shrinkable:
                    break
                largest = max(shrinkable, key=lambda i: refs[i][-1])
                value = refs[largest][-1] // 2
                if spatial_idx and largest == spatial_idx[-1]:
                    # The vectorised axis must stay a whole number of lanes.
                    value = max(vw * (value // vw), vw)
                refs[largest][-1] = max(value, 1)

            tile_sizes = [
                _fit_tile_sizes(int(extent), int(levels), refs[idx])
                for idx, (_name, _kind, extent, levels) in enumerate(sketch.tiled_iters)
            ]

            donor_depths = [int(d) for d in data.get("unroll_depths", (0,))] or [0]
            donor_index = min(int(data.get("unroll_index", 0)), len(donor_depths) - 1)
            donor_depth = donor_depths[max(donor_index, 0)]
            depths = target.unroll_depths
            unroll_index = min(
                range(len(depths)), key=lambda i: (abs(depths[i] - donor_depth), i)
            )

            n_candidates = len(dag.compute_at_candidates())
            max_parallel = len(dag.main_stage.spatial_iters)
            return Schedule(
                sketch=sketch,
                tile_sizes=tile_sizes,
                compute_at_index=min(int(data.get("compute_at_index", 0)), n_candidates - 1),
                num_parallel=min(int(data.get("num_parallel", 1)), max_parallel),
                unroll_index=unroll_index,
                unroll_depths=tuple(depths),
            )
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------ #
    # maintenance: merge / import / export / compact
    # ------------------------------------------------------------------ #
    def merge(self, other: "ScheduleRegistry") -> int:
        """Fold another registry's best entries into this one.

        Returns the number of entries that improved (or created) a key.
        """
        return sum(1 for entry in other.entries() if self.record(entry))

    def export_file(self, path: Union[str, Path]) -> Path:
        """Write the current best entries to one portable JSONL file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for entry in self.entries():
                fh.write(json.dumps(entry.to_dict()) + "\n")
        os.replace(tmp, path)
        return path

    def import_file(self, path: Union[str, Path], source: str = "") -> int:
        """Import entries from a JSONL export; returns how many improved.

        Corrupted lines follow the registry's ``strict`` policy.  ``source``
        overrides the provenance of imported entries when non-empty.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"registry export {path} does not exist")
        accepted = 0
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = RegistryEntry.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError) as exc:
                if self.strict:
                    raise ValueError(
                        f"corrupted registry entry at {path}:{lineno}: {exc}"
                    ) from exc
                with self._mutex:
                    self.skipped_lines += 1
                continue
            if source:
                entry = replace(entry, source=source)
            if self.record(entry):
                accepted += 1
        return accepted

    def compact(self) -> int:
        """Rewrite every shard with only the current best entry per key.

        Streams verbatim line bytes from the old files into the new ones
        (no shard is ever held in memory), replaces each data file
        atomically (temp file + ``os.replace``), then writes fresh v2 index
        sidecars and the layout manifest — so a crash mid-compaction leaves
        either the old or the new shard, never a torn one, and a stale
        sidecar is detected and rescanned on the next open.  Returns the
        number of stale lines removed.
        """
        if self.root is None:
            return 0
        began = time.perf_counter()
        with self._mutex:
            self._ensure_all_indexed_locked()
            with obs_span("registry.compact", entries=len(self._index)) as compact_span:
                removed = self._compact_inner_locked()
                compact_span.annotate(removed=removed)
        _COMPACT.observe(time.perf_counter() - began)
        return removed

    def _entry_line_locked(self, ie: _IndexEntry) -> bytes:
        """The verbatim line bytes of one index entry (newline-terminated)."""
        if ie.path is not None and ie.offset >= 0:
            raw = self._read_span_locked(ie.path, ie.offset, ie.length)
            if not raw.endswith(b"\n"):
                raw += b"\n"
            return raw
        entry = self._best.get(ie.key)
        if entry is None:
            raise RuntimeError(f"registry index entry {ie.key!r} has no backing line")
        return (json.dumps(entry.to_dict()) + "\n").encode("utf-8")

    def _compact_inner_locked(self) -> int:
        # Caller holds _mutex for the whole rewrite, with the index complete.
        self._close_handles_locked(read_handles=False)
        removed = self.total_lines - self.skipped_lines - len(self._index)
        self.root.mkdir(parents=True, exist_ok=True)
        self.removed_orphans += self._remove_orphan_tmps()
        # Drop every existing shard file (including ones written under a
        # different shard count) and stale sidecar after the rewrite.
        stale_data = set(self.root.glob("shard-*.jsonl"))
        stale_sidecars = set(self.root.glob("shard-*.idx.json"))
        by_shard: Dict[int, List[_IndexEntry]] = {}
        for key in sorted(self._index):
            ie = self._index[key]
            by_shard.setdefault(self._shard_of(ie.fingerprint), []).append(ie)
        # Phase A: stream every surviving line into its temp file.  All
        # temps are written before any replace so the source reads above
        # never race the renames.
        plans: List[Tuple[int, Path, Path, List[Tuple[_IndexEntry, int, int]], int]] = []
        for shard, items in sorted(by_shard.items()):
            path = self._shard_path(shard)
            tmp = path.with_suffix(".jsonl.tmp")
            spans: List[Tuple[_IndexEntry, int, int]] = []
            pos = 0
            with tmp.open("wb") as fh:
                for ie in items:
                    raw = self._entry_line_locked(ie)
                    fired = poll_fault(
                        "registry.compact", detail=f"mid_write:shard-{shard:02d}"
                    )
                    if fired is not None:
                        if fired.spec.kind == "torn_write":
                            fh.write(
                                fired.torn_prefix(raw.decode("utf-8")).encode("utf-8")
                            )
                            fh.flush()
                        fired.crash(f"died rewriting shard {shard} mid-compaction")
                    fh.write(raw)
                    spans.append((ie, pos, len(raw)))
                    pos += len(raw)
            plans.append((shard, path, tmp, spans, pos))
        # Phase B: atomic replaces, then fresh sidecars per shard.
        for shard, path, tmp, spans, size in plans:
            fired = poll_fault(
                "registry.compact", detail=f"before_replace:shard-{shard:02d}"
            )
            if fired is not None:
                fired.crash(f"died before atomically replacing shard {shard}")
            os.replace(tmp, path)
            state = _FileState()
            state.indexed = True
            state.data_bytes = size
            state.total_lines = len(spans)
            self._files[path] = state
            for ie, offset, length in spans:
                ie.path = path
                ie.offset = offset
                ie.length = length
            self._write_sidecar_locked(path, state, [ie for ie, _o, _l in spans])
            stale_data.discard(path)
            stale_sidecars.discard(self._sidecar_path(path))
        for path in stale_data:
            path.unlink()
            self._files.pop(path, None)
        for path in stale_sidecars:
            path.unlink()
        self._write_manifest_locked()
        self._native = True
        # Old inodes were replaced: reopen on next read.
        self._read_handles.clear()
        self.total_lines = len(self._index)
        self.skipped_lines = 0
        return max(removed, 0)

    def _write_sidecar_locked(
        self, path: Path, state: _FileState, entries: List[_IndexEntry]
    ) -> None:
        """Atomically (re)write the v2 index sidecar of one data file."""
        prefix_len = min(state.data_bytes, _PREFIX_CRC_CAP)
        try:
            with path.open("rb") as fh:
                prefix_crc = zlib.crc32(fh.read(prefix_len))
        except OSError:
            return
        payload = {
            "format": SHARD_INDEX_FORMAT,
            "data_bytes": state.data_bytes,
            "total_lines": state.total_lines,
            "skipped_lines": state.skipped_lines,
            "prefix_len": prefix_len,
            "prefix_crc": prefix_crc,
            "entries": [
                [
                    ie.fingerprint,
                    ie.target,
                    ie.latency,
                    ie.offset,
                    ie.length,
                    1 if ie.has_schedule else 0,
                    list(ie.embedding),
                ]
                for ie in sorted(entries, key=lambda ie: (ie.fingerprint, ie.target))
            ],
        }
        sidecar = self._sidecar_path(path)
        tmp = sidecar.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, sidecar)
        state.dirty = False

    # ------------------------------------------------------------------ #
    def _close_handles_locked(self, read_handles: bool = True) -> None:
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()
        if read_handles:
            self._read_handles.clear()

    def close(self) -> None:
        """Flush index sidecars for written shards and close all handles.

        Idempotent.  Sidecars are only written for *native* layouts (the
        canonical shard naming under the current shard count) whose index
        moved past the on-disk sidecar — so closing a freshly written or
        appended registry leaves it lazy-loadable, while foreign layouts
        are left untouched for the next eager reader.
        """
        with self._mutex:
            if self.root is not None and self._native:
                by_path: Dict[Path, List[_IndexEntry]] = {}
                for ie in self._index.values():
                    if ie.path is not None and ie.offset >= 0:
                        by_path.setdefault(ie.path, []).append(ie)
                for path, state in self._files.items():
                    if state.indexed and state.dirty and path.exists():
                        self._write_sidecar_locked(path, state, by_path.get(path, []))
            self._close_handles_locked()

    def __enter__(self) -> "ScheduleRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
