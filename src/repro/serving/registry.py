"""Persistent, sharded best-schedule registry.

The registry is the shared database layer of the serving subsystem: it maps
``(structural fingerprint, hardware target)`` to the best-known schedule of
that workload plus provenance, so tuning work done anywhere — benchmark runs,
CLI sessions, the multi-tenant tuning service — accumulates into one reusable
knowledge base.

Storage model
-------------
Entries live in ``num_shards`` append-only JSONL shard files under one
directory, sharded by fingerprint prefix so concurrent writers on different
workloads rarely touch the same file.  Appends are single ``write`` +
``flush`` calls of one line, the same crash-tolerant discipline as
:class:`~repro.records.RecordStore`; corrupted lines are skipped (and
counted) at load time.  An improvement to a key appends a new line rather
than rewriting the shard, so files grow monotonically until
:meth:`ScheduleRegistry.compact` rewrites each shard with only the current
best entry per key (atomically, via temp file + ``os.replace``).

Reuse model
-----------
:meth:`lookup` answers exact structural hits in O(1).  :meth:`nearest` runs a
nearest-neighbour search over the stored workload embeddings of a target, so
a *new* workload can borrow the best schedule of its closest registered
relative; :meth:`warm_start_schedules` packages both into ready-to-measure
:class:`~repro.tensor.schedule.Schedule` objects (tile sizes are re-fitted
to the new extents when the relative's shape differs).

When a target has no registered entries yet, :meth:`cross_target_candidates`
falls back *across* targets: donors are ranked by the sum of workload
embedding distance and hardware :func:`~repro.hardware.catalog.target_distance`
(so a close cousin device with the exact workload beats a remote device, and
same-kind donors always beat cross-kind ones), and the borrowed schedule is
re-fitted to the destination device — tiling depths, innermost tile sizes
rounded to the destination ``vector_width``, register/L1 working set shrunk
to its cache capacities, and the unroll depth mapped onto the destination's
candidate list.  Results recorded after a cross-target warm start carry the
donor target in their provenance (``RegistryEntry.donor_target``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import IO, Dict, List, Optional, Sequence, Tuple, Union

from repro.faults.plan import poll as poll_fault
from repro.hardware.catalog import default_catalog, target_distance
from repro.jsonl import repair_torn_tail
from repro.hardware.target import HardwareTarget
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span as obs_span
from repro.serving.fingerprint import (
    embedding_distance,
    structural_fingerprint,
    workload_embedding,
)
from repro.tensor.dag import DTYPE_BYTES, ComputeDAG
from repro.tensor.factors import prime_factors, product
from repro.tensor.schedule import Schedule
from repro.caching import cached_sketches

__all__ = ["RegistryEntry", "ScheduleRegistry", "TransferCandidate"]

_LOOKUPS = counter("registry.lookups", "Exact (fingerprint, target) lookups")
_HITS = counter("registry.hits", "Exact lookups answered from the best map")
_MISSES = counter("registry.misses", "Exact lookups with no stored entry")
_TRANSFER_LOOKUPS = counter("registry.transfer_lookups", "Warm-start transfer searches")
_TRANSFER_CANDIDATES = counter(
    "registry.transfer_candidates", "Warm-start candidates produced"
)
_SHARD_LOAD = histogram("registry.shard_load_seconds", help="Per-shard JSONL load time")
_APPEND = histogram("registry.append_seconds", help="Single-entry shard append time")
_COMPACT = histogram("registry.compact_seconds", help="Full registry compaction time")


@dataclass(frozen=True)
class RegistryEntry:
    """Best-known schedule of one (workload fingerprint, target) pair.

    ``schedule`` is the structural serialisation produced by
    :func:`~repro.records.schedule_to_dict`; ``source`` records provenance
    (which runner / service tenant / import produced the entry) and
    ``donor_target`` names the target(s) whose registered schedules
    warm-started the run that produced this entry (empty for cold runs).
    """

    fingerprint: str
    target: str
    workload: str
    latency: float
    throughput: float
    trials: int
    scheduler: str
    schedule: Optional[dict]
    embedding: Tuple[float, ...] = ()
    source: str = ""
    donor_target: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.fingerprint, self.target)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "target": self.target,
            "workload": self.workload,
            "latency": self.latency,
            "throughput": self.throughput,
            "trials": self.trials,
            "scheduler": self.scheduler,
            "schedule": self.schedule,
            "embedding": list(self.embedding),
            "source": self.source,
            "donor_target": self.donor_target,
        }

    @staticmethod
    def from_dict(data: dict) -> "RegistryEntry":
        return RegistryEntry(
            fingerprint=data["fingerprint"],
            target=data["target"],
            workload=data["workload"],
            latency=float(data["latency"]),
            throughput=float(data["throughput"]),
            trials=int(data.get("trials", 0)),
            scheduler=data.get("scheduler", ""),
            schedule=data.get("schedule"),
            embedding=tuple(float(v) for v in data.get("embedding", ())),
            source=data.get("source", ""),
            donor_target=data.get("donor_target", ""),
        )


@dataclass(frozen=True)
class TransferCandidate:
    """One warm-start schedule plus its provenance.

    ``donor`` is the registry entry the schedule was borrowed from;
    ``cross_target`` marks candidates transferred from a *different* hardware
    target (with ``target_distance`` the embedding distance between donor and
    destination device — 0.0 for same-target transfers).
    """

    schedule: Schedule
    donor: RegistryEntry
    target_distance: float = 0.0
    cross_target: bool = False


def _reshape_reference(reference: Sequence[int], levels: int) -> List[int]:
    """Re-shape a donor tile-size list to a new tiling depth.

    Innermost (vector / register) tiles carry the transferable structure, so
    surplus *outer* levels are folded together and missing outer levels are
    padded with 1 — the innermost entries always survive verbatim.
    """
    ref = [max(int(v), 1) for v in reference]
    if len(ref) > levels:
        keep = levels - 1
        ref = [product(ref[: len(ref) - keep])] + ref[len(ref) - keep:]
    elif len(ref) < levels:
        ref = [1] * (levels - len(ref)) + ref
    return ref


def _fit_tile_sizes(extent: int, levels: int, reference: Sequence[int]) -> List[int]:
    """Re-fit a reference tile-size list to a new extent.

    Distributes the prime factors of ``extent`` (largest first) over
    ``levels`` slots, greedily assigning each factor to the slot furthest
    below its reference size, so the shape of the borrowed tiling is
    preserved as closely as the new extent's factorisation allows.  The
    result always multiplies to ``extent`` exactly.
    """
    reference = list(reference) + [1] * (levels - len(reference))
    sizes = [1] * levels
    for p in sorted(prime_factors(extent), reverse=True):
        ratios = [reference[i] / sizes[i] for i in range(levels)]
        slot = max(range(levels), key=lambda i: (ratios[i], i))
        sizes[slot] *= p
    assert product(sizes) == extent
    return sizes


class ScheduleRegistry:
    """Sharded persistent map (fingerprint, target) → best schedule.

    Parameters
    ----------
    root:
        Directory holding the shard files (created on first write).  ``None``
        keeps the registry purely in memory.
    num_shards:
        Number of JSONL shard files; the shard of an entry is derived from
        its fingerprint prefix, so the mapping is stable across processes.
    strict:
        When true, corrupted lines raise at load time instead of being
        skipped and counted in :attr:`skipped_lines`.

    Thread safety
    -------------
    One re-entrant mutex guards the best map, the shard handles and the line
    counters, so :meth:`record` is atomic per entry (absorb + append commit
    together) and concurrent writers — racing service drivers, the network
    front end's worker threads — can never interleave shard writes or lose a
    best-entry update.  Query methods snapshot under the same lock; the lock
    is re-entrant so :meth:`merge`/:meth:`import_file` can call
    :meth:`record` while holding it.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        num_shards: int = 16,
        strict: bool = False,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.root = Path(root) if root is not None else None
        self.num_shards = int(num_shards)
        self.strict = bool(strict)
        self._mutex = threading.RLock()
        self.skipped_lines = 0  # guarded-by: _mutex
        self.total_lines = 0  # guarded-by: _mutex
        self.truncated_tails = 0
        self.removed_orphans = 0
        self._best: Dict[Tuple[str, str], RegistryEntry] = {}  # guarded-by: _mutex
        self._handles: Dict[int, IO[str]] = {}  # guarded-by: _mutex
        if self.root is not None and self.root.exists():
            self.removed_orphans = self._remove_orphan_tmps()
            # Glob rather than range(num_shards): a registry written with a
            # different shard count must still load every entry.
            for path in sorted(self.root.glob("shard-*.jsonl")):
                self._load_lines_locked(path)

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #
    def _shard_of(self, fingerprint: str) -> int:
        # crc32 keeps the shard mapping stable across processes and total
        # over arbitrary (e.g. imported) fingerprint strings.
        return zlib.crc32(fingerprint.encode("utf-8")) % self.num_shards

    def _shard_path(self, shard: int) -> Path:
        assert self.root is not None
        return self.root / f"shard-{shard:02d}.jsonl"

    def _remove_orphan_tmps(self) -> int:
        """Delete half-written compaction temp files left by a crash.

        A compaction killed before its atomic ``os.replace`` leaves a
        ``shard-*.jsonl.tmp`` next to the intact shard.  The temp holds no
        entry the shard does not, so dropping it is the whole recovery — but
        it must be dropped, or crashed compactions accumulate garbage files
        forever.
        """
        assert self.root is not None
        removed = 0
        for tmp in self.root.glob("shard-*.jsonl.tmp"):
            tmp.unlink()
            removed += 1
        return removed

    def _load_lines_locked(self, path: Path) -> None:
        # Caller holds _mutex (or the registry is not yet published: __init__).
        began = time.perf_counter()
        # A process killed mid-append leaves a torn final line; truncate it
        # (even under strict — it is an expected crash artifact, not data
        # corruption) so re-opened shards never append onto a partial line.
        if repair_torn_tail(path, label="registry shard"):
            self.truncated_tails += 1
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            self.total_lines += 1
            try:
                self._absorb_locked(RegistryEntry.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                if self.strict:
                    raise ValueError(
                        f"corrupted registry entry at {path}:{lineno}: {exc}"
                    ) from exc
                self.skipped_lines += 1
        _SHARD_LOAD.observe(time.perf_counter() - began)

    def _absorb_locked(self, entry: RegistryEntry) -> bool:
        """Fold an entry into the in-memory best map (no disk write).

        Caller holds ``_mutex``.
        """
        current = self._best.get(entry.key)
        if current is None or entry.latency < current.latency:
            self._best[entry.key] = entry
            return True
        return False

    def _append_locked(self, entry: RegistryEntry) -> None:
        # Caller holds _mutex: the get-or-open handle dance and the
        # write+flush+count must not interleave with another appender.
        if self.root is None:
            return
        began = time.perf_counter()
        shard = self._shard_of(entry.fingerprint)
        fh = self._handles.get(shard)
        if fh is None:
            self.root.mkdir(parents=True, exist_ok=True)
            fh = self._shard_path(shard).open("a", encoding="utf-8")
            self._handles[shard] = fh
        line = json.dumps(entry.to_dict()) + "\n"
        fired = poll_fault(
            "registry.append", detail=f"shard-{shard:02d}:{entry.fingerprint}"
        )
        if fired is not None:
            if fired.spec.kind == "torn_write":
                fh.write(fired.torn_prefix(line))
                fh.flush()
            fired.crash(f"died appending {entry.fingerprint!r} to shard {shard}")
        fh.write(line)
        fh.flush()
        self.total_lines += 1
        _APPEND.observe(time.perf_counter() - began)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, entry: RegistryEntry) -> bool:
        """Record an entry; returns True if it improved (or created) its key.

        Only improvements are appended to disk, so shard files hold the
        monotone history of best schedules per key.
        """
        if not entry.fingerprint:
            raise ValueError("registry entries need a non-empty fingerprint")
        # Absorb + append must commit together: a second writer slipping in
        # between them could absorb a worse entry over the unappended best,
        # or append a line the best map never saw.
        with self._mutex:
            accepted = self._absorb_locked(entry)
            if accepted:
                self._append_locked(entry)
        return accepted

    def record_result(
        self, dag: ComputeDAG, target, result, source: str = "", donor_target: str = ""
    ) -> bool:
        """Record a :class:`~repro.core.tuner.TuningResult` for a DAG.

        ``target`` is a :class:`~repro.hardware.target.HardwareTarget` (or its
        name).  ``donor_target`` records cross-target transfer provenance:
        the target(s) whose registered schedules warm-started this run.
        Results without a schedule or a finite latency are ignored.
        """
        from repro.records import schedule_to_dict  # local import: records imports us

        if result.best_schedule is None or not (result.best_latency < float("inf")):
            return False
        target_name = target if isinstance(target, str) else target.name
        return self.record(
            RegistryEntry(
                fingerprint=structural_fingerprint(dag),
                target=target_name,
                workload=dag.name,
                latency=float(result.best_latency),
                throughput=float(result.best_throughput),
                trials=int(result.trials_used),
                scheduler=result.scheduler,
                schedule=schedule_to_dict(result.best_schedule),
                embedding=tuple(workload_embedding(dag).tolist()),
                source=source,
                donor_target=donor_target,
            )
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def get(self, fingerprint: str, target) -> Optional[RegistryEntry]:
        """O(1) exact lookup by (fingerprint, target)."""
        target_name = target if isinstance(target, str) else target.name
        with self._mutex:
            entry = self._best.get((fingerprint, target_name))
        _LOOKUPS.inc()
        (_HITS if entry is not None else _MISSES).inc()
        return entry

    def lookup(self, dag: ComputeDAG, target) -> Optional[RegistryEntry]:
        """O(1) exact structural lookup for a DAG."""
        return self.get(structural_fingerprint(dag), target)

    def entries(self) -> List[RegistryEntry]:
        """Current best entry of every (fingerprint, target) key."""
        with self._mutex:
            return [self._best[key] for key in sorted(self._best)]

    def nearest(
        self,
        dag: ComputeDAG,
        target,
        k: int = 1,
        exclude_exact: bool = True,
    ) -> List[Tuple[float, RegistryEntry]]:
        """The ``k`` registered workloads closest to ``dag`` on one target.

        Returns ``(embedding distance, entry)`` pairs sorted by distance.
        ``exclude_exact`` drops the DAG's own fingerprint so the result is a
        genuine *relative*, which is what transfer warm starts want.
        """
        target_name = target if isinstance(target, str) else target.name
        fingerprint = structural_fingerprint(dag)
        query = workload_embedding(dag)
        with self._mutex:
            candidates = list(self._best.values())
        scored: List[Tuple[float, RegistryEntry]] = []
        for entry in candidates:
            if entry.target != target_name or not entry.embedding:
                continue
            if exclude_exact and entry.fingerprint == fingerprint:
                continue
            scored.append((embedding_distance(query, entry.embedding), entry))
        scored.sort(key=lambda pair: (pair[0], pair[1].fingerprint))
        return scored[: max(k, 0)]

    def cross_target_candidates(
        self,
        dag: ComputeDAG,
        target: HardwareTarget,
        catalog=None,
        k: int = 4,
    ) -> List[Tuple[float, RegistryEntry]]:
        """Donor entries from *other* targets, best transfer prospects first.

        Candidates are ranked by the sum of workload embedding distance
        (0 for the exact fingerprint) and donor↔destination
        :func:`~repro.hardware.catalog.target_distance`, so the exact workload
        on a cousin device outranks a vaguely similar workload on a remote
        one, and the CPU/GPU kind gap keeps same-kind donors first.  Donor
        target names are resolved to embeddings through ``catalog`` (the
        built-in :func:`~repro.hardware.catalog.default_catalog` when
        ``None``); entries on unknown targets are skipped.

        Returns ``(target distance, entry)`` pairs.
        """
        if not isinstance(target, HardwareTarget):
            return []
        catalog = catalog if catalog is not None else default_catalog()
        fingerprint = structural_fingerprint(dag)
        query = workload_embedding(dag)
        distances: Dict[str, float] = {}
        with self._mutex:
            candidates = list(self._best.values())
        scored: List[Tuple[float, float, RegistryEntry]] = []
        for entry in candidates:
            if entry.target == target.name or entry.schedule is None:
                continue
            t_dist = distances.get(entry.target)
            if t_dist is None:
                donor = catalog.get_optional(entry.target)
                t_dist = target_distance(target, donor) if donor is not None else -1.0
                distances[entry.target] = t_dist
            if t_dist < 0:
                continue
            if entry.fingerprint == fingerprint:
                w_dist = 0.0
            elif entry.embedding:
                w_dist = embedding_distance(query, entry.embedding)
            else:
                continue
            scored.append((w_dist + t_dist, t_dist, entry))
        scored.sort(key=lambda item: (item[0], item[2].fingerprint, item[2].target))
        return [(t_dist, entry) for _score, t_dist, entry in scored[: max(k, 0)]]

    def stats(self) -> dict:
        """Aggregate registry statistics (entries, shards, stale lines, ...)."""
        shard_files = 0
        if self.root is not None and self.root.exists():
            shard_files = len(list(self.root.glob("shard-*.jsonl")))
        with self._mutex:
            targets = sorted({entry.target for entry in self._best.values()})
            return {
                "entries": len(self._best),
                "workloads": len({fp for fp, _t in self._best}),
                "targets": targets,
                "shard_files": shard_files,
                "total_lines": self.total_lines,
                "stale_lines": max(
                    self.total_lines - self.skipped_lines - len(self._best), 0
                ),
                "skipped_lines": self.skipped_lines,
                "truncated_tails": self.truncated_tails,
                "removed_orphans": self.removed_orphans,
            }

    def __len__(self) -> int:
        with self._mutex:
            return len(self._best)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._mutex:
            return key in self._best

    # ------------------------------------------------------------------ #
    # warm starts
    # ------------------------------------------------------------------ #
    def warm_start_transfers(
        self,
        dag: ComputeDAG,
        target,
        max_candidates: int = 4,
        catalog=None,
        cross_target: bool = True,
    ) -> List[TransferCandidate]:
        """Warm-start schedules for a DAG on one target, with provenance.

        An exact structural hit contributes its stored schedule verbatim
        (restored against ``dag``); nearest registered relatives contribute
        schedules whose tile sizes are re-fitted to the new extents.  When the
        destination target still has fewer than ``max_candidates`` donors, the
        lookup falls back across targets (:meth:`cross_target_candidates`) and
        re-fits the borrowed schedules to the destination device.  Candidates
        arrive best-first: exact hit, same-target relatives, cross-target
        donors.
        """
        from repro.records import schedule_from_dict  # records imports us

        _TRANSFER_LOOKUPS.inc()
        out: List[TransferCandidate] = []
        seen: set = set()

        def push(schedule: Schedule, donor: RegistryEntry, t_dist: float, cross: bool) -> None:
            key = schedule.signature()
            if key not in seen:
                seen.add(key)
                out.append(TransferCandidate(schedule, donor, t_dist, cross))

        exact = self.lookup(dag, target)
        if exact is not None and exact.schedule is not None:
            try:
                push(
                    schedule_from_dict(exact.schedule, dag, check_workload=False),
                    exact, 0.0, False,
                )
            except (KeyError, TypeError, ValueError):
                # Malformed stored schedule (older format / torn write):
                # skip it, matching the registry's corruption tolerance.
                pass
        for _distance, entry in self.nearest(dag, target, k=max_candidates):
            if len(out) >= max_candidates:
                break
            if entry.schedule is None:
                continue
            adapted = self._adapt_schedule(entry.schedule, dag)
            if adapted is not None:
                push(adapted, entry, 0.0, False)
        if cross_target and len(out) < max_candidates and isinstance(target, HardwareTarget):
            remaining = max_candidates - len(out)
            donors: List[Tuple[RegistryEntry, float, List[Schedule]]] = []
            for t_dist, entry in self.cross_target_candidates(
                dag, target, catalog=catalog, k=remaining
            ):
                adapted = self._adapt_schedule_to_target(entry.schedule, dag, target)
                if adapted is not None:
                    donors.append(
                        (entry, t_dist, self._target_variants(adapted, remaining))
                    )
            # Round-robin across donors: every donor's straight adaptation is
            # proposed before any donor's ensemble variants, so one donor
            # cannot crowd the others out of the measurement budget.
            level = 0
            while len(out) < max_candidates and any(
                level < len(ensemble) for _e, _d, ensemble in donors
            ):
                for entry, t_dist, ensemble in donors:
                    if level < len(ensemble) and len(out) < max_candidates:
                        push(ensemble[level], entry, t_dist, True)
                level += 1
        out = out[:max_candidates]
        _TRANSFER_CANDIDATES.inc(len(out))
        return out

    def warm_start_schedules(
        self,
        dag: ComputeDAG,
        target,
        max_candidates: int = 4,
        catalog=None,
        cross_target: bool = True,
    ) -> List[Schedule]:
        """Ready-to-measure warm-start schedules (see :meth:`warm_start_transfers`)."""
        return [
            candidate.schedule
            for candidate in self.warm_start_transfers(
                dag, target, max_candidates=max_candidates,
                catalog=catalog, cross_target=cross_target,
            )
        ]

    @staticmethod
    def _adapt_schedule(data: dict, dag: ComputeDAG) -> Optional[Schedule]:
        """Transfer a stored schedule onto a structurally *similar* DAG.

        Regenerates the sketch family of ``dag`` at the stored tiling depths,
        picks the stored sketch rule if it exists, and re-fits every tile-size
        list to the new iterator extents; knob indices are clamped to the new
        valid ranges.  Returns ``None`` when no sketch of ``dag`` matches the
        stored rule (e.g. a fusion sketch borrowed for a fusion-free DAG).
        """
        try:
            sketches = cached_sketches(
                dag,
                spatial_levels=int(data["spatial_levels"]),
                reduction_levels=int(data["reduction_levels"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        matches = [s for s in sketches if s.key == data.get("sketch_key")]
        if not matches:
            return None
        sketch = matches[0]
        try:
            reference = [list(map(int, sizes)) for sizes in data.get("tile_sizes", [])]
            tile_sizes: List[List[int]] = []
            for idx, (_name, _kind, extent, levels) in enumerate(sketch.tiled_iters):
                ref = reference[idx] if idx < len(reference) else []
                tile_sizes.append(_fit_tile_sizes(int(extent), int(levels), ref))
            n_candidates = len(dag.compute_at_candidates())
            max_parallel = len(dag.main_stage.spatial_iters)
            unroll_depths = tuple(int(d) for d in data.get("unroll_depths", (0,)))
            return Schedule(
                sketch=sketch,
                tile_sizes=tile_sizes,
                compute_at_index=min(int(data.get("compute_at_index", 0)), n_candidates - 1),
                num_parallel=min(int(data.get("num_parallel", 1)), max_parallel),
                unroll_index=min(
                    int(data.get("unroll_index", 0)), len(unroll_depths) - 1
                ),
                unroll_depths=unroll_depths,
            )
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def _target_variants(schedule: Schedule, limit: int) -> List[Schedule]:
        """Small ensemble of near variants of one transferred schedule.

        Cross-target transfer is uncertain — the donor's optimal unroll depth
        and parallelism rarely survive a change of vector width, cache sizes
        or core count exactly — so the straight adaptation is proposed
        together with its unroll and parallelism neighbours and the
        destination's measurements arbitrate.  The straight adaptation is
        always first.
        """
        out = [schedule]
        for index in range(len(schedule.unroll_depths)):
            if index != schedule.unroll_index:
                variant = schedule.copy()
                variant.unroll_index = index
                out.append(variant)
        if schedule.num_parallel > 1:
            variant = schedule.copy()
            variant.num_parallel = schedule.num_parallel - 1
            out.append(variant)
        if schedule.num_parallel < schedule.max_parallel:
            variant = schedule.copy()
            variant.num_parallel = schedule.num_parallel + 1
            out.append(variant)
        return out[: max(limit, 0)]

    @staticmethod
    def _adapt_schedule_to_target(
        data: dict, dag: ComputeDAG, target: HardwareTarget
    ) -> Optional[Schedule]:
        """Transfer a stored schedule onto a *different* hardware target.

        Unlike :meth:`_adapt_schedule` (same target, similar workload), the
        donor's tiling depths, vector width, cache capacities and unroll
        candidates may all differ from the destination's.  The sketch family
        is regenerated at the destination's tiling depths; each donor
        tile-size list is re-shaped to the new depth (innermost tiles
        preserved), the innermost spatial tile is rounded to a multiple of
        the destination ``vector_width``, the register/L1 working set is
        shrunk until it fits ``l1_bytes``, and the unroll depth is mapped to
        the nearest destination candidate.  Returns ``None`` when no sketch
        of ``dag`` at the destination depths matches the stored rule.
        """
        try:
            sketches = cached_sketches(
                dag,
                spatial_levels=target.sketch_spatial_levels,
                reduction_levels=target.sketch_reduction_levels,
            )
        except (TypeError, ValueError):
            return None
        matches = [s for s in sketches if s.key == data.get("sketch_key")]
        if not matches:
            return None
        sketch = matches[0]
        try:
            reference = [list(map(int, sizes)) for sizes in data.get("tile_sizes", [])]
            refs: List[List[int]] = []
            for idx, (_name, _kind, _extent, levels) in enumerate(sketch.tiled_iters):
                ref = reference[idx] if idx < len(reference) else []
                refs.append(_reshape_reference(ref, levels))

            spatial_idx = [
                i for i, (_n, kind, _e, _l) in enumerate(sketch.tiled_iters)
                if kind == "spatial"
            ]
            reduction_idx = [
                i for i, (_n, kind, _e, _l) in enumerate(sketch.tiled_iters)
                if kind == "reduction"
            ]
            vw = target.vector_width
            if spatial_idx:
                # The innermost spatial tile is the vectorised axis: round the
                # donor's size to a whole number of destination SIMD lanes.
                vec = refs[spatial_idx[-1]]
                vec[-1] = max(vw, vw * max(1, round(vec[-1] / vw)))
            # Shrink the register/L1 tile until it fits the destination cache:
            # the footprint is the innermost spatial tile volume streamed over
            # the innermost reduction tile (cf. the simulator's cache model).
            def l1_footprint() -> float:
                sp = product([refs[i][-1] for i in spatial_idx]) if spatial_idx else 1
                red = product([refs[i][-1] for i in reduction_idx]) if reduction_idx else 1
                return DTYPE_BYTES * sp * max(red, 1)

            while l1_footprint() > target.l1_bytes:
                shrinkable = [
                    i for i in spatial_idx + reduction_idx
                    if refs[i][-1] > (vw if spatial_idx and i == spatial_idx[-1] else 1)
                ]
                if not shrinkable:
                    break
                largest = max(shrinkable, key=lambda i: refs[i][-1])
                value = refs[largest][-1] // 2
                if spatial_idx and largest == spatial_idx[-1]:
                    # The vectorised axis must stay a whole number of lanes.
                    value = max(vw * (value // vw), vw)
                refs[largest][-1] = max(value, 1)

            tile_sizes = [
                _fit_tile_sizes(int(extent), int(levels), refs[idx])
                for idx, (_name, _kind, extent, levels) in enumerate(sketch.tiled_iters)
            ]

            donor_depths = [int(d) for d in data.get("unroll_depths", (0,))] or [0]
            donor_index = min(int(data.get("unroll_index", 0)), len(donor_depths) - 1)
            donor_depth = donor_depths[max(donor_index, 0)]
            depths = target.unroll_depths
            unroll_index = min(
                range(len(depths)), key=lambda i: (abs(depths[i] - donor_depth), i)
            )

            n_candidates = len(dag.compute_at_candidates())
            max_parallel = len(dag.main_stage.spatial_iters)
            return Schedule(
                sketch=sketch,
                tile_sizes=tile_sizes,
                compute_at_index=min(int(data.get("compute_at_index", 0)), n_candidates - 1),
                num_parallel=min(int(data.get("num_parallel", 1)), max_parallel),
                unroll_index=unroll_index,
                unroll_depths=tuple(depths),
            )
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------ #
    # maintenance: merge / import / export / compact
    # ------------------------------------------------------------------ #
    def merge(self, other: "ScheduleRegistry") -> int:
        """Fold another registry's best entries into this one.

        Returns the number of entries that improved (or created) a key.
        """
        return sum(1 for entry in other.entries() if self.record(entry))

    def export_file(self, path: Union[str, Path]) -> Path:
        """Write the current best entries to one portable JSONL file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for entry in self.entries():
                fh.write(json.dumps(entry.to_dict()) + "\n")
        os.replace(tmp, path)
        return path

    def import_file(self, path: Union[str, Path], source: str = "") -> int:
        """Import entries from a JSONL export; returns how many improved.

        Corrupted lines follow the registry's ``strict`` policy.  ``source``
        overrides the provenance of imported entries when non-empty.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"registry export {path} does not exist")
        accepted = 0
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = RegistryEntry.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError) as exc:
                if self.strict:
                    raise ValueError(
                        f"corrupted registry entry at {path}:{lineno}: {exc}"
                    ) from exc
                with self._mutex:
                    self.skipped_lines += 1
                continue
            if source:
                entry = replace(entry, source=source)
            if self.record(entry):
                accepted += 1
        return accepted

    def compact(self) -> int:
        """Rewrite every shard with only the current best entry per key.

        Each shard is replaced atomically (temp file + ``os.replace``), so a
        crash mid-compaction leaves either the old or the new shard, never a
        torn one.  Returns the number of stale lines removed.
        """
        if self.root is None:
            return 0
        began = time.perf_counter()
        with self._mutex:
            with obs_span("registry.compact", entries=len(self._best)) as compact_span:
                removed = self._compact_inner_locked()
                compact_span.annotate(removed=removed)
        _COMPACT.observe(time.perf_counter() - began)
        return removed

    def _compact_inner_locked(self) -> int:
        # Caller holds _mutex for the whole rewrite.
        self.close()
        by_shard: Dict[int, List[RegistryEntry]] = {}
        for entry in self.entries():
            by_shard.setdefault(self._shard_of(entry.fingerprint), []).append(entry)
        removed = self.total_lines - self.skipped_lines - len(self._best)
        self.root.mkdir(parents=True, exist_ok=True)
        self.removed_orphans += self._remove_orphan_tmps()
        # Drop every existing shard file (including ones written under a
        # different shard count) before rewriting under the current mapping.
        stale_paths = set(self.root.glob("shard-*.jsonl"))
        for shard, entries in sorted(by_shard.items()):
            path = self._shard_path(shard)
            tmp = path.with_suffix(".jsonl.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for entry in entries:
                    line = json.dumps(entry.to_dict()) + "\n"
                    fired = poll_fault(
                        "registry.compact", detail=f"mid_write:shard-{shard:02d}"
                    )
                    if fired is not None:
                        if fired.spec.kind == "torn_write":
                            fh.write(fired.torn_prefix(line))
                            fh.flush()
                        fired.crash(f"died rewriting shard {shard} mid-compaction")
                    fh.write(line)
            fired = poll_fault(
                "registry.compact", detail=f"before_replace:shard-{shard:02d}"
            )
            if fired is not None:
                fired.crash(f"died before atomically replacing shard {shard}")
            os.replace(tmp, path)
            stale_paths.discard(path)
        for path in stale_paths:
            path.unlink()
        self.total_lines = len(self._best)
        self.skipped_lines = 0
        return max(removed, 0)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close all shard file handles (idempotent)."""
        with self._mutex:
            for fh in self._handles.values():
                fh.close()
            self._handles.clear()

    def __enter__(self) -> "ScheduleRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
