"""Canonical, label-invariant workload fingerprints and embeddings.

Task deduplication and cross-run schedule reuse both need an identity for a
:class:`~repro.tensor.dag.ComputeDAG` that depends only on its *structure* —
``ComputeDAG.workload_key()`` bakes in stage and iterator names, so two
structurally identical DAGs whose stages were merely renamed never dedup.

This module is the serving-layer API for two structural views of a DAG:

* :func:`structural_fingerprint` / :func:`canonical_structure` — a stable
  hex digest of a canonical encoding that is invariant under stage/iterator
  renaming, permutation of a stage's ``producers`` tuple and
  topology-preserving reordering of the stage list, but changes whenever an
  iterator extent or kind, a stage kind, the producer topology or the
  per-element work changes.  (The computation lives next to
  :class:`~repro.tensor.dag.ComputeDAG` itself — the tensor substrate uses
  the same identity for the simulator's per-schedule ruggedness seed — and
  is re-exported here.)
* :func:`workload_embedding` — a fixed-length numeric vector summarising the
  workload (log extents, FLOPs, arithmetic intensity, stage-kind census)
  used for nearest-neighbour similarity search in the schedule registry, so
  a new workload can borrow the best-known schedule of its closest relative.

Both views deliberately ignore ``dag.name`` and ``dag.tags``: those are
human-readable labels, not structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.dag import (  # noqa: F401  (re-exported)
    ComputeDAG,
    canonical_structure,
    structural_fingerprint,
)

__all__ = [
    "EMBEDDING_SIZE",
    "canonical_structure",
    "structural_fingerprint",
    "workload_embedding",
    "embedding_distance",
]

#: Embedding layout: 5 spatial extents + 4 reduction extents of the main
#: stage (log2, padded), then 10 aggregate workload statistics.
_MAX_SPATIAL = 5
_MAX_REDUCTION = 4
EMBEDDING_SIZE = _MAX_SPATIAL + _MAX_REDUCTION + 10

# Instance-level memo, same idiom as the fingerprint cache on ComputeDAG:
# DAGs are structurally immutable after construction, and the embedding is
# recomputed for every measurement record and nearest() query otherwise.
_EMBEDDING_ATTR = "_workload_embedding_cache"


def _log2(value: float) -> float:
    return float(np.log2(max(float(value), 1.0)))


def workload_embedding(dag: ComputeDAG) -> np.ndarray:
    """Fixed-length numeric summary of a workload for similarity search.

    Invariant under renaming (it reads only extents, kinds and aggregate
    statistics); close workloads — same operator family at nearby shapes —
    land close in Euclidean distance, which is what
    :meth:`~repro.serving.registry.ScheduleRegistry.nearest` exploits for
    transfer warm starts.  Memoised per DAG instance (callers must not
    mutate the returned array).
    """
    cached = dag.__dict__.get(_EMBEDDING_ATTR)
    if cached is not None:
        return cached
    out = np.zeros(EMBEDDING_SIZE, dtype=np.float64)
    main = dag.main_stage
    offset = 0
    for i, it in enumerate(main.spatial_iters[:_MAX_SPATIAL]):
        out[offset + i] = _log2(it.extent)
    offset += _MAX_SPATIAL
    for i, it in enumerate(main.reduction_iters[:_MAX_REDUCTION]):
        out[offset + i] = _log2(it.extent)
    offset += _MAX_REDUCTION

    kinds = [s.kind for s in dag.stages]
    out[offset : offset + 10] = [
        _log2(dag.flops),
        _log2(dag.total_bytes),
        _log2(dag.arithmetic_intensity() + 1.0),
        _log2(main.output_elements),
        float(len(main.spatial_iters)),
        float(len(main.reduction_iters)),
        float(kinds.count("input")),
        float(kinds.count("elementwise")),
        float(kinds.count("reduction")),
        1.0 if dag.has_fusable_consumer else 0.0,
    ]
    out.setflags(write=False)
    dag.__dict__[_EMBEDDING_ATTR] = out
    return out


def embedding_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two workload embeddings."""
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    if av.shape != bv.shape:
        raise ValueError(f"embedding shapes differ: {av.shape} vs {bv.shape}")
    return float(np.linalg.norm(av - bv))
