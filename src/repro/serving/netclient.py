"""Synchronous wire client for the :class:`~repro.serving.server.ServingServer`.

:class:`TuningClient` speaks the server's newline-delimited JSON-RPC over a
persistent TCP connection with **bounded retry**: transport failures —
refused/reset connections, a dropped connection mid-request, a socket
timeout — reconnect and resend up to ``max_retries`` times (with a small
linear backoff), then raise :class:`NetClientError` carrying the attempt
count.  *Server-level* rejections (``rate_limited``, ``quota_exceeded``,
``timeout``, ``overloaded``) are answers, not failures: they come back as a
:class:`TuneReply` with ``ok=False`` and are never retried — backoff policy
for those belongs to the application, not the transport.

This split is what the ``retry.bounded`` gate obligation checks: a backend
that keeps dropping connections exhausts the client after exactly
``1 + max_retries`` attempts, and a backend that recovers within the budget
is ridden out transparently.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["NetClientError", "TuneReply", "TuningClient"]


class NetClientError(RuntimeError):
    """Transport-level failure that survived every retry."""

    def __init__(self, message: str, attempts: int):
        super().__init__(f"{message} (after {attempts} attempt(s))")
        self.attempts = attempts


@dataclass(frozen=True)
class TuneReply:
    """One decoded server response plus client-side bookkeeping.

    ``ok=False`` replies carry the server's explicit rejection in
    ``error_code``/``error_message``; ``degraded=True`` marks registry-only
    answers from a saturated (load-shedding) server.  ``attempts`` counts
    transport attempts (1 = first try succeeded) and ``elapsed`` is the
    client-observed wall-clock latency in seconds.
    """

    ok: bool
    degraded: bool = False
    result: dict = field(default_factory=dict)
    error_code: str = ""
    error_message: str = ""
    attempts: int = 1
    elapsed: float = 0.0

    @property
    def latency(self) -> float:
        return float(self.result.get("latency", float("inf")))

    @property
    def trials_used(self) -> int:
        return int(self.result.get("trials_used", 0))

    @property
    def source(self) -> str:
        return str(self.result.get("source", ""))


class TuningClient:
    """Blocking JSON-RPC client with reconnect and bounded retry.

    Parameters
    ----------
    timeout:
        Socket timeout per attempt, seconds.  Keep it above the server's
        ``request_timeout`` — the server answers an explicit ``timeout``
        error *before* this expires, so a socket timeout genuinely means a
        dead transport.
    max_retries:
        Transport retries after the first attempt (total attempts =
        ``1 + max_retries``).
    backoff:
        Sleep ``backoff * attempt`` seconds between attempts.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        max_retries: int = 2,
        backoff: float = 0.05,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.max_retries = max(int(max_retries), 0)
        self.backoff = float(backoff)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        self.close()
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "TuningClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the wire
    # ------------------------------------------------------------------ #
    def _roundtrip(self, request: dict) -> dict:
        """One request/response exchange on the current connection."""
        if self._sock is None:
            self._connect()
        line = json.dumps(request).encode("utf-8") + b"\n"
        self._sock.sendall(line)
        raw = self._file.readline()
        if not raw:
            raise ConnectionResetError("server closed the connection mid-request")
        return json.loads(raw)

    def call(self, method: str, params: Optional[dict] = None) -> dict:
        """Send one request with bounded retry; returns the raw response dict.

        Retries only transport failures; any decoded response — including
        ``ok=False`` rejections — is returned as-is.  The response dict is
        augmented with ``"attempts"``.
        """
        self._next_id += 1
        request = {"id": self._next_id, "method": method, "params": params or {}}
        attempts = 1 + self.max_retries
        last_error: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                response = self._roundtrip(request)
                response["attempts"] = attempt
                return response
            except (OSError, ValueError) as exc:
                # OSError covers refused/reset/timeout; ValueError covers a
                # torn JSON line from a connection cut mid-response.
                last_error = exc
                self.close()
                if attempt < attempts:
                    time.sleep(self.backoff * attempt)
        raise NetClientError(
            f"{type(last_error).__name__}: {last_error}", attempts=attempts
        )

    # ------------------------------------------------------------------ #
    # typed helpers
    # ------------------------------------------------------------------ #
    def tune(
        self,
        op: str,
        batch: int = 1,
        trials: int = 16,
        tenant: str = "default",
        force_tune: bool = False,
    ) -> TuneReply:
        """Tune (or fetch) one operator-class workload; never raises on
        server-level rejections — inspect ``TuneReply.ok``/``error_code``."""
        began = time.perf_counter()
        response = self.call("tune", {
            "op": op, "batch": batch, "trials": trials,
            "tenant": tenant, "force_tune": force_tune,
        })
        error = response.get("error") or {}
        return TuneReply(
            ok=bool(response.get("ok")),
            degraded=bool(response.get("degraded")),
            result=response.get("result") or {},
            error_code=str(error.get("code", "")),
            error_message=str(error.get("message", "")),
            attempts=int(response.get("attempts", 1)),
            elapsed=time.perf_counter() - began,
        )

    def query(self, op: str, batch: int = 1) -> dict:
        """Registry-only lookup; returns the result dict (``found`` key)."""
        return self.call("query", {"op": op, "batch": batch}).get("result") or {}

    def ping(self) -> bool:
        response = self.call("ping")
        return bool(response.get("ok")) and bool(
            (response.get("result") or {}).get("pong")
        )

    def stats(self) -> dict:
        return self.call("stats").get("result") or {}
