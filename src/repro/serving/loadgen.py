"""Closed-loop load generator for the network tuning front end.

:func:`run_load` replays multi-tenant traffic against a running
:class:`~repro.serving.server.ServingServer`: ``clients`` threads each issue
``requests_per_client`` tune calls in closed loop (next request only after
the previous response), drawing workloads from a **Zipf-distributed
popularity** ranking over the operator-class × batch universe — a few
workloads dominate, a long tail stays rare, which is exactly the traffic
shape that makes the registry + coalescing architecture pay off — and
arriving in **bursts** (``burst`` back-to-back requests, then a
``pause``-second gap) to stress admission rather than trickling.

The report (``repro-loadgen/1``) carries client-observed p50/p95/p99/max
response latency, the outcome census (ok / degraded / rate_limited /
timeout / ...), the registry **hit rate** over answered requests, the
**shed rate**, and the server's own counters.  Invariants the benchmark
gate checks (see ``benchmarks/perf/loadgen.py --check``): every request is
answered — transport failures after bounded retry are counted, never
ignored — and every shed answer is degraded with zero fresh trials.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.serving.netclient import NetClientError, TuningClient

__all__ = [
    "HIT_RATE_FLOOR",
    "LoadGenConfig",
    "check_report",
    "percentile",
    "run_load",
]

#: Conservative floor for the registry hit rate under the default Zipf
#: workload (skew 1.1 over 8 workloads, >= 40 requests): once the head
#: workloads are tuned, the bulk of the remaining traffic hits the registry.
HIT_RATE_FLOOR = 0.3

#: Default workload universe: (operator class, batch), most popular first
#: once Zipf weights are applied to the ranking.
DEFAULT_UNIVERSE: Tuple[Tuple[str, int], ...] = (
    ("GEMM-S", 1),
    ("GEMM-S", 2),
    ("C1D", 1),
    ("GEMM-M", 1),
    ("GEMM-S", 4),
    ("C1D", 2),
    ("GEMM-M", 2),
    ("T2D", 1),
)


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of the replayed traffic (see the module docstring)."""

    clients: int = 4
    requests_per_client: int = 25
    trials: int = 4
    zipf_s: float = 1.1      # popularity skew; larger = more head-heavy
    burst: int = 4           # back-to-back requests per burst
    pause: float = 0.02      # gap between bursts, seconds
    seed: int = 0
    timeout: float = 60.0
    max_retries: int = 2
    universe: Tuple[Tuple[str, int], ...] = DEFAULT_UNIVERSE


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(int(round(q / 100.0 * len(sorted_values) + 0.5)) - 1, 0)
    return float(sorted_values[min(rank, len(sorted_values) - 1)])


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


@dataclass
class _ClientTally:
    latencies: List[float] = field(default_factory=list)
    outcomes: dict = field(default_factory=dict)
    hits: int = 0
    degraded_with_trials: int = 0
    unanswered: int = 0

    def count(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1


def _client_loop(host: str, port: int, cfg: LoadGenConfig, index: int,
                 tally: _ClientTally) -> None:
    rng = random.Random(cfg.seed * 7919 + index)
    weights = _zipf_weights(len(cfg.universe), cfg.zipf_s)
    tenant = f"tenant-{index % max(cfg.clients // 2, 1)}"
    with TuningClient(host, port, timeout=cfg.timeout,
                      max_retries=cfg.max_retries) as client:
        for issued in range(cfg.requests_per_client):
            if cfg.burst > 0 and issued and issued % cfg.burst == 0:
                time.sleep(cfg.pause)
            op, batch = rng.choices(cfg.universe, weights=weights, k=1)[0]
            began = time.perf_counter()
            try:
                reply = client.tune(op, batch=batch, trials=cfg.trials,
                                    tenant=tenant)
            except NetClientError:
                # Bounded retry exhausted: counted, never silently ignored.
                tally.unanswered += 1
                tally.count("transport_failed")
                continue
            tally.latencies.append(time.perf_counter() - began)
            if reply.ok:
                tally.count("degraded" if reply.degraded else "ok")
                if reply.source == "registry-hit":
                    tally.hits += 1
                if reply.degraded and reply.trials_used > 0:
                    tally.degraded_with_trials += 1
            else:
                tally.count(reply.error_code or "error")


def check_report(report: dict, hit_rate_floor: float = HIT_RATE_FLOOR) -> List[str]:
    """Machine-independent serving-invariant failures (empty = pass).

    Checked by ``benchmarks/perf/loadgen.py --check`` and ``repro bench-load
    --check``; deliberately latency-free so it cannot flake across runners:

    * every request is answered — no silent drops, no unbounded hangs,
    * every degraded (shed) answer consumed zero fresh trials,
    * the Zipf head makes the registry pay off (hit rate over a floor),
    * the percentile fields dashboards consume are present and ordered.
    """
    failures: List[str] = []
    if report["unanswered"] != 0:
        failures.append(
            f"{report['unanswered']} request(s) were never answered "
            "(transport retries exhausted) — the server dropped load silently"
        )
    if report["answered"] != report["requests"]:
        failures.append(
            f"answered {report['answered']} != issued {report['requests']}"
        )
    if report["degraded_with_trials"] != 0:
        failures.append(
            f"{report['degraded_with_trials']} degraded answer(s) consumed "
            "fresh trials — shed responses must be registry-only"
        )
    if report["hit_rate"] < hit_rate_floor:
        failures.append(
            f"registry hit rate {report['hit_rate']:.2f} below the "
            f"{hit_rate_floor} floor — the Zipf head is not being reused"
        )
    p = report["latency_ms"]
    if not (0 <= p["p50"] <= p["p95"] <= p["p99"]):
        failures.append(f"percentiles out of order: {p}")
    return failures


def run_load(host: str, port: int, config: Optional[LoadGenConfig] = None) -> dict:
    """Replay the configured traffic; returns the ``repro-loadgen/1`` report."""
    config = config if config is not None else LoadGenConfig()
    tallies = [_ClientTally() for _ in range(config.clients)]
    began = time.perf_counter()
    threads = [
        threading.Thread(
            target=_client_loop, args=(host, port, config, index, tallies[index]),
            name=f"loadgen-{index}", daemon=True,
        )
        for index in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began

    latencies = sorted(lat for tally in tallies for lat in tally.latencies)
    outcomes: dict = {}
    for tally in tallies:
        for outcome, count in tally.outcomes.items():
            outcomes[outcome] = outcomes.get(outcome, 0) + count
    requests = config.clients * config.requests_per_client
    answered = len(latencies)
    hits = sum(tally.hits for tally in tallies)
    shed = outcomes.get("degraded", 0) + outcomes.get("overloaded", 0)

    stats: dict = {}
    try:
        with TuningClient(host, port, timeout=config.timeout) as client:
            stats = client.stats()
    except (NetClientError, OSError):
        pass  # a report without server counters is still a report

    return {
        "schema": "repro-loadgen/1",
        "config": {
            "clients": config.clients,
            "requests_per_client": config.requests_per_client,
            "trials": config.trials,
            "zipf_s": config.zipf_s,
            "burst": config.burst,
            "pause": config.pause,
            "seed": config.seed,
            "universe": [list(item) for item in config.universe],
        },
        "requests": requests,
        "answered": answered,
        "unanswered": sum(tally.unanswered for tally in tallies),
        "wall_seconds": wall,
        "throughput_rps": answered / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 50) * 1e3,
            "p95": percentile(latencies, 95) * 1e3,
            "p99": percentile(latencies, 99) * 1e3,
            "mean": (sum(latencies) / answered * 1e3) if answered else 0.0,
            "max": (latencies[-1] * 1e3) if latencies else 0.0,
        },
        "outcomes": outcomes,
        "hit_rate": hits / answered if answered else 0.0,
        "shed_rate": shed / requests if requests else 0.0,
        "degraded_with_trials": sum(t.degraded_with_trials for t in tallies),
        "server": stats,
    }
