"""Asyncio network front end over the :class:`~repro.serving.service.TuningService`.

:class:`ServingServer` turns the in-process tuning service into a
long-running TCP endpoint, so the paper's tuning-as-a-service story (O(1)
registry hits, coalesced in-flight jobs, gradient-allocated budgets) holds
for *real* concurrent clients over a wire.

Wire protocol
-------------
Newline-delimited JSON-RPC: every request is one JSON object on one line —
``{"id": ..., "method": ..., "params": {...}}`` — and every response is one
line ``{"id": ..., "ok": bool, "degraded": bool, "result": ...}`` (or
``"error": {"code", "message"}`` when ``ok`` is false).  Methods:

``tune``
    ``params = {"op", "batch", "trials", "tenant", "force_tune"}`` — the
    operator classes of :data:`~repro.experiments.operator_suite.OPERATOR_CLASSES`.
    Answered with the workload's best latency/throughput, trials consumed
    and result source (``registry-hit`` / ``scheduled`` / ``coalesced``).
``query``
    Registry-only lookup; never tunes.
``stats`` / ``ping``
    Server + service counters; liveness probe.

Admission control and degradation
---------------------------------
All admission decisions happen in the event loop, before any tuning work:

1. **Per-tenant token bucket** (``rate`` tokens/s, ``burst`` capacity) —
   rejected requests get the explicit error code ``rate_limited``.
2. **Per-tenant trial quota** — the request's trial budget is *reserved*
   at admission and settled to the trials actually consumed on completion
   (so registry hits are nearly free); exceeding it answers
   ``quota_exceeded``.
3. **Registry fast path** — an exact fingerprint hit is answered inline
   from the event loop without consuming an admission slot, keeping the
   O(1) story intact under load.
4. **Bounded admission** — at most ``max_inflight`` tuning requests hold
   slots at once.  When saturated the server *sheds load* instead of
   queueing without bound: the request is answered registry-only with an
   explicit ``degraded: true`` flag (a stored best if one exists, the
   error code ``overloaded`` otherwise).  A shed request is never left
   hanging and never dropped silently.

Admitted requests are driven by a small worker-thread pool through the
service's ``submit``/``advance`` API; the handler awaits the worker with a
``request_timeout`` and answers the explicit error code ``timeout`` when it
expires (the slot is released when the worker finishes, so a wedged backend
still backpressures admission).

Fault points: ``server.accept`` fires in the worker between dequeue and
tuning (``slow_disk`` stalls the backend, ``crash`` drops the connection
without a response — the client's bounded retry covers it) and
``server.shed`` fires while answering a shed request.  See
:mod:`repro.faults` and the ``timeout.enforced`` / ``retry.bounded`` /
``shed.answers_from_registry`` gate obligations.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.experiments.operator_suite import representative_dag
from repro.faults.plan import poll as poll_fault
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.trace import span as obs_span, trace_event
from repro.serving.fingerprint import structural_fingerprint
from repro.serving.service import TuningRequest, TuningService

__all__ = ["ServerConfig", "ServingServer"]

_REQUESTS = counter("server.requests", "Wire requests received by the network front end")
_ACCEPTED = counter("server.accepted", "Tune requests admitted to the worker pool")
_FAST_HITS = counter("server.fast_hits", "Tune requests answered inline from the registry")
_SHED = counter("server.shed", "Tune requests shed (answered registry-only, degraded)")
_RATE_LIMITED = counter("server.rate_limited", "Requests rejected by the token bucket")
_QUOTA_REJECTED = counter("server.quota_rejected", "Requests rejected by the tenant quota")
_TIMEOUTS = counter("server.timeouts", "Requests answered with the timeout error code")
_DEGRADED = counter("server.degraded", "Responses carrying the degraded flag")
_DROPPED = counter("server.dropped", "Connections dropped by an injected accept fault")
_QUEUE_DEPTH = gauge("server.queue_depth", "Tune requests currently holding admission slots")
_REQUEST_SECONDS = histogram(
    "server.request_seconds", help="Wire latency from request read to response write"
)

#: Worker-side sentinel: answer nothing and close the connection (models a
#: backend that died mid-request; the client's bounded retry recovers it).
_DROP = object()


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the network front end.

    ``port=0`` binds an ephemeral port (read the real one off
    :attr:`ServingServer.port` after start).  ``rate <= 0`` disables rate
    limiting, ``quota <= 0`` disables quotas, and ``round_measures`` caps the
    trials of each ``advance`` round a worker drives (``None`` = drive each
    job's full remaining budget per round).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 4
    workers: int = 2
    request_timeout: float = 30.0
    rate: float = 0.0        # tokens (requests) per second per tenant
    burst: int = 8           # token-bucket capacity per tenant
    quota: int = 0           # max total measurement trials per tenant
    round_measures: Optional[int] = None
    max_line_bytes: int = 1 << 20


class _TokenBucket:
    """Classic token bucket; one per tenant, touched only in the event loop."""

    def __init__(self, rate: float, burst: int):
        self.rate = float(rate)
        self.burst = max(int(burst), 1)
        self.tokens = float(self.burst)
        self.last = time.monotonic()

    def admit(self) -> bool:
        now = time.monotonic()
        self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ServingServer:
    """Long-running TCP front end over one :class:`TuningService`.

    The asyncio event loop runs in a dedicated background thread (so the
    server composes with synchronous tests and the CLI), admitted requests
    are driven by ``config.workers`` worker threads, and the whole thing is
    a context manager::

        with ServingServer(service) as server:
            client = TuningClient("127.0.0.1", server.port)
            reply = client.tune("GEMM-S")
    """

    def __init__(self, service: TuningService, config: Optional[ServerConfig] = None):
        self.service = service
        self.config = config or ServerConfig()
        self.host = self.config.host
        self.port: Optional[int] = None
        # Wire-visible counters, mirrored as server.* metrics.
        self.requests = 0
        self.accepted = 0
        self.fast_hits = 0
        self.shed = 0
        self.rate_limited = 0
        self.quota_rejected = 0
        self.timeouts = 0
        self.dropped = 0
        self._buckets: Dict[str, _TokenBucket] = {}
        # Loop-confined admission state: _quota_used and _inflight are only
        # ever touched on the event-loop thread.  Workers report completions
        # via loop.call_soon_threadsafe (see _worker_loop), so no threading
        # lock is held inside async handlers — a blocking lock there would
        # park the whole loop, not just one task.
        self._quota_used: Dict[str, int] = {}
        self._dags: Dict[Tuple[str, int], object] = {}
        self._slots = threading.BoundedSemaphore(max(self.config.max_inflight, 1))
        self._inflight = 0
        self._work: "queue.Queue" = queue.Queue()
        self._workers: list = []
        self._stop = threading.Event()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._conn_tasks: set = set()
        self._writers: set = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="serving-server", daemon=True
        )
        self._thread.start()
        for index in range(max(self.config.workers, 1)):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serving-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if self.port is None:
            raise RuntimeError("server failed to bind within 10s")
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting, wake the loop, and join workers (idempotent)."""
        self._stop.set()
        if self._loop is not None and self._closing is not None:
            try:
                self._loop.call_soon_threadsafe(self._closing.set)
            except RuntimeError:
                pass  # loop already closed
        for _worker in self._workers:
            self._work.put(None)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._closing = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        self.port = server.sockets[0].getsockname()[1]
        trace_event("server.started", host=self.host, port=self.port)
        self._started.set()
        async with server:
            await self._closing.wait()
        # Drain open connections instead of letting asyncio.run() cancel the
        # handler tasks mid-await (which is noisy and skips their cleanup):
        # closing the transports makes every pending readline return EOF.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=2.0)
        trace_event("server.stopped", port=self.port)

    # ------------------------------------------------------------------ #
    # connection handling (event loop)
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        self._conn_tasks.add(asyncio.current_task())
        self._writers.add(writer)
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(writer, self._error(None, "bad_request",
                                                          "request line too long"))
                    break
                if not line:
                    break
                began = time.perf_counter()
                self.requests += 1
                _REQUESTS.inc()
                response = await self._dispatch(line)
                _REQUEST_SECONDS.observe(time.perf_counter() - began)
                if response is _DROP:
                    break  # close without replying; client retry covers it
                await self._write(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _write(writer, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    @staticmethod
    def _error(request_id, code: str, message: str, degraded: bool = False) -> dict:
        if degraded:
            _DEGRADED.inc()
        return {
            "id": request_id,
            "ok": False,
            "degraded": degraded,
            "error": {"code": code, "message": message},
        }

    @staticmethod
    def _answer(request_id, result: dict, degraded: bool = False) -> dict:
        if degraded:
            _DEGRADED.inc()
        return {"id": request_id, "ok": True, "degraded": degraded, "result": result}

    async def _dispatch(self, line: bytes):
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return self._error(None, "bad_request", f"unparseable request: {exc}")
        request_id = message.get("id")
        method = message.get("method")
        params = message.get("params") or {}
        if not isinstance(params, dict):
            return self._error(request_id, "bad_request", "params must be an object")
        if method == "ping":
            return self._answer(request_id, {"pong": True})
        if method == "stats":
            return self._answer(request_id, self.stats())
        if method == "query":
            return self._query(request_id, params)
        if method == "tune":
            return await self._tune(request_id, params)
        return self._error(request_id, "bad_request", f"unknown method {method!r}")

    def _dag_of(self, params: dict):
        op = str(params.get("op", "GEMM-S"))
        batch = int(params.get("batch", 1))
        key = (op, batch)
        dag = self._dags.get(key)
        if dag is None:
            # One DAG instance per (op, batch) keeps the memoised fingerprint
            # and embedding hot and coalesces identical wire requests onto
            # identical structural keys.
            dag = representative_dag(op, batch=batch)
            self._dags[key] = dag
        return dag

    def _query(self, request_id, params: dict):
        try:
            dag = self._dag_of(params)
        except (KeyError, TypeError, ValueError) as exc:
            return self._error(request_id, "bad_request", str(exc))
        entry = self.service.registry.lookup(
            structural_fingerprint(dag), self.service.target, k=0
        ).entry
        if entry is None:
            return self._answer(request_id, {"found": False, "workload": dag.name})
        return self._answer(request_id, {
            "found": True,
            "workload": entry.workload,
            "latency": entry.latency,
            "throughput": entry.throughput,
            "trials": entry.trials,
            "scheduler": entry.scheduler,
            "source": entry.source,
        })

    async def _tune(self, request_id, params: dict):
        try:
            dag = self._dag_of(params)
            trials = int(params.get("trials", 16))
            tenant = str(params.get("tenant", "default"))
            force_tune = bool(params.get("force_tune", False))
        except (KeyError, TypeError, ValueError) as exc:
            return self._error(request_id, "bad_request", str(exc))

        # 1. Token bucket.
        if self.config.rate > 0:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _TokenBucket(
                    self.config.rate, self.config.burst
                )
            if not bucket.admit():
                self.rate_limited += 1
                _RATE_LIMITED.inc()
                return self._error(
                    request_id, "rate_limited",
                    f"tenant {tenant!r} exceeded {self.config.rate:g} req/s "
                    f"(burst {self.config.burst})",
                )

        # 2. Trial quota (reserve now, settle to actual consumption later).
        # Loop-confined: no await between the read and the write, so the
        # check-and-reserve is atomic without any lock.
        if self.config.quota > 0:
            used = self._quota_used.get(tenant, 0)
            if used + trials > self.config.quota:
                self.quota_rejected += 1
                _QUOTA_REJECTED.inc()
                return self._error(
                    request_id, "quota_exceeded",
                    f"tenant {tenant!r} has {self.config.quota - used} of "
                    f"{self.config.quota} trials left; requested {trials}",
                )
            self._quota_used[tenant] = used + trials

        fingerprint = structural_fingerprint(dag)
        entry = None
        if not force_tune:
            entry = self.service.registry.lookup(
                fingerprint, self.service.target, k=0
            ).entry

        # 3. Registry fast path: answered inline, no admission slot burned.
        if entry is not None:
            self.fast_hits += 1
            _FAST_HITS.inc()
            self._settle_quota(tenant, reserved=trials, used=0)
            return self._answer(request_id, self._entry_result(entry, source="registry-hit"))

        # 4. Bounded admission; saturated -> shed, never queue unboundedly.
        if not self._slots.acquire(blocking=False):
            return self._shed_answer(request_id, dag, fingerprint, tenant, trials)

        self.accepted += 1
        _ACCEPTED.inc()
        self._inflight += 1
        _QUEUE_DEPTH.set(self._inflight)
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self._work.put((dag, trials, tenant, force_tune, future,
                        asyncio.get_running_loop()))
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(future), timeout=self.config.request_timeout
            )
        except asyncio.TimeoutError:
            self.timeouts += 1
            _TIMEOUTS.inc()
            trace_event("server.timeout", tenant=tenant, workload=dag.name)
            return self._error(
                request_id, "timeout",
                f"request exceeded {self.config.request_timeout:g}s "
                f"(workload {dag.name}); the job keeps its admission slot "
                "until the backend finishes",
            )
        if payload is _DROP:
            self.dropped += 1
            _DROPPED.inc()
            return _DROP
        if "error" in payload:
            return self._error(request_id, "internal", payload["error"])
        return self._answer(request_id, payload)

    def _entry_result(self, entry, source: str) -> dict:
        return {
            "workload": entry.workload,
            "latency": entry.latency,
            "throughput": entry.throughput,
            "trials_used": 0,
            "source": source,
        }

    def _shed_answer(self, request_id, dag, fingerprint: str, tenant: str, trials: int):
        """Answer a saturated request registry-only, flagged ``degraded``."""
        self.shed += 1
        _SHED.inc()
        self._settle_quota(tenant, reserved=trials, used=0)
        trace_event("server.shed", tenant=tenant, workload=dag.name)
        fired = poll_fault("server.shed", detail=f"{tenant}:{dag.name}")
        if fired is not None:
            if fired.spec.kind == "slow_disk":
                fired.sleep()
            else:
                # A failure while shedding behaves like a dead backend: drop
                # the connection; the client's bounded retry re-asks and the
                # next shed (or admission) answers.
                self.dropped += 1
                _DROPPED.inc()
                return _DROP
        entry = self.service.registry.lookup(fingerprint, self.service.target, k=0).entry
        if entry is None:
            return self._error(
                request_id, "overloaded",
                f"server saturated ({self.config.max_inflight} in flight) and "
                f"the registry holds no entry for {dag.name}; retry later",
                degraded=True,
            )
        return self._answer(
            request_id,
            self._entry_result(entry, source="registry-hit"),
            degraded=True,
        )

    def _settle_quota(self, tenant: str, reserved: int, used: int) -> None:
        """Release the reserved-but-unused part of a tenant's quota.

        Loop-confined: only ever called on the event-loop thread (inline from
        the fast/shed paths, or via the completion callback workers post).
        """
        if self.config.quota > 0 and reserved > used:
            self._quota_used[tenant] = max(
                self._quota_used.get(tenant, 0) - (reserved - used), 0
            )

    def _complete_request(self, tenant: str, reserved: int, future, payload) -> None:
        """Loop-confined completion of one admitted request.

        Posted by workers via ``call_soon_threadsafe``: drops the inflight
        count, settles the tenant's quota to actual consumption, and resolves
        the handler's future — all on the loop thread, so none of the state
        it touches needs a lock.  Quota is only settled when the backend
        produced a real result (``trials_used`` present): an exception or a
        dropped connection keeps the reservation, exactly as before.
        """
        self._inflight -= 1
        _QUEUE_DEPTH.set(self._inflight)
        if isinstance(payload, dict) and "trials_used" in payload:
            self._settle_quota(tenant, reserved=reserved, used=int(payload["trials_used"]))
        _resolve(future, payload)

    # ------------------------------------------------------------------ #
    # worker pool (threads)
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            dag, trials, tenant, force_tune, future, loop = item
            try:
                payload = self._drive(dag, trials, tenant, force_tune)
            except Exception as exc:  # resolved as a wire error
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            finally:
                self._slots.release()
            try:
                loop.call_soon_threadsafe(
                    self._complete_request, tenant, trials, future, payload
                )
            except RuntimeError:
                pass  # loop shut down while we were tuning

    def _drive(self, dag, trials: int, tenant: str, force_tune: bool):
        fired = poll_fault("server.accept", detail=f"{tenant}:{dag.name}")
        if fired is not None:
            if fired.spec.kind == "slow_disk":
                fired.sleep()  # wedged backend: the handler's timeout answers
            else:
                return _DROP
        with obs_span("server.job", workload=dag.name, tenant=tenant) as job_span:
            handle = self.service.submit(TuningRequest(
                dag=dag, n_trials=trials, tenant=tenant, force_tune=force_tune
            ))
            while not handle.done and not self._stop.is_set():
                self.service.advance(handle, max_measures=self.config.round_measures)
            if not handle.done:
                # Server shutdown mid-job: flush best-so-far so no waiter
                # (local or coalesced) is stranded.
                self.service.finish(handle)
            result = handle.result
            job_span.annotate(source=handle.source, trials=result.trials_used)
        # Quota settling happens loop-side in _complete_request, keyed off the
        # trials_used field below; workers never touch admission state.
        payload = {
            "workload": result.workload,
            "latency": result.best_latency,
            "throughput": result.best_throughput,
            "trials_used": result.trials_used,
            "source": handle.source,
        }
        if "error" in result.extras:
            payload["error"] = result.extras["error"]
        return payload

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Server + service counters, as served by the ``stats`` method.

        Counters are loop-confined ints; reading them from another thread
        (the CLI does, after shutdown) yields a GIL-atomic snapshot.
        """
        return {
            "requests": self.requests,
            "accepted": self.accepted,
            "fast_hits": self.fast_hits,
            "shed": self.shed,
            "rate_limited": self.rate_limited,
            "quota_rejected": self.quota_rejected,
            "timeouts": self.timeouts,
            "dropped": self.dropped,
            "inflight": self._inflight,
            "service": {
                "jobs_created": self.service.jobs_created,
                "registry_hits": self.service.registry_hits,
                "coalesced_requests": self.service.coalesced_requests,
                "aborted_jobs": self.service.aborted_jobs,
                "registry_entries": len(self.service.registry),
            },
        }


def _resolve(future: "asyncio.Future", payload) -> None:
    if not future.done():
        future.set_result(payload)
