"""Serving subsystem: workload fingerprints, schedule registry, tuning service.

Three layers turn the per-run tuner into a shared, reusable system:

* :mod:`repro.serving.fingerprint` — canonical label-invariant workload
  identity and similarity embeddings,
* :mod:`repro.serving.registry` — the persistent sharded best-schedule
  database with nearest-neighbour transfer lookup,
* :mod:`repro.serving.service` — the multi-tenant tuning front end with
  request coalescing and gradient-allocated budgets.

Submodules are imported lazily so low-level modules (``repro.records``) can
use the fingerprint helpers without pulling in the registry/service layers
(which themselves build on ``repro.records``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "structural_fingerprint",
    "workload_embedding",
    "embedding_distance",
    "RegistryEntry",
    "ScheduleRegistry",
    "TransferCandidate",
    "TuningRequest",
    "JobHandle",
    "TuningService",
]

_EXPORTS = {
    "structural_fingerprint": "repro.serving.fingerprint",
    "workload_embedding": "repro.serving.fingerprint",
    "embedding_distance": "repro.serving.fingerprint",
    "RegistryEntry": "repro.serving.registry",
    "ScheduleRegistry": "repro.serving.registry",
    "TransferCandidate": "repro.serving.registry",
    "TuningRequest": "repro.serving.service",
    "JobHandle": "repro.serving.service",
    "TuningService": "repro.serving.service",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.serving.fingerprint import (  # noqa: F401
        embedding_distance,
        structural_fingerprint,
        workload_embedding,
    )
    from repro.serving.registry import (  # noqa: F401
        RegistryEntry,
        ScheduleRegistry,
        TransferCandidate,
    )
    from repro.serving.service import (  # noqa: F401
        JobHandle,
        TuningRequest,
        TuningService,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
