"""Serving subsystem: workload fingerprints, schedule registry, tuning service.

Three layers turn the per-run tuner into a shared, reusable system:

* :mod:`repro.serving.fingerprint` — canonical label-invariant workload
  identity and similarity embeddings,
* :mod:`repro.serving.registry` — the persistent sharded best-schedule
  database with nearest-neighbour transfer lookup,
* :mod:`repro.serving.service` — the multi-tenant tuning front end with
  request coalescing and gradient-allocated budgets,
* :mod:`repro.serving.server` / :mod:`repro.serving.netclient` — the
  long-running asyncio network front end (newline-delimited JSON-RPC over
  TCP) with admission control, per-tenant rate limits/quotas and degraded
  load shedding, plus the bounded-retry wire client,
* :mod:`repro.serving.loadgen` — the closed-loop Zipf/burst load generator
  behind ``make serve-load`` and ``repro bench-load``.

Submodules are imported lazily so low-level modules (``repro.records``) can
use the fingerprint helpers without pulling in the registry/service layers
(which themselves build on ``repro.records``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "structural_fingerprint",
    "workload_embedding",
    "embedding_distance",
    "LookupResult",
    "RegistryEntry",
    "ScheduleRegistry",
    "TransferCandidate",
    "TuningRequest",
    "JobHandle",
    "TuningService",
    "ServerConfig",
    "ServingServer",
    "NetClientError",
    "TuneReply",
    "TuningClient",
    "LoadGenConfig",
    "run_load",
]

_EXPORTS = {
    "structural_fingerprint": "repro.serving.fingerprint",
    "workload_embedding": "repro.serving.fingerprint",
    "embedding_distance": "repro.serving.fingerprint",
    "LookupResult": "repro.serving.registry",
    "RegistryEntry": "repro.serving.registry",
    "ScheduleRegistry": "repro.serving.registry",
    "TransferCandidate": "repro.serving.registry",
    "TuningRequest": "repro.serving.service",
    "JobHandle": "repro.serving.service",
    "TuningService": "repro.serving.service",
    "ServerConfig": "repro.serving.server",
    "ServingServer": "repro.serving.server",
    "NetClientError": "repro.serving.netclient",
    "TuneReply": "repro.serving.netclient",
    "TuningClient": "repro.serving.netclient",
    "LoadGenConfig": "repro.serving.loadgen",
    "run_load": "repro.serving.loadgen",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.serving.fingerprint import (  # noqa: F401
        embedding_distance,
        structural_fingerprint,
        workload_embedding,
    )
    from repro.serving.registry import (  # noqa: F401
        LookupResult,
        RegistryEntry,
        ScheduleRegistry,
        TransferCandidate,
    )
    from repro.serving.service import (  # noqa: F401
        JobHandle,
        TuningRequest,
        TuningService,
    )
    from repro.serving.loadgen import LoadGenConfig, run_load  # noqa: F401
    from repro.serving.netclient import (  # noqa: F401
        NetClientError,
        TuneReply,
        TuningClient,
    )
    from repro.serving.server import ServerConfig, ServingServer  # noqa: F401


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
