"""Multi-tenant tuning service with request coalescing and warm starts.

:class:`TuningService` is the front door of the serving subsystem: clients
submit :class:`TuningRequest`\\ s (possibly concurrently, from several
tenants) and get back a :class:`JobHandle` immediately.  The service then

* answers **registry hits** in O(1) — a workload whose structural fingerprint
  is already in the :class:`~repro.serving.registry.ScheduleRegistry` gets
  the stored best schedule back without consuming a single measurement trial,
* **coalesces** duplicate in-flight requests — N concurrent submissions of
  structurally identical workloads share one tuning job (the duplicates'
  tenants just add weight to the job's budget priority),
* **allocates each round's measurement budget** across the active jobs with
  the same gradient estimator that drives Ansor's task scheduler and HARL's
  subgraph bandit (:func:`~repro.core.subgraph_reward.normalized_rewards`),
* **streams every outcome** into the registry (and an optional
  :class:`~repro.records.RecordStore`), so completed jobs warm-start future
  requests across process boundaries.

Submission is thread-safe; the search itself is driven cooperatively by
:meth:`TuningService.run` (or :meth:`process`, which submits a batch and
runs it to completion), which keeps results bit-deterministic for a fixed
seed regardless of how many clients submitted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.caching import cached_lowering
from repro.core.config import HARLConfig
from repro.core.scheduler import HARLScheduler
from repro.core.subgraph_reward import SubgraphState, normalized_rewards
from repro.core.tuner import TuningResult
from repro.faults.plan import InjectedCrash, poll as poll_fault
from repro.hardware.target import HardwareTarget, cpu_target
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span as obs_span, trace_event
from repro.serving.fingerprint import structural_fingerprint
from repro.serving.registry import ScheduleRegistry
from repro.tensor.dag import ComputeDAG

__all__ = ["TuningRequest", "JobHandle", "TuningService"]

_REQUESTS = counter("service.requests", "Requests submitted to the TuningService")
_REGISTRY_HITS = counter("service.registry_hits", "Requests answered O(1) from the registry")
_COALESCED = counter("service.coalesced", "Requests coalesced onto an in-flight job")
_JOBS_CREATED = counter("service.jobs_created", "Fresh tuning jobs created")
_JOBS_FINISHED = counter("service.jobs_finished", "Jobs flushed to the registry")
_JOBS_ABORTED = counter("service.jobs_aborted", "Jobs torn down after a scheduler error")
_RECOVERED = counter("service.recovered_entries", "Registry entries restored from record logs")
_SUBMIT_TO_FINISH = histogram(
    "service.submit_to_finish_seconds", help="Latency from submit() to handle resolution"
)


@dataclass(frozen=True)
class TuningRequest:
    """One client request: tune ``dag`` on the service's target.

    ``force_tune`` bypasses the registry fast path (the tenant wants fresh
    measurements even if a best-known schedule exists).
    """

    dag: ComputeDAG
    n_trials: int = 64
    scheduler: str = "harl"
    tenant: str = "default"
    force_tune: bool = False


#: How a handle's result was produced.
SOURCE_REGISTRY = "registry-hit"
SOURCE_SCHEDULED = "scheduled"
SOURCE_COALESCED = "coalesced"


@dataclass
class JobHandle:
    """Client-side view of one submitted request.

    ``source`` says whether the answer came straight from the registry, from
    a tuning job created for this request, or from an in-flight job the
    request was coalesced into.  ``result`` is populated when ``done``.
    """

    request: TuningRequest
    fingerprint: str
    source: str
    done: bool = False
    result: Optional[TuningResult] = None
    submitted_at: float = field(default=0.0, repr=False, compare=False)

    def _finish(self, result: TuningResult) -> None:
        self.result = result
        self.done = True
        if self.submitted_at:
            _SUBMIT_TO_FINISH.observe(time.perf_counter() - self.submitted_at)


class _Job:
    """One in-flight tuning job (possibly serving several coalesced handles)."""

    def __init__(self, key: Tuple[str, str], request: TuningRequest, scheduler):
        self.key = key
        self.dag = request.dag
        self.scheduler = scheduler
        self.n_trials = int(request.n_trials)
        self.trials_used = 0  # guarded-by: drive_lock
        # Exactly one round may run per job at a time: concurrent
        # run()/advance() drivers serialize here, and the budget is
        # recomputed under the lock so two drivers can never both pass the
        # remaining-trials check and double-drive the job.
        self.drive_lock = threading.Lock()
        self.finished = False  # guarded-by: drive_lock
        self.handles: List[JobHandle] = []
        self.tenants: List[str] = []
        self.state = SubgraphState(
            name=key[0][:12],
            weight=1.0,
            flops=request.dag.flops,
            # Empty group (untagged workload) matches nothing in the Eq. 3
            # reward, so unrelated untagged jobs never share throughput.
            similarity_group=str(request.dag.tags.get("op") or ""),
        )

    def attach(self, handle: JobHandle, request: TuningRequest) -> None:
        self.handles.append(handle)
        self.tenants.append(request.tenant)
        # A coalesced duplicate raises the job's weight (more tenants are
        # waiting on it) and can only extend, never shrink, its budget.
        self.state.weight = float(len(self.handles))
        self.n_trials = max(self.n_trials, int(request.n_trials))


class TuningService:
    """Asynchronous multi-tenant tuning front end over the schedule registry.

    Parameters
    ----------
    registry:
        Shared :class:`ScheduleRegistry` (defaults to a fresh in-memory one).
        Completed jobs are recorded into it; incoming requests are answered
        from it when possible and warm-started from it otherwise.
    target / config / seed:
        Hardware target, HARL configuration and base seed shared by all jobs.
        Job seeds are derived deterministically from the base seed and the
        job creation index, so a request batch reproduces exactly.
    record_store:
        Optional :class:`~repro.records.RecordStore`; every measurement of
        every job is streamed into it (tagged per workload), giving the
        service one consolidated, resumable measurement log.
    catalog:
        :class:`~repro.hardware.catalog.TargetCatalog` used to resolve donor
        targets for cross-target transfer warm starts (defaults to the
        built-in catalog).  When a workload has no donors on the service's
        own target, the registry borrows the best schedule of the closest
        related device and re-fits it; the donor target is recorded in the
        finished job's registry provenance.
    scheduler_factory:
        Override job construction: ``factory(name, seed, warm_start_provider)
        -> scheduler``.  The default builds :class:`HARLScheduler` /
        :class:`~repro.baselines.ansor.AnsorScheduler` with the service's
        target, config and pipeline.
    warm_start:
        Disable to create jobs cold even when the registry holds relatives
        (used by ablations and tests).
    """

    def __init__(
        self,
        registry: Optional[ScheduleRegistry] = None,
        target: Optional[HardwareTarget] = None,
        config: Optional[HARLConfig] = None,
        seed: int = 0,
        record_store=None,
        num_workers: int = 1,
        scheduler_factory: Optional[Callable[..., object]] = None,
        warm_start: bool = True,
        max_warm_start: int = 6,
        catalog=None,
    ):
        self.registry = registry if registry is not None else ScheduleRegistry()
        self.target = target or cpu_target()
        self.config = config or HARLConfig.scaled()
        self.seed = int(seed)
        self.record_store = record_store
        self.num_workers = int(num_workers)
        self.scheduler_factory = scheduler_factory
        self.warm_start = bool(warm_start)
        self.max_warm_start = int(max_warm_start)
        self.catalog = catalog
        self._lock = threading.Lock()
        self._jobs: Dict[Tuple[str, str], _Job] = {}  # guarded-by: _lock
        self._order: List[Tuple[str, str]] = []  # guarded-by: _lock (FIFO tie-break)
        self._transfer_donors: Dict[str, List[str]] = {}  # guarded-by: _lock
        self._warm_start_donors: Dict[str, List[str]] = {}  # guarded-by: _lock
        self.jobs_created = 0  # guarded-by: _lock
        self.registry_hits = 0  # guarded-by: _lock
        self.coalesced_requests = 0  # guarded-by: _lock
        self.aborted_jobs = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    # job construction
    # ------------------------------------------------------------------ #
    def _warm_start_provider(self):
        if not self.warm_start:
            return None
        registry, target, k = self.registry, self.target, self.max_warm_start

        def provider(dag: ComputeDAG):
            candidates = registry.warm_start_transfers(
                dag, target, max_candidates=k, catalog=self.catalog
            )
            donors = sorted({c.donor.target for c in candidates if c.cross_target})
            workloads = sorted({c.donor.workload for c in candidates})
            if donors or workloads:
                # The fingerprint is memoised on the DAG (submit() already
                # computed it), so this lookup stays outside the lock.
                fingerprint = structural_fingerprint(dag)
                with self._lock:
                    if donors:
                        self._transfer_donors[fingerprint] = donors
                    if workloads:
                        self._warm_start_donors[fingerprint] = workloads
            return [c.schedule for c in candidates]

        return provider

    def _build_scheduler(self, name: str, seed: int):
        provider = self._warm_start_provider()
        if self.scheduler_factory is not None:
            return self.scheduler_factory(name, seed, provider)
        from repro.experiments.runner import make_measurer

        measurer = make_measurer(
            self.target, self.config, seed, self.num_workers, self.record_store
        )
        if name in ("harl", "hierarchical-rl"):
            return HARLScheduler(
                target=self.target,
                config=self.config,
                seed=seed,
                adaptive_stopping=(name == "harl"),
                measurer=measurer,
                record_store=self.record_store,
                warm_start_provider=provider,
            )
        if name == "ansor":
            from repro.baselines.ansor import AnsorConfig, AnsorScheduler

            return AnsorScheduler(
                target=self.target,
                config=AnsorConfig.from_harl(self.config),
                seed=seed,
                measurer=measurer,
                record_store=self.record_store,
                warm_start_provider=provider,
            )
        raise KeyError(f"unknown service scheduler {name!r}")

    def _registry_answer(self, request: TuningRequest, fingerprint: str, entry):
        """Synthesize a zero-trial result from a registry entry.

        Called *outside* the service lock: restoring the stored schedule
        regenerates sketches, which must not serialize concurrent submits.
        """
        from repro.records import schedule_from_dict

        schedule = None
        if entry.schedule is not None:
            try:
                schedule = schedule_from_dict(
                    entry.schedule, request.dag, check_workload=False
                )
            except (KeyError, TypeError, ValueError):
                # Malformed stored schedule: still answer with the recorded
                # latency, just without a restorable schedule object.
                schedule = None
        return TuningResult(
            workload=request.dag.name,
            scheduler="registry",
            best_latency=entry.latency,
            best_throughput=entry.throughput,
            best_schedule=schedule,
            trials_used=0,
            search_steps=0,
            history=[],
            extras={
                "fingerprint": fingerprint,
                "registry_source": entry.source,
                "registry_scheduler": entry.scheduler,
                "registry_trials": entry.trials,
            },
        )

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def submit(self, request: TuningRequest) -> JobHandle:
        """Submit one request; returns immediately with a handle.

        Thread-safe: concurrent submissions of structurally identical
        workloads coalesce onto one job no matter how they interleave.
        """
        submitted_at = time.perf_counter()
        _REQUESTS.inc()
        fingerprint = structural_fingerprint(request.dag)
        if not request.force_tune:
            # Registry hits never create or join jobs, so the whole fast path
            # (including the sketch-regenerating schedule restore) runs
            # without the service lock.
            entry = self.registry.lookup(fingerprint, self.target, k=0).entry
            if entry is not None:
                with self._lock:
                    self.registry_hits += 1
                _REGISTRY_HITS.inc()
                handle = JobHandle(
                    request, fingerprint, SOURCE_REGISTRY, submitted_at=submitted_at
                )
                handle._finish(self._registry_answer(request, fingerprint, entry))
                return handle
        with self._lock:
            key = (fingerprint, self.target.name)
            job = self._jobs.get(key)
            if job is not None:
                self.coalesced_requests += 1
                _COALESCED.inc()
                handle = JobHandle(
                    request, fingerprint, SOURCE_COALESCED, submitted_at=submitted_at
                )
                job.attach(handle, request)
                return handle
            scheduler = self._build_scheduler(
                request.scheduler, self.seed + 7919 * self.jobs_created
            )
            self.jobs_created += 1
            _JOBS_CREATED.inc()
            job = _Job(key, request, scheduler)
            handle = JobHandle(
                request, fingerprint, SOURCE_SCHEDULED, submitted_at=submitted_at
            )
            job.attach(handle, request)
            self._jobs[key] = job
            self._order.append(key)
            return handle

    def active_jobs(self) -> int:
        """Number of jobs currently in flight."""
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------ #
    # driving the search
    # ------------------------------------------------------------------ #
    def _select_job(self, jobs: Sequence[_Job]) -> _Job:
        """Gradient/bandit budget allocation across active jobs.

        Never-tuned jobs warm up first (their reward is +inf-normalised to
        1.0); afterwards the job with the largest expected benefit — Ansor's
        Eq. 3 gradient estimate, weighted by the number of waiting tenants —
        receives the next measurement round.
        """
        rewards = normalized_rewards(
            [job.state for job in jobs],
            alpha=self.config.alpha,
            beta=self.config.beta,
            backward_window=self.config.backward_window,
        )
        return jobs[int(np.argmax(rewards))]

    def run(self, max_rounds: Optional[int] = None) -> int:
        """Drive all in-flight jobs to completion; returns rounds executed.

        Each round the budget allocator picks one job, that job's scheduler
        runs one tuning round (bounded by the job's remaining trial budget),
        and finished jobs are flushed to the registry and their handles.
        """
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            with self._lock:
                jobs = [self._jobs[key] for key in self._order if key in self._jobs]
            if not jobs:
                break
            job = self._select_job(jobs)
            self._drive_round(job)
            rounds += 1
        return rounds

    def _drive_round(self, job: _Job, max_measures: Optional[int] = None) -> int:
        """Run one tuning round on ``job``; returns the trials consumed.

        Shared by :meth:`run` and :meth:`advance`.  The job's drive lock
        serializes concurrent drivers (exactly one round runs per job at a
        time) and the remaining budget is recomputed under it, so racing
        ``run()``/``advance()`` callers cannot double-drive a job past its
        budget or finish it twice.  ``max_measures`` caps this round only; a
        cap of 0 is a budget probe, not exhaustion — it returns 0 without
        touching the job.  A round that genuinely consumes nothing means the
        scheduler is exhausted and the job finishes.

        A scheduler that raises does not strand its waiters: the job is
        aborted (every coalesced handle resolves with an error-tagged result)
        before the exception propagates.  An
        :class:`~repro.faults.plan.InjectedCrash` is the one exception to
        that — it simulates the whole process dying, so nothing (including
        the abort path) may run after it; recovery happens in a fresh service
        via :meth:`recover_from_records`.
        """
        # A zero/negative per-round cap consumes nothing by definition; it
        # must not reach the spent == 0 exhaustion check below, which would
        # prematurely finalize a job that still has budget.
        if max_measures is not None and int(max_measures) <= 0:
            return 0
        with job.drive_lock:
            if job.finished:
                return 0
            budget = job.n_trials - job.trials_used
            if max_measures is not None:
                budget = min(budget, int(max_measures))
            if budget <= 0:
                # Genuine exhaustion: another driver spent the last trials
                # while we waited on the lock.
                self._finish_job_locked(job)
                return 0
            with obs_span(
                "service.round", job=job.key[0][:12], workload=job.dag.name,
                budget=budget,
            ) as round_span:
                try:
                    spent = job.scheduler.tune_round(job.dag, max_measures=budget)
                except InjectedCrash:
                    raise
                except Exception as exc:
                    self._abort_job_locked(job, exc)
                    raise
                job.trials_used += spent
                job.state.record(job.scheduler.measurer.best_latency(job.dag.name))
                round_span.annotate(trials=spent)
                fired = poll_fault("service.advance", detail=job.key[0][:12])
                if fired is not None:
                    fired.crash(
                        f"crash between advance and finish of job {job.key[0][:12]}"
                    )
                if job.trials_used >= job.n_trials or spent == 0:
                    self._finish_job_locked(job)
        return spent

    def _abort_job_locked(self, job: _Job, exc: BaseException) -> None:
        """Tear a failed job down without deadlocking its coalesced waiters.

        Caller holds ``job.drive_lock``.  Every handle resolves with the
        job's best-so-far (when the scheduler
        can still finalize) or an explicit error result, the error is noted in
        ``extras["error"]``, and the job leaves the in-flight table so a
        resubmission starts fresh.
        """
        try:
            result = job.scheduler.finalize(job.dag)
        except Exception:
            result = TuningResult(
                workload=job.dag.name,
                scheduler="aborted",
                best_latency=float("inf"),
                best_throughput=0.0,
                best_schedule=None,
                trials_used=job.trials_used,
                search_steps=0,
                history=[],
            )
        result.extras["fingerprint"] = job.key[0]
        result.extras["tenants"] = list(job.tenants)
        result.extras["error"] = f"{type(exc).__name__}: {exc}"
        try:
            # Salvage whatever the job did measure (record_result ignores
            # inf-latency results, so a scheduler dead on arrival is a no-op).
            self.registry.record_result(
                job.dag, self.target, result, source="service:aborted"
            )
        except Exception:
            pass
        job.finished = True
        with self._lock:
            self._jobs.pop(job.key, None)
            self._order = [key for key in self._order if key != job.key]
            self.aborted_jobs += 1
        _JOBS_ABORTED.inc()
        trace_event(
            "service.aborted", job=job.key[0][:12], error=f"{type(exc).__name__}: {exc}"
        )
        for handle in job.handles:
            handle._finish(result)

    def recover_from_records(self, store=None, source: str = "recovery") -> int:
        """Fold a measurement log's best-per-workload back into the registry.

        This is the restart path for a service that crashed between a round
        commit and the job finish: the measurements were durably streamed to
        the :class:`~repro.records.RecordStore`, but the registry never saw
        the finished job.  Replaying the log's per-fingerprint best restores
        the registry answer the crashed job would have produced.  Idempotent
        (the registry only accepts strict improvements); returns how many
        entries the registry accepted.
        """
        from repro.serving.registry import RegistryEntry

        store = store if store is not None else self.record_store
        if store is None:
            return 0
        with obs_span("service.recover", source=source) as recover_span:
            best: Dict[str, Tuple[float, object]] = {}
            counts: Dict[str, int] = {}
            for rec in store.query(kind="measure"):
                fingerprint = getattr(rec, "fingerprint", "") or ""
                if not fingerprint:
                    continue
                counts[fingerprint] = counts.get(fingerprint, 0) + 1
                held = best.get(fingerprint)
                if held is None or rec.latency < held[0]:
                    best[fingerprint] = (rec.latency, rec)
            accepted = 0
            for fingerprint, (latency, rec) in best.items():
                entry = RegistryEntry(
                    fingerprint=fingerprint,
                    target=self.target.name,
                    workload=rec.workload,
                    latency=float(latency),
                    throughput=float(rec.throughput),
                    trials=counts[fingerprint],
                    scheduler=rec.scheduler or "recovered",
                    schedule=rec.schedule,
                    # Recovered entries keep the embedding the measurement
                    # persisted, so they stay visible to nearest() and
                    # cross-target transfer after a crash (legacy logs
                    # without embeddings recover with an empty one).
                    embedding=tuple(getattr(rec, "embedding", ()) or ()),
                    source=source,
                )
                if self.registry.record(entry):
                    accepted += 1
            recover_span.annotate(workloads=len(best), accepted=accepted)
        _RECOVERED.inc(accepted)
        trace_event("service.recovered", accepted=accepted, workloads=len(best))
        return accepted

    def _finish_job_locked(self, job: _Job) -> None:
        # Caller holds job.drive_lock: finishing must not race another round.
        with obs_span("service.finish", job=job.key[0][:12], workload=job.dag.name):
            self._finish_job_inner_locked(job)
        _JOBS_FINISHED.inc()

    def _finish_job_inner_locked(self, job: _Job) -> None:
        job.finished = True
        result = job.scheduler.finalize(job.dag)
        result.extras["fingerprint"] = job.key[0]
        result.extras["tenants"] = list(job.tenants)
        if result.best_schedule is not None:
            # Lowered program text for clients / reports; memoised by schedule
            # signature, so repeated finalizes of one job (or the same best
            # schedule resurfacing across jobs) lower exactly once.
            result.extras["program"] = cached_lowering(result.best_schedule)
        with self._lock:
            donors = self._transfer_donors.pop(job.key[0], [])
            warm_donors = self._warm_start_donors.pop(job.key[0], [])
        if donors:
            result.extras["transfer_donors"] = donors
        if warm_donors:
            result.extras["warm_start_donors"] = warm_donors
        self.registry.record_result(
            job.dag,
            self.target,
            result,
            source=f"service:{','.join(sorted(set(job.tenants)))}",
            donor_target=",".join(donors),
        )
        with self._lock:
            self._jobs.pop(job.key, None)
            # Prune the FIFO too: a later force_tune resubmission of the same
            # key must not appear twice in the allocation snapshot.
            self._order = [key for key in self._order if key != job.key]
        for handle in job.handles:
            handle._finish(result)

    # ------------------------------------------------------------------ #
    # external round drivers (network tuning)
    # ------------------------------------------------------------------ #
    def _job_of(self, handle: JobHandle) -> Optional[_Job]:
        with self._lock:
            return self._jobs.get((handle.fingerprint, self.target.name))

    def advance(self, handle: JobHandle, max_measures: Optional[int] = None) -> int:
        """Run one tuning round on the job serving ``handle``.

        This is the hook for drivers that own the budget-allocation policy
        themselves (the :class:`~repro.experiments.network_runner.NetworkTuner`
        allocates rounds across a network's subgraphs with the Eq. 3 gradient
        or the HARL bandit) instead of delegating to :meth:`run`.  Returns the
        measurement trials consumed — 0 when the handle is already done
        (registry hit, or its job finished through a coalesced sibling), or
        when ``max_measures=0`` (a budget probe — the job stays active).
        The job is finished (flushed to the registry, all its handles
        resolved) once its trial budget is exhausted or an unconstrained
        round consumes nothing.
        """
        if handle.done:
            return 0
        job = self._job_of(handle)
        if job is None:
            return 0
        return self._drive_round(job, max_measures=max_measures)

    def finish(self, handle: JobHandle) -> TuningResult:
        """Finalize the job serving ``handle`` now, regardless of budget left.

        Used by round drivers whose *global* budget ran out before every
        per-job budget did; the job's best-so-far is flushed to the registry
        and every coalesced handle resolves.  Idempotent for done handles.
        """
        if not handle.done:
            job = self._job_of(handle)
            if job is not None:
                # Wait out any in-flight round, then finish exactly once.
                with job.drive_lock:
                    if not job.finished:
                        self._finish_job_locked(job)
        if handle.result is None:
            raise ValueError(
                "finish() got a handle this service does not own "
                f"(fingerprint {handle.fingerprint[:12]}…)"
            )
        return handle.result

    def current_latency(self, handle: JobHandle) -> float:
        """Best latency known for a handle so far (``inf`` before any trial)."""
        if handle.done:
            if handle.result is None:
                raise ValueError("done handle has no result")
            return float(handle.result.best_latency)
        job = self._job_of(handle)
        if job is None:
            return float("inf")
        return float(job.scheduler.measurer.best_latency(job.dag.name))

    def process(self, requests: Sequence[TuningRequest]) -> List[JobHandle]:
        """Submit a batch of requests and run the service until all complete."""
        handles = [self.submit(request) for request in requests]
        self.run()
        return handles
