"""Command-line interface: ``python -m repro <command>``.

Three sub-commands cover the common workflows:

* ``tune-op``      — tune one Table 6 operator class with a chosen scheduler.
* ``tune-network`` — tune BERT / ResNet-50 / MobileNet-V2 end to end.
* ``compare``      — head-to-head HARL vs. Ansor on one operator, printing the
  paper's normalized performance / search-time metrics.

All latencies come from the simulated hardware targets.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines.ansor import AnsorConfig, AnsorScheduler
from repro.baselines.autotvm import SimulatedAnnealingScheduler
from repro.baselines.flextensor import FlextensorScheduler
from repro.core.config import HARLConfig
from repro.core.scheduler import HARLScheduler
from repro.experiments.cache import build_network
from repro.experiments.operator_suite import OPERATOR_CLASSES, representative_dag
from repro.experiments.reporting import format_table
from repro.experiments.runner import compare_on_operator, make_measurer
from repro.hardware.target import cpu_target, gpu_target
from repro.records import RecordStore
from repro.tensor.lowering import lower_schedule

__all__ = ["main", "build_parser"]

_SCHEDULER_CHOICES = ("harl", "hierarchical-rl", "ansor", "flextensor", "autotvm")

_EPILOG = """\
measurement pipeline flags (available on every sub-command):

  --num-workers N   Fan each measurement batch out over N pool workers via
                    ParallelMeasurer.  Measurement noise is pre-drawn in
                    batch-submission order, so for a fixed --seed the results
                    are identical to a serial run (N=1), only faster.
  --records-out F   Stream every measurement (and the final tuning result) to
                    the append-only JSONL log F while tuning runs.  The log is
                    flushed per line, so a killed run loses at most one line.
  --resume-from F   Load a JSONL log written by --records-out and resume from
                    it: the cost model is warm-started with all recorded
                    measurements and the best recorded schedules seed the
                    search, so the new trial budget extends the old run
                    instead of repeating it.  Corrupted lines are skipped.

  For `compare`, --records-out names a directory instead: each competing
  scheduler writes its own <scheduler>.jsonl log there (no cross-talk), and
  --resume-from is ignored (comparisons always start from scratch so the
  head-to-head stays fair).

examples:

  python -m repro tune-op --op GEMM-L --trials 200 --num-workers 4 \\
      --records-out logs/gemm.jsonl
  python -m repro tune-op --op GEMM-L --trials 200 \\
      --resume-from logs/gemm.jsonl --records-out logs/gemm.jsonl
  python -m repro compare --op C2D --batch 16 --num-workers 4
"""


def _make_scheduler(name: str, target, config: HARLConfig, seed: int,
                    measurer=None, record_store=None):
    if name == "harl":
        return HARLScheduler(target=target, config=config, seed=seed,
                             measurer=measurer, record_store=record_store)
    if name == "hierarchical-rl":
        return HARLScheduler(target=target, config=config, seed=seed,
                             adaptive_stopping=False,
                             measurer=measurer, record_store=record_store)
    if name == "ansor":
        return AnsorScheduler(target=target, config=AnsorConfig.from_harl(config),
                              seed=seed, measurer=measurer, record_store=record_store)
    if name == "flextensor":
        return FlextensorScheduler(target=target, config=config, seed=seed,
                                   measurer=measurer, record_store=record_store)
    if name == "autotvm":
        return SimulatedAnnealingScheduler(target=target, seed=seed,
                                           measurer=measurer, record_store=record_store)
    raise KeyError(name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--target", choices=("cpu", "gpu"), default="cpu")
        p.add_argument("--trials", type=int, default=200)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--scale", type=float, default=0.25,
                       help="HARLConfig.scaled factor (1.0 = paper-scale episodes)")
        p.add_argument("--num-workers", type=int, default=1, metavar="N",
                       help="measurement pool size (1 = serial; results are "
                            "seed-identical either way)")
        p.add_argument("--records-out", metavar="FILE", default=None,
                       help="append every measurement to this JSONL record log")
        p.add_argument("--resume-from", metavar="FILE", default=None,
                       help="warm-start from a JSONL record log written by "
                            "--records-out")

    op = sub.add_parser("tune-op", help="tune one Table 6 operator class",
                        epilog=_EPILOG,
                        formatter_class=argparse.RawDescriptionHelpFormatter)
    common(op)
    op.add_argument("--op", choices=OPERATOR_CLASSES, default="GEMM-L")
    op.add_argument("--batch", type=int, default=1)
    op.add_argument("--scheduler", choices=_SCHEDULER_CHOICES, default="harl")
    op.add_argument("--show-program", action="store_true",
                    help="print the lowered loop nest of the best schedule")

    net = sub.add_parser("tune-network", help="tune a network end to end",
                         epilog=_EPILOG,
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    common(net)
    net.add_argument("--network", choices=("bert", "resnet50", "mobilenet_v2"), default="bert")
    net.add_argument("--batch", type=int, default=1)
    net.add_argument("--scheduler", choices=("harl", "ansor"), default="harl")

    cmp = sub.add_parser("compare", help="HARL vs Ansor on one operator",
                         epilog=_EPILOG,
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    common(cmp)
    cmp.add_argument("--op", choices=OPERATOR_CLASSES, default="GEMM-L")
    cmp.add_argument("--batch", type=int, default=1)

    return parser


def _resolve_target(name: str):
    return cpu_target() if name == "cpu" else gpu_target()


def _build_pipeline(args, target, config: HARLConfig):
    """Resolve the (measurer, record store, resume store) trio for a run."""
    record_store = RecordStore(args.records_out) if args.records_out else None
    resume_store = None
    if args.resume_from:
        if record_store is not None and args.resume_from == args.records_out:
            # Resuming into the same log: reuse the already-loaded store so
            # new lines are appended to the history being resumed.
            resume_store = record_store
        else:
            try:
                resume_store = RecordStore.load(args.resume_from)
            except FileNotFoundError:
                print(f"error: --resume-from {args.resume_from!r} does not exist",
                      file=sys.stderr)
                raise SystemExit(2)
    measurer = make_measurer(target, config, args.seed, args.num_workers, record_store)
    return measurer, record_store, resume_store


def _cmd_tune_op(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    measurer, record_store, resume_store = _build_pipeline(args, target, config)
    scheduler = _make_scheduler(args.scheduler, target, config, args.seed,
                                measurer=measurer, record_store=record_store)
    if resume_store is not None and hasattr(scheduler, "resume_from"):
        scheduler.resume_from(resume_store)
    dag = representative_dag(args.op, batch=args.batch)
    result = scheduler.tune(dag, n_trials=args.trials)
    print(format_table(
        ["workload", "scheduler", "best latency (ms)", "TFLOP/s", "trials"],
        [[dag.name, result.scheduler, result.best_latency * 1e3,
          result.best_throughput / 1e12, result.trials_used]],
    ))
    if args.show_program and result.best_schedule is not None:
        print()
        print(lower_schedule(result.best_schedule))
    if record_store is not None:
        record_store.close()
        print(f"\nrecords written to {args.records_out}")
    return 0


def _cmd_tune_network(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    measurer, record_store, resume_store = _build_pipeline(args, target, config)
    scheduler = _make_scheduler(args.scheduler, target, config, args.seed,
                                measurer=measurer, record_store=record_store)
    if resume_store is not None and hasattr(scheduler, "resume_from"):
        scheduler.resume_from(resume_store)
    network = build_network(args.network, batch_size=args.batch)
    result = scheduler.tune_network(network, n_trials=args.trials)
    rows = [
        [name, result.allocations.get(name, 0), res.best_latency * 1e3]
        for name, res in sorted(result.task_results.items())
    ]
    print(format_table(["subgraph", "trials", "best latency (ms)"], rows,
                       title=f"{network.name} via {result.scheduler}"))
    print(f"\nestimated end-to-end latency: {result.best_latency * 1e3:.3f} ms "
          f"({result.trials_used} trials)")
    if record_store is not None:
        record_store.close()
        print(f"records written to {args.records_out}")
    return 0


def _cmd_compare(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    dag = representative_dag(args.op, batch=args.batch)
    comparison = compare_on_operator(
        dag, n_trials=args.trials, target=target, config=config, seed=args.seed,
        schedulers=("ansor", "harl"), num_workers=args.num_workers,
        records_dir=args.records_out,
    )
    perf = comparison.normalized_performance()
    times = comparison.normalized_search_time()
    rows = [
        [name, comparison.results[name].best_latency * 1e3, perf[name], times[name]]
        for name in ("ansor", "harl")
    ]
    print(format_table(
        ["scheduler", "best latency (ms)", "norm. performance", "norm. search time"],
        rows, title=dag.name,
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "tune-op":
        return _cmd_tune_op(args)
    if args.command == "tune-network":
        return _cmd_tune_network(args)
    if args.command == "compare":
        return _cmd_compare(args)
    raise KeyError(args.command)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
