"""Command-line interface: ``python -m repro <command>``.

Twelve sub-commands cover the common workflows:

* ``tune-op``      — tune one Table 6 operator class with a chosen scheduler.
* ``tune-network`` — tune BERT / ResNet-50 / MobileNet-V2 end to end with one
  standalone scheduler instance (no service / registry reuse).
* ``network``      — the end-to-end network tuning *service*: ``list`` the
  evaluation networks, ``tune`` one through the shared multi-tenant service
  (per-subgraph registry hits, cross-network warm starts, pluggable
  bandit/gradient round allocation, ``f(S)`` report), or ``report`` a
  network's registry coverage without tuning.
* ``compare``      — head-to-head HARL vs. Ansor on one operator, printing the
  paper's normalized performance / search-time metrics.
* ``serve``        — run a batch of (possibly duplicate) tuning requests
  through the multi-tenant tuning service with registry reuse; with
  ``--listen HOST:PORT`` it instead runs the long-lived asyncio network
  front end (newline-delimited JSON-RPC with admission control, rate
  limits, quotas and degraded load shedding).
* ``bench-load``   — boot an embedded network server and replay closed-loop
  Zipf/burst multi-tenant traffic at it, reporting p50/p99 latency,
  registry hit rate and shed rate (``--check`` enforces the serving
  invariants).
* ``query``        — look a workload up in the schedule registry (exact hit
  plus nearest structural relatives).
* ``registry``     — maintain the registry: ``stats``, ``export``,
  ``import``, ``compact``.
* ``targets``      — inspect the hardware target catalog: ``list`` all
  presets, ``describe`` one (datasheet numbers, embedding, nearest devices).
* ``sweep``        — tune a workload suite — Table 6 operators (``--ops``) or
  whole networks (``--networks``) — across several catalog targets over one
  registry, printing (and optionally saving) the cross-target report.
* ``metrics``      — run a demo request batch through the tuning service and
  report the unified ``repro.obs`` metrics: registry hit rate, submit→finish
  latency percentiles from real histogram buckets, cache counters — as a
  summary, Prometheus text exposition, or JSON snapshot.
* ``trace``        — run a traced tuning round and emit the span tree:
  service rounds, measurement batches, per-worker chunks, injected-fault
  events — as JSONL records plus an indented tree rendering.

All latencies come from the simulated hardware targets.  ``--target``
accepts any catalog name (``repro targets list``) plus the ``cpu`` / ``gpu``
aliases for the two paper platforms.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.baselines.ansor import AnsorConfig, AnsorScheduler
from repro.baselines.autotvm import SimulatedAnnealingScheduler
from repro.baselines.flextensor import FlextensorScheduler
from repro.core.config import HARLConfig
from repro.core.scheduler import HARLScheduler
from repro.experiments.cache import build_network
from repro.experiments.operator_suite import OPERATOR_CLASSES, representative_dag
from repro.experiments.reporting import format_table
from repro.experiments.network_runner import NetworkTuner
from repro.experiments.runner import compare_on_operator, make_measurer
from repro.experiments.sweep import sweep_networks, sweep_targets
from repro.hardware.catalog import default_catalog
from repro.hardware.target import cpu_target, gpu_target
from repro.records import RecordStore
from repro.serving.fingerprint import structural_fingerprint
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.caching import cached_lowering
from repro import obs
from repro.analysis import runner as analysis_runner

__all__ = ["main", "build_parser"]

_SCHEDULER_CHOICES = ("harl", "hierarchical-rl", "ansor", "flextensor", "autotvm")

_EPILOG = """\
measurement pipeline flags (available on every sub-command):

  --num-workers N   Fan each measurement batch out over N pool workers via
                    ParallelMeasurer.  Measurement noise is pre-drawn in
                    batch-submission order, so for a fixed --seed the results
                    are identical to a serial run (N=1), only faster.
  --records-out F   Stream every measurement (and the final tuning result) to
                    the append-only JSONL log F while tuning runs.  The log is
                    flushed per line, so a killed run loses at most one line.
  --resume-from F   Load a JSONL log written by --records-out and resume from
                    it: the cost model is warm-started with all recorded
                    measurements and the best recorded schedules seed the
                    search, so the new trial budget extends the old run
                    instead of repeating it.  Corrupted lines are skipped.

  For `compare`, --records-out names a directory instead: each competing
  scheduler writes its own <scheduler>.jsonl log there (no cross-talk), and
  --resume-from is ignored (comparisons always start from scratch so the
  head-to-head stays fair).  `serve` and `sweep` also ignore --resume-from:
  service jobs warm-start from the registry, not from record logs.

  --registry DIR    Use the persistent schedule registry at DIR: tuning runs
                    record their best schedules into it (keyed by canonical
                    structural fingerprint + hardware target) and are
                    warm-started from exact hits / nearest structural
                    relatives already registered there.

examples:

  python -m repro tune-op --op GEMM-L --trials 200 --num-workers 4 \\
      --records-out logs/gemm.jsonl
  python -m repro tune-op --op GEMM-L --trials 200 \\
      --resume-from logs/gemm.jsonl --records-out logs/gemm.jsonl
  python -m repro compare --op C2D --batch 16 --num-workers 4
  python -m repro tune-op --op GEMM-L --trials 200 --registry registry/
  python -m repro serve --registry registry/ --trials 64
  python -m repro query --registry registry/ --op GEMM-L
  python -m repro registry stats --registry registry/
  python -m repro network tune --network resnet50 --registry registry/
  python -m repro network tune --network mobilenet_v2 --registry registry/
  python -m repro network report --network mobilenet_v2 --registry registry/
  python -m repro sweep --networks resnet50,mobilenet_v2 --trials 64
"""

_NETWORK_CHOICES = ("bert", "resnet50", "mobilenet_v2")


def _make_scheduler(name: str, target, config: HARLConfig, seed: int,
                    measurer=None, record_store=None, warm_start_provider=None):
    if name == "harl":
        return HARLScheduler(target=target, config=config, seed=seed,
                             measurer=measurer, record_store=record_store,
                             warm_start_provider=warm_start_provider)
    if name == "hierarchical-rl":
        return HARLScheduler(target=target, config=config, seed=seed,
                             adaptive_stopping=False,
                             measurer=measurer, record_store=record_store,
                             warm_start_provider=warm_start_provider)
    if name == "ansor":
        return AnsorScheduler(target=target, config=AnsorConfig.from_harl(config),
                              seed=seed, measurer=measurer, record_store=record_store,
                              warm_start_provider=warm_start_provider)
    if name == "flextensor":
        return FlextensorScheduler(target=target, config=config, seed=seed,
                                   measurer=measurer, record_store=record_store)
    if name == "autotvm":
        return SimulatedAnnealingScheduler(target=target, seed=seed,
                                           measurer=measurer, record_store=record_store)
    raise KeyError(name)


def _admission_flags(parser: argparse.ArgumentParser) -> None:
    """Admission-control knobs of the network front end (ServerConfig)."""
    grp = parser.add_argument_group("admission control")
    grp.add_argument("--max-inflight", type=int, default=4, metavar="N",
                     help="tuning requests holding admission slots at once; "
                          "beyond this the server sheds load (registry-only "
                          "degraded answers)")
    grp.add_argument("--server-workers", type=int, default=2, metavar="N",
                     help="worker threads driving admitted tuning jobs")
    grp.add_argument("--request-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="deadline per tune request; expiry answers the "
                          "explicit 'timeout' error code")
    grp.add_argument("--rate", type=float, default=0.0, metavar="R",
                     help="per-tenant token-bucket rate, requests/s "
                          "(0 = unlimited)")
    grp.add_argument("--burst", type=int, default=8, metavar="N",
                     help="per-tenant token-bucket capacity")
    grp.add_argument("--quota", type=int, default=0, metavar="TRIALS",
                     help="per-tenant total measurement-trial quota "
                          "(0 = unlimited)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--target", default="cpu", metavar="NAME",
                       help="hardware target: a catalog name (see `repro "
                            "targets list`) or the cpu / gpu aliases")
        p.add_argument("--trials", type=int, default=200)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--scale", type=float, default=0.25,
                       help="HARLConfig.scaled factor (1.0 = paper-scale episodes)")
        p.add_argument("--num-workers", type=int, default=1, metavar="N",
                       help="measurement pool size (1 = serial; results are "
                            "seed-identical either way)")
        p.add_argument("--records-out", metavar="FILE", default=None,
                       help="append every measurement to this JSONL record log")
        p.add_argument("--resume-from", metavar="FILE", default=None,
                       help="warm-start from a JSONL record log written by "
                            "--records-out")
        p.add_argument("--registry", metavar="DIR", default=None,
                       help="persistent schedule registry directory: record "
                            "best schedules into it and warm-start from it")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the repro.obs metrics JSON snapshot to "
                            "FILE when the command finishes")

    op = sub.add_parser("tune-op", help="tune one Table 6 operator class",
                        epilog=_EPILOG,
                        formatter_class=argparse.RawDescriptionHelpFormatter)
    common(op)
    op.add_argument("--op", choices=OPERATOR_CLASSES, default="GEMM-L")
    op.add_argument("--batch", type=int, default=1)
    op.add_argument("--scheduler", choices=_SCHEDULER_CHOICES, default="harl")
    op.add_argument("--show-program", action="store_true",
                    help="print the lowered loop nest of the best schedule")

    net = sub.add_parser("tune-network", help="tune a network end to end",
                         epilog=_EPILOG,
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    common(net)
    net.add_argument("--network", choices=_NETWORK_CHOICES, default="bert")
    net.add_argument("--batch", type=int, default=1)
    net.add_argument("--scheduler", choices=("harl", "ansor"), default="harl")

    ntw = sub.add_parser(
        "network",
        help="end-to-end network tuning through the shared service",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ntw.add_argument("action", choices=("list", "tune", "report"))
    common(ntw)
    ntw.add_argument("--network", choices=_NETWORK_CHOICES, default="resnet50")
    ntw.add_argument("--batch", type=int, default=1)
    ntw.add_argument("--policy", choices=("bandit", "gradient"), default="bandit",
                     help="round-allocation policy: HARL's SW-UCB bandit or "
                          "the greedy Eq. 3 gradient (Ansor)")
    ntw.add_argument("--scheduler", choices=("harl", "hierarchical-rl", "ansor"),
                     default="harl")
    ntw.add_argument("--force-tune", action="store_true",
                     help="bypass the registry fast path (cold-run baseline)")
    ntw.add_argument("--json", metavar="FILE", default=None,
                     help="also write the tune report as JSON")

    cmp = sub.add_parser("compare", help="HARL vs Ansor on one operator",
                         epilog=_EPILOG,
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    common(cmp)
    cmp.add_argument("--op", choices=OPERATOR_CLASSES, default="GEMM-L")
    cmp.add_argument("--batch", type=int, default=1)

    srv = sub.add_parser(
        "serve",
        help="run tuning requests through the multi-tenant service",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(srv)
    srv.add_argument("--scheduler", choices=("harl", "hierarchical-rl", "ansor"),
                     default="harl")
    srv.add_argument("--requests", metavar="FILE", default=None,
                     help="JSON file with a list of requests "
                          '[{"op": ..., "batch": ..., "trials": ..., '
                          '"tenant": ...}, ...]; omit for a built-in demo '
                          "batch with duplicate + novel workloads")
    srv.add_argument("--listen", metavar="HOST:PORT", default=None,
                     help="run the long-lived asyncio network front end on "
                          "HOST:PORT (port 0 = ephemeral) instead of a batch; "
                          "serves newline-delimited JSON-RPC until "
                          "interrupted (see repro.serving.server)")
    srv.add_argument("--duration", type=float, default=0.0, metavar="SECONDS",
                     help="with --listen: serve this long then exit "
                          "(0 = until Ctrl-C)")
    _admission_flags(srv)

    bld = sub.add_parser(
        "bench-load",
        help="closed-loop Zipf/burst load benchmark against an embedded "
             "network server",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(bld)
    bld.set_defaults(trials=4, scale=0.05)
    bld.add_argument("--clients", type=int, default=4)
    bld.add_argument("--per-client", type=int, default=25, metavar="N",
                     help="requests per client (closed loop)")
    bld.add_argument("--zipf", type=float, default=1.1, metavar="S",
                     help="Zipf popularity skew over the workload universe")
    bld.add_argument("--burst-size", type=int, default=4, metavar="N",
                     help="back-to-back requests per burst")
    bld.add_argument("--pause", type=float, default=0.02,
                     help="seconds between bursts")
    bld.add_argument("--saturate", action="store_true",
                     help="shrink admission to 1 slot so shedding is "
                          "exercised even on fast machines")
    bld.add_argument("--warmup", type=int, default=3, metavar="N",
                     help="prime the N most popular workloads before the "
                          "measured run (0 = cold start)")
    bld.add_argument("--output", metavar="FILE", default=None,
                     help="write the repro-loadgen/1 report as JSON")
    bld.add_argument("--check", action="store_true",
                     help="enforce the machine-independent serving "
                          "invariants (exit 1 on failure)")
    _admission_flags(bld)

    qry = sub.add_parser("query", help="look a workload up in the registry",
                         epilog=_EPILOG,
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    qry.add_argument("--registry", metavar="DIR", required=True)
    qry.add_argument("--target", default="cpu", metavar="NAME",
                     help="hardware target: a catalog name or cpu / gpu")
    qry.add_argument("--op", choices=OPERATOR_CLASSES, default="GEMM-L")
    qry.add_argument("--batch", type=int, default=1)
    qry.add_argument("--neighbors", type=int, default=3,
                     help="how many nearest structural relatives to list")

    reg = sub.add_parser("registry", help="registry maintenance",
                         epilog=_EPILOG,
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    reg.add_argument("action", choices=("stats", "export", "import", "compact"))
    reg.add_argument("--registry", metavar="DIR", required=True)
    reg.add_argument("--file", metavar="FILE", default=None,
                     help="JSONL file for export / import")

    tgt = sub.add_parser("targets", help="inspect the hardware target catalog")
    tgt.add_argument("action", choices=("list", "describe"))
    tgt.add_argument("name", nargs="?", default=None,
                     help="target name (required for describe)")

    swp = sub.add_parser(
        "sweep",
        help="tune a workload suite across several targets with transfer",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(swp)
    # Distinguish "no target flags at all" (sweep the two paper platforms)
    # from an explicit single --target (sweep just that one).
    swp.set_defaults(target=None)
    swp.add_argument("--targets", metavar="NAMES", default=None,
                     help="comma-separated catalog target names (overrides "
                          "--target; default: the two paper platforms)")
    swp.add_argument("--ops", metavar="CLASSES", default="GEMM-S,C1D",
                     help="comma-separated Table 6 operator classes "
                          f"(known: {', '.join(OPERATOR_CLASSES)})")
    swp.add_argument("--networks", metavar="NAMES", default=None,
                     help="comma-separated network names "
                          f"({', '.join(_NETWORK_CHOICES)}); sweeps whole "
                          "networks end to end instead of --ops")
    swp.add_argument("--policy", choices=("bandit", "gradient"), default="bandit",
                     help="round-allocation policy for --networks sweeps")
    swp.add_argument("--batch", type=int, default=1)
    swp.add_argument("--scheduler", choices=("harl", "hierarchical-rl", "ansor"),
                     default="harl")
    swp.add_argument("--report", metavar="FILE", default=None,
                     help="write the cross-target report to this CSV file")

    met = sub.add_parser(
        "metrics",
        help="run a demo service batch and report the unified metrics",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(met)
    met.set_defaults(trials=16, scale=0.1)
    met.add_argument("--format", choices=("summary", "prometheus", "json"),
                     default="summary", dest="fmt",
                     help="output format (summary adds the exposition on top "
                          "of the human-readable digest)")
    met.add_argument("--no-demo", action="store_true",
                     help="skip the demo batch and just report current metrics "
                          "(useful after --registry runs in the same process)")

    trc = sub.add_parser(
        "trace",
        help="run a traced tuning round and emit the JSONL span tree",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(trc)
    trc.set_defaults(trials=16, scale=0.1)
    trc.add_argument("--output", metavar="FILE", default=None,
                     help="write the JSONL trace records to FILE")
    trc.add_argument("--jsonl", action="store_true",
                     help="also print the raw JSONL records to stdout")

    ana = sub.add_parser(
        "analyze",
        help="run the repo-aware static checkers (lock discipline, asyncio "
             "blocking, fault coverage, obs hygiene)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    analysis_runner.add_arguments(ana)

    return parser


def _resolve_target(name: str):
    """Resolve a --target value: cpu / gpu aliases or any catalog name."""
    if name == "cpu":
        return cpu_target()
    if name == "gpu":
        return gpu_target()
    try:
        return default_catalog().get(name)
    except KeyError:
        known = ", ".join(["cpu", "gpu"] + default_catalog().names())
        print(f"error: unknown target {name!r}; known targets: {known}",
              file=sys.stderr)
        raise SystemExit(2) from None


def _build_pipeline(args, target, config: HARLConfig):
    """Resolve the (measurer, record store, resume store) trio for a run."""
    record_store = RecordStore(args.records_out) if args.records_out else None
    resume_store = None
    if args.resume_from:
        if record_store is not None and args.resume_from == args.records_out:
            # Resuming into the same log: reuse the already-loaded store so
            # new lines are appended to the history being resumed.
            resume_store = record_store
        else:
            try:
                resume_store = RecordStore.load(args.resume_from)
            except FileNotFoundError:
                print(f"error: --resume-from {args.resume_from!r} does not exist",
                      file=sys.stderr)
                raise SystemExit(2) from None
    measurer = make_measurer(target, config, args.seed, args.num_workers, record_store)
    return measurer, record_store, resume_store


def _open_registry(args) -> Optional[ScheduleRegistry]:
    registry_dir = getattr(args, "registry", None)
    return ScheduleRegistry(registry_dir) if registry_dir else None


def _warm_start_provider(registry: Optional[ScheduleRegistry], target):
    if registry is None:
        return None
    return lambda dag: registry.warm_start_schedules(dag, target)


def _cmd_tune_op(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    measurer, record_store, resume_store = _build_pipeline(args, target, config)
    registry = _open_registry(args)
    scheduler = _make_scheduler(args.scheduler, target, config, args.seed,
                                measurer=measurer, record_store=record_store,
                                warm_start_provider=_warm_start_provider(registry, target))
    if resume_store is not None and hasattr(scheduler, "resume_from"):
        scheduler.resume_from(resume_store)
    dag = representative_dag(args.op, batch=args.batch)
    result = scheduler.tune(dag, n_trials=args.trials)
    if registry is not None:
        registry.record_result(dag, target, result, source=f"cli:{args.scheduler}")
        registry.close()
    print(format_table(
        ["workload", "scheduler", "best latency (ms)", "TFLOP/s", "trials"],
        [[dag.name, result.scheduler, result.best_latency * 1e3,
          result.best_throughput / 1e12, result.trials_used]],
    ))
    if args.show_program and result.best_schedule is not None:
        print()
        print(cached_lowering(result.best_schedule))
    if record_store is not None:
        record_store.close()
        print(f"\nrecords written to {args.records_out}")
    return 0


def _cmd_tune_network(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    measurer, record_store, resume_store = _build_pipeline(args, target, config)
    registry = _open_registry(args)
    scheduler = _make_scheduler(args.scheduler, target, config, args.seed,
                                measurer=measurer, record_store=record_store,
                                warm_start_provider=_warm_start_provider(registry, target))
    if resume_store is not None and hasattr(scheduler, "resume_from"):
        scheduler.resume_from(resume_store)
    network = build_network(args.network, batch_size=args.batch)
    result = scheduler.tune_network(network, n_trials=args.trials)
    if registry is not None:
        for sg in network:
            task_result = result.task_results.get(sg.name)
            if task_result is not None:
                registry.record_result(sg.dag, target, task_result,
                                       source=f"cli:{args.scheduler}")
        registry.close()
    rows = [
        [name, result.allocations.get(name, 0), res.best_latency * 1e3]
        for name, res in sorted(result.task_results.items())
    ]
    print(format_table(["subgraph", "trials", "best latency (ms)"], rows,
                       title=f"{network.name} via {result.scheduler}"))
    print(f"\nestimated end-to-end latency: {result.best_latency * 1e3:.3f} ms "
          f"({result.trials_used} trials)")
    if record_store is not None:
        record_store.close()
        print(f"records written to {args.records_out}")
    return 0


def _cmd_network(args) -> int:
    if args.action == "list":
        rows = []
        for name in _NETWORK_CHOICES:
            network = build_network(name, batch_size=args.batch)
            groups = sorted({sg.reward_group for sg in network if sg.reward_group})
            rows.append([
                name, network.name, len(network),
                sum(sg.weight for sg in network),
                network.total_flops / 1e9,
                ",".join(groups),
            ])
        print(format_table(
            ["network", "graph", "subgraphs", "sum w_n", "GFLOPs",
             "operator families"],
            rows, title=f"evaluation networks (batch={args.batch})",
        ))
        return 0

    target = _resolve_target(args.target)
    network = build_network(args.network, batch_size=args.batch)

    if args.action == "report":
        if not args.registry:
            print("error: network report needs --registry", file=sys.stderr)
            return 2
        registry = ScheduleRegistry(args.registry)
        rows, latencies = [], {}
        for sg in network:
            found = registry.lookup(sg.dag, target, k=1)
            entry = found.entry
            if entry is not None:
                latencies[sg.name] = entry.latency
                rows.append([sg.name, sg.weight, entry.latency * 1e6,
                             entry.scheduler, entry.trials,
                             entry.source or "n/a", entry.donor_target or "-"])
            else:
                hint = (f"nearest: {found.neighbors[0][1].workload}"
                        if found.neighbors else "no relative registered")
                rows.append([sg.name, sg.weight, float("inf"), "-", 0, hint, "-"])
        covered = len(latencies)
        print(format_table(
            ["task", "w_n", "g_n (us)", "scheduler", "trials", "source",
             "donor target"],
            rows, title=f"{network.name} registry coverage on {target.name}",
        ))
        estimate = network.estimated_latency(latencies)
        if estimate < float("inf"):
            print(f"\nfully covered: registry-estimated f(S) = "
                  f"{estimate * 1e3:.3f} ms ({covered}/{len(network)} tasks)")
        else:
            print(f"\n{covered}/{len(network)} tasks covered; "
                  "`repro network tune` fills the gaps")
        registry.close()
        return 0

    # action == "tune"
    config = HARLConfig.scaled(args.scale)
    registry = _open_registry(args)
    if registry is None:  # explicit: an *empty* registry is falsy (len == 0)
        registry = ScheduleRegistry()
    record_store = RecordStore(args.records_out) if args.records_out else None
    service = TuningService(
        registry=registry, target=target, config=config, seed=args.seed,
        record_store=record_store, num_workers=args.num_workers,
    )
    tuner = NetworkTuner(network, service, policy=args.policy,
                         scheduler=args.scheduler, force_tune=args.force_tune)
    report = tuner.tune(n_trials=args.trials)
    print(report.format())
    print(f"registry now holds {len(registry)} entries")
    if args.json:
        path = report.write_json(args.json)
        print(f"report written to {path}")
    if record_store is not None:
        record_store.close()
        print(f"records written to {args.records_out}")
    registry.close()
    return 0


def _cmd_compare(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    dag = representative_dag(args.op, batch=args.batch)
    comparison = compare_on_operator(
        dag, n_trials=args.trials, target=target, config=config, seed=args.seed,
        schedulers=("ansor", "harl"), num_workers=args.num_workers,
        records_dir=args.records_out, registry=args.registry,
    )
    perf = comparison.normalized_performance()
    times = comparison.normalized_search_time()
    rows = [
        [name, comparison.results[name].best_latency * 1e3, perf[name], times[name]]
        for name in ("ansor", "harl")
    ]
    print(format_table(
        ["scheduler", "best latency (ms)", "norm. performance", "norm. search time"],
        rows, title=dag.name,
    ))
    return 0


def _demo_requests(trials: int, scheduler: str):
    """Built-in serve demo: duplicate GEMMs from two tenants plus a novel op."""
    specs = [
        ("GEMM-S", 1, "tenant-a"),
        ("GEMM-S", 1, "tenant-b"),   # structural duplicate → coalesces
        ("C1D", 1, "tenant-a"),      # novel workload → its own job
    ]
    return [
        TuningRequest(dag=representative_dag(op, batch=batch), n_trials=trials,
                      scheduler=scheduler, tenant=tenant)
        for op, batch, tenant in specs
    ]


def _load_requests(path: str, default_trials: int, scheduler: str):
    from pathlib import Path

    specs = json.loads(Path(path).read_text(encoding="utf-8"))
    requests = []
    for spec in specs:
        requests.append(TuningRequest(
            dag=representative_dag(spec["op"], batch=int(spec.get("batch", 1))),
            n_trials=int(spec.get("trials", default_trials)),
            scheduler=spec.get("scheduler", scheduler),
            tenant=spec.get("tenant", "default"),
            force_tune=bool(spec.get("force_tune", False)),
        ))
    return requests


def _server_config(args, host: str = "127.0.0.1", port: int = 0):
    from repro.serving.server import ServerConfig

    return ServerConfig(
        host=host,
        port=port,
        max_inflight=args.max_inflight,
        workers=args.server_workers,
        request_timeout=args.request_timeout,
        rate=args.rate,
        burst=args.burst,
        quota=args.quota,
    )


def _parse_listen(listen: str):
    host, _, port = listen.rpartition(":")
    if not host or not port:
        raise SystemExit(f"--listen expects HOST:PORT, got {listen!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"--listen port must be an integer, got {port!r}") from None


def _cmd_serve_listen(args, service, registry) -> int:
    """The --listen mode of `serve`: a long-lived network front end."""
    import time as _time

    from repro.serving.server import ServingServer

    host, port = _parse_listen(args.listen)
    with ServingServer(service, _server_config(args, host=host, port=port)) as srv:
        print(f"serving newline-delimited JSON-RPC on {srv.host}:{srv.port} "
              f"(target {service.target.name}, {len(registry)} registry "
              f"entries); Ctrl-C to stop", flush=True)
        try:
            if args.duration > 0:
                _time.sleep(args.duration)
            else:
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            print("\ninterrupted, shutting down")
        stats = srv.stats()
    print(f"served {stats['requests']} requests: {stats['accepted']} tuned, "
          f"{stats['fast_hits']} registry fast hits, {stats['shed']} shed, "
          f"{stats['timeouts']} timeouts; registry now holds "
          f"{len(registry)} entries")
    return 0


def _cmd_serve(args) -> int:
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    registry = _open_registry(args)
    if registry is None:  # explicit: an *empty* registry is falsy (len == 0)
        registry = ScheduleRegistry()
    record_store = RecordStore(args.records_out) if args.records_out else None
    service = TuningService(
        registry=registry, target=target, config=config, seed=args.seed,
        record_store=record_store, num_workers=args.num_workers,
    )
    if args.listen:
        try:
            return _cmd_serve_listen(args, service, registry)
        finally:
            if record_store is not None:
                record_store.close()
            registry.close()
    if args.requests:
        requests = _load_requests(args.requests, args.trials, args.scheduler)
    else:
        requests = _demo_requests(args.trials, args.scheduler)
    handles = service.process(requests)
    rows = [
        [h.request.dag.name, h.request.tenant, h.source,
         h.result.best_latency * 1e3, h.result.trials_used]
        for h in handles
    ]
    print(format_table(
        ["workload", "tenant", "source", "best latency (ms)", "trials"],
        rows, title=f"tuning service on {target.name}",
    ))
    print(f"\njobs created: {service.jobs_created}, "
          f"coalesced: {service.coalesced_requests}, "
          f"registry hits: {service.registry_hits}; "
          f"registry now holds {len(registry)} entries")
    if record_store is not None:
        record_store.close()
    registry.close()
    return 0


def _cmd_bench_load(args) -> int:
    """Boot an embedded network server and replay Zipf/burst traffic at it."""
    from repro.serving.loadgen import (
        DEFAULT_UNIVERSE,
        LoadGenConfig,
        check_report,
        run_load,
    )
    from repro.serving.netclient import TuningClient
    from repro.serving.server import ServerConfig, ServingServer

    target = _resolve_target(args.target)
    registry = _open_registry(args)
    if registry is None:
        registry = ScheduleRegistry()
    service = TuningService(
        registry=registry, target=target,
        config=HARLConfig.scaled(args.scale), seed=args.seed,
        num_workers=args.num_workers,
    )
    server_config = ServerConfig(
        max_inflight=1 if args.saturate else args.max_inflight,
        workers=args.server_workers,
        request_timeout=args.request_timeout,
        rate=args.rate,
        burst=args.burst,
        quota=args.quota,
    )
    load_config = LoadGenConfig(
        clients=args.clients,
        requests_per_client=args.per_client,
        trials=args.trials,
        zipf_s=args.zipf,
        burst=args.burst_size,
        pause=args.pause,
        seed=args.seed,
    )
    with ServingServer(service, server_config) as server:
        if args.warmup > 0:
            # Steady state: tune the Zipf head once so the measured run
            # exercises the registry fast path under load rather than racing
            # cold tuning against traffic (machine-speed dependent).
            with TuningClient(server.host, server.port) as warm:
                for op, batch in DEFAULT_UNIVERSE[: args.warmup]:
                    warm.tune(op, batch=batch, trials=args.trials)
        report = run_load(server.host, server.port, load_config)
    registry.close()

    lat = report["latency_ms"]
    print(f"bench-load: {report['answered']}/{report['requests']} answered in "
          f"{report['wall_seconds']:.2f}s ({report['throughput_rps']:.1f} req/s)")
    print(f"  latency p50={lat['p50']:.2f}ms p95={lat['p95']:.2f}ms "
          f"p99={lat['p99']:.2f}ms max={lat['max']:.2f}ms")
    print(f"  hit rate {report['hit_rate']:.2f}, shed rate "
          f"{report['shed_rate']:.2f}, outcomes {report['outcomes']}")
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.output}")
    if args.check:
        failures = check_report(report)
        if failures:
            print("\nserving invariant failures:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("serving invariants: all green")
    return 0


def _run_service_demo(args, waves: int = 1):
    """Run the built-in serve demo batch ``waves`` times over one registry.

    The second wave resubmits structurally identical workloads, so it is
    answered from the registry — which is exactly what makes the metrics
    report show non-trivial hit rates and fast-path latencies.
    """
    target = _resolve_target(args.target)
    config = HARLConfig.scaled(args.scale)
    registry = _open_registry(args)
    if registry is None:
        registry = ScheduleRegistry()
    record_store = RecordStore(args.records_out) if args.records_out else None
    service = TuningService(
        registry=registry, target=target, config=config, seed=args.seed,
        record_store=record_store, num_workers=args.num_workers,
    )
    handles = []
    for _wave in range(waves):
        handles.extend(service.process(_demo_requests(args.trials, "harl")))
    if record_store is not None:
        record_store.close()
    registry.close()
    return service, handles


def _percentile_row(summary: dict) -> str:
    return (f"p50={summary['p50'] * 1e3:.3f}ms  "
            f"p95={summary['p95'] * 1e3:.3f}ms  "
            f"p99={summary['p99'] * 1e3:.3f}ms  "
            f"(count={summary['count']})")


def _cmd_metrics(args) -> int:
    if not args.no_demo:
        # Two waves: wave 1 tunes the demo workloads cold, wave 2 resubmits
        # them and is answered from the registry, so the snapshot shows the
        # full hit/miss/coalesce story.
        _run_service_demo(args, waves=2)
    snap = obs.snapshot()
    if args.fmt == "json":
        print(json.dumps(snap, indent=2))
        return 0
    if args.fmt == "prometheus":
        print(obs.render_prometheus(), end="")
        return 0
    counters = snap["counters"]
    lookups = counters.get("registry.lookups", 0)
    hits = counters.get("registry.hits", 0)
    hit_rate = hits / lookups if lookups else 0.0
    print("service")
    print(f"  requests:      {counters.get('service.requests', 0)}")
    print(f"  registry hits: {counters.get('service.registry_hits', 0)}")
    print(f"  coalesced:     {counters.get('service.coalesced', 0)}")
    print(f"  jobs created:  {counters.get('service.jobs_created', 0)} "
          f"(finished {counters.get('service.jobs_finished', 0)}, "
          f"aborted {counters.get('service.jobs_aborted', 0)})")
    submit = snap["histograms"].get("service.submit_to_finish_seconds")
    if submit and submit["count"]:
        print(f"  submit→finish: {_percentile_row(submit)}")
    print("registry")
    print(f"  lookups:       {lookups} (hit rate {hit_rate:.1%})")
    print(f"  transfer:      {counters.get('registry.transfer_lookups', 0)} lookups, "
          f"{counters.get('registry.transfer_candidates', 0)} candidates")
    for name, label in (
        ("registry.append_seconds", "appends"),
        ("registry.shard_load_seconds", "shard loads"),
        ("records.flush_seconds", "record flushes"),
        ("parallel.batch_seconds", "parallel batches"),
    ):
        summary = snap["histograms"].get(name)
        if summary and summary["count"]:
            print(f"  {label + ':':<14} {_percentile_row(summary)}")
    caches = {
        key: value for key, value in snap["collected"].items()
        if key.startswith("cache.")
    }
    if caches:
        print("caches")
        for name in ("sketches", "lowering", "fingerprint"):
            rate = caches.get(f"cache.{name}.hit_rate")
            if rate is not None:
                print(f"  {name + ':':<13} hits={caches[f'cache.{name}.hits']} "
                      f"misses={caches[f'cache.{name}.misses']} "
                      f"(hit rate {rate:.1%})")
    print()
    print(obs.render_prometheus(), end="")
    return 0


def _cmd_trace(args) -> int:
    with obs.tracing(args.output) as tracer:
        _run_service_demo(args, waves=1)
    if args.jsonl or not args.output:
        for line in tracer.lines():
            print(line)
        print()
    print(tracer.tree())
    if args.output:
        print(f"\ntrace written to {args.output} "
              f"({len(tracer.records)} records)")
    return 0


def _cmd_query(args) -> int:
    target = _resolve_target(args.target)
    registry = ScheduleRegistry(args.registry)
    dag = representative_dag(args.op, batch=args.batch)
    fingerprint = structural_fingerprint(dag)
    print(f"workload:    {dag.name}")
    print(f"fingerprint: {fingerprint[:16]}… on {target.name}")
    found = registry.lookup(dag, target, k=args.neighbors)
    exact = found.entry
    if exact is not None:
        print(f"exact hit:   {exact.latency * 1e3:.3f} ms "
              f"({exact.scheduler}, {exact.trials} trials, "
              f"source={exact.source or 'n/a'})")
    else:
        print("exact hit:   none")
    neighbors = found.neighbors
    if neighbors:
        rows = [
            [entry.workload, f"{distance:.3f}", entry.latency * 1e3, entry.scheduler]
            for distance, entry in neighbors
        ]
        print()
        print(format_table(
            ["nearest relative", "distance", "best latency (ms)", "scheduler"], rows,
        ))
    registry.close()
    return 0


def _cmd_registry(args) -> int:
    registry = ScheduleRegistry(args.registry)
    if args.action == "stats":
        stats = registry.stats()
        for key in ("entries", "workloads", "targets", "shard_files",
                    "total_lines", "stale_lines", "skipped_lines"):
            print(f"{key:>14}: {stats[key]}")
    elif args.action == "export":
        if not args.file:
            print("error: registry export needs --file", file=sys.stderr)
            return 2
        path = registry.export_file(args.file)
        print(f"exported {len(registry)} entries to {path}")
    elif args.action == "import":
        if not args.file:
            print("error: registry import needs --file", file=sys.stderr)
            return 2
        accepted = registry.import_file(args.file, source=f"import:{args.file}")
        print(f"imported {accepted} improved entries from {args.file} "
              f"({len(registry)} total)")
    elif args.action == "compact":
        removed = registry.compact()
        print(f"compacted: removed {removed} stale lines, "
              f"{len(registry)} entries kept")
    registry.close()
    return 0


def _cmd_targets(args) -> int:
    catalog = default_catalog()
    if args.action == "list":
        rows = []
        for target in catalog:
            d = catalog.describe(target.name)
            rows.append([
                d["name"], d["kind"], d["num_cores"], d["vector_width"],
                d["peak_tflops"], d["dram_gb_s"],
                d["l1_kb"], d["l2_kb"], d["l3_mb"],
            ])
        print(format_table(
            ["target", "kind", "cores", "simd", "peak TFLOP/s", "DRAM GB/s",
             "L1 KB", "L2 KB", "L3 MB"],
            rows, title=f"hardware target catalog ({len(catalog)} presets)",
        ))
        return 0
    if not args.name:
        print("error: targets describe needs a target name", file=sys.stderr)
        return 2
    try:
        description = catalog.describe(args.name)
    except KeyError:
        print(f"error: unknown target {args.name!r}; known: "
              f"{', '.join(catalog.names())}", file=sys.stderr)
        return 2
    embedding = description.pop("embedding")
    for key, value in description.items():
        print(f"{key:>22}: {value}")
    print(f"{'embedding':>22}: [{', '.join(f'{v:.2f}' for v in embedding)}]")
    rows = [
        [neighbor.name, neighbor.kind, f"{distance:.2f}"]
        for distance, neighbor in catalog.nearest(catalog.get(args.name), k=3)
    ]
    print()
    print(format_table(["nearest target", "kind", "distance"], rows))
    return 0


def _cmd_sweep(args) -> int:
    config = HARLConfig.scaled(args.scale)
    if args.targets:
        target_names = [name.strip() for name in args.targets.split(",") if name.strip()]
    elif args.target:
        target_names = [args.target]
    else:
        target_names = ["xeon-6226r", "rtx-3090"]
    targets = [_resolve_target(name) for name in target_names]
    if args.networks:
        networks = []
        for name in (n.strip() for n in args.networks.split(",") if n.strip()):
            if name not in _NETWORK_CHOICES:
                print(f"error: unknown network {name!r}; known: "
                      f"{', '.join(_NETWORK_CHOICES)}", file=sys.stderr)
                return 2
            networks.append(name)
        if not networks:
            print("error: --networks needs at least one network name",
                  file=sys.stderr)
            return 2
        registry = _open_registry(args)
        record_store = RecordStore(args.records_out) if args.records_out else None
        report = sweep_networks(
            networks, targets, n_trials=args.trials, config=config,
            seed=args.seed, scheduler=args.scheduler, policy=args.policy,
            registry=registry, num_workers=args.num_workers,
            record_store=record_store, batch_size=args.batch,
        )
        print(report.format(
            title=f"network fleet sweep: {len(networks)} networks x "
                  f"{len(targets)} targets"
        ))
        reused = report.reused_cells()
        if reused:
            print(f"\n{len(reused)} runs reused registry knowledge "
                  f"(hits or warm starts)")
        if args.report:
            path = report.write_csv(args.report)
            print(f"report written to {path}")
        if record_store is not None:
            record_store.close()
        if registry is not None:
            registry.close()
        return 0
    dags = []
    for op in (name.strip() for name in args.ops.split(",") if name.strip()):
        if op not in OPERATOR_CLASSES:
            print(f"error: unknown operator class {op!r}; known: "
                  f"{', '.join(OPERATOR_CLASSES)}", file=sys.stderr)
            return 2
        dags.append(representative_dag(op, batch=args.batch))
    if not dags:
        print("error: --ops needs at least one operator class", file=sys.stderr)
        return 2
    registry = _open_registry(args)
    record_store = RecordStore(args.records_out) if args.records_out else None
    report = sweep_targets(
        dags, targets, n_trials=args.trials, config=config, seed=args.seed,
        scheduler=args.scheduler, registry=registry, num_workers=args.num_workers,
        record_store=record_store,
    )
    print(report.format(
        title=f"cross-target sweep: {len(dags)} workloads x {len(targets)} targets"
    ))
    transfers = report.transfer_cells()
    if transfers:
        print(f"\n{len(transfers)} runs warm-started across targets "
              f"({', '.join(sorted({c.target for c in transfers}))})")
    if args.report:
        path = report.write_csv(args.report)
        print(f"report written to {path}")
    if record_store is not None:
        record_store.close()
    if registry is not None:
        registry.close()
    return 0


def _cmd_analyze(args) -> int:
    return analysis_runner.main_from_args(args)


_COMMANDS = {
    "tune-op": _cmd_tune_op,
    "tune-network": _cmd_tune_network,
    "network": _cmd_network,
    "compare": _cmd_compare,
    "serve": _cmd_serve,
    "bench-load": _cmd_bench_load,
    "query": _cmd_query,
    "registry": _cmd_registry,
    "targets": _cmd_targets,
    "sweep": _cmd_sweep,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    code = _COMMANDS[args.command](args)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        path = obs.write_snapshot(metrics_out)
        print(f"metrics snapshot written to {path}")
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
