"""Learned cost model.

The paper uses XGBoost as a light-weight cost model that predicts schedule
performance, prunes poor candidates and serves as the RL reward function.
This package provides a from-scratch gradient-boosted regression tree model
(:mod:`repro.costmodel.gbt`) and the online wrapper used by the schedulers
(:mod:`repro.costmodel.model`).
"""

from repro.costmodel.tree import RegressionTree
from repro.costmodel.gbt import GradientBoostedTrees
from repro.costmodel.model import RandomCostModel, ScheduleCostModel

__all__ = [
    "GradientBoostedTrees",
    "RandomCostModel",
    "RegressionTree",
    "ScheduleCostModel",
]
