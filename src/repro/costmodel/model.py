"""Online schedule cost model.

:class:`ScheduleCostModel` is the object the auto-schedulers interact with: it
accumulates (schedule features → measured throughput) pairs, retrains the
gradient-boosted model on the fly (the "learns on the fly from the actual
measurements" behaviour in Section 3.2 of the paper), and predicts a
normalised performance score for unmeasured schedules.  The score is the
throughput relative to the best measured schedule of the same workload, so
scores are comparable across workloads and usable directly as RL rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.costmodel.gbt import GradientBoostedTrees
from repro.tensor.features import batch_features
from repro.tensor.schedule import Schedule

__all__ = ["ScheduleCostModel", "RandomCostModel"]


@dataclass
class _WorkloadData:
    features: List[np.ndarray] = field(default_factory=list)
    throughputs: List[float] = field(default_factory=list)

    @property
    def best_throughput(self) -> float:
        return max(self.throughputs) if self.throughputs else 0.0


class ScheduleCostModel:
    """Gradient-boosted cost model trained online on measured schedules.

    Parameters
    ----------
    min_samples:
        Minimum number of measurements (per workload) before the learned
        model is used; below this the model returns weak random priors, like
        an untrained XGBoost in Ansor.
    retrain_interval:
        Retrain after this many new samples have been added since the last fit.
    """

    def __init__(
        self,
        min_samples: int = 16,
        retrain_interval: int = 16,
        n_estimators: int = 50,
        max_depth: int = 6,
        learning_rate: float = 0.2,
        seed: int = 0,
    ):
        self.min_samples = int(min_samples)
        self.retrain_interval = int(retrain_interval)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self._data: Dict[str, _WorkloadData] = {}
        self._models: Dict[str, GradientBoostedTrees] = {}
        self._since_fit: Dict[str, int] = {}
        self.num_updates = 0

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def update(self, schedules: Sequence[Schedule], throughputs: Sequence[float]) -> None:
        """Add measured (schedule, throughput) pairs and retrain if due."""
        if len(schedules) != len(throughputs):
            raise ValueError("schedules and throughputs must have the same length")
        if not schedules:
            return
        valid = [
            (schedule, throughput)
            for schedule, throughput in zip(schedules, throughputs)
            if np.isfinite(throughput) and throughput > 0
        ]
        touched = set()
        # One vectorised feature-extraction pass for the whole batch instead
        # of a per-schedule call.
        features = batch_features([schedule for schedule, _ in valid])
        for (schedule, throughput), feature in zip(valid, features):
            key = schedule.dag.name
            data = self._data.setdefault(key, _WorkloadData())
            data.features.append(feature)
            data.throughputs.append(float(throughput))
            self._since_fit[key] = self._since_fit.get(key, 0) + 1
            touched.add(key)
        self.num_updates += 1

        for key in touched:
            data = self._data[key]
            due = self._since_fit.get(key, 0) >= self.retrain_interval
            untrained = key not in self._models
            if len(data.throughputs) >= self.min_samples and (due or untrained):
                self._fit_workload(key)

    def _fit_workload(self, key: str) -> None:
        data = self._data[key]
        X = np.stack(data.features, axis=0)
        y = np.asarray(data.throughputs, dtype=np.float64)
        y_norm = y / max(data.best_throughput, 1e-30)
        model = GradientBoostedTrees(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            learning_rate=self.learning_rate,
            seed=self._seed,
        )
        model.fit(X, y_norm)
        self._models[key] = model
        self._since_fit[key] = 0

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def is_trained(self, workload_name: str) -> bool:
        return workload_name in self._models

    def num_samples(self, workload_name: str) -> int:
        data = self._data.get(workload_name)
        return len(data.throughputs) if data else 0

    def predict(self, schedules: Sequence[Schedule]) -> np.ndarray:
        """Predicted performance score per schedule (≈ 1.0 for the best seen)."""
        if not schedules:
            return np.zeros(0, dtype=np.float64)
        scores = np.zeros(len(schedules), dtype=np.float64)
        by_workload: Dict[str, List[int]] = {}
        for idx, schedule in enumerate(schedules):
            by_workload.setdefault(schedule.dag.name, []).append(idx)
        for key, indices in by_workload.items():
            feats = batch_features([schedules[i] for i in indices])
            model = self._models.get(key)
            if model is None:
                # Cold start: weak uninformative prior, like an untrained booster.
                scores[indices] = 0.05 * self._rng.random(len(indices))
            else:
                scores[indices] = np.clip(model.predict(feats), 0.0, None)
        return scores

    def predict_throughput(self, schedules: Sequence[Schedule]) -> np.ndarray:
        """De-normalised throughput prediction (FLOP/s)."""
        scores = self.predict(schedules)
        out = np.zeros_like(scores)
        for idx, schedule in enumerate(schedules):
            data = self._data.get(schedule.dag.name)
            best = data.best_throughput if data else 0.0
            out[idx] = scores[idx] * best
        return out

    def best_throughput(self, workload_name: str) -> float:
        data = self._data.get(workload_name)
        return data.best_throughput if data else 0.0


class RandomCostModel:
    """Uninformative cost model used for ablations and cold-start baselines."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def update(self, schedules: Sequence[Schedule], throughputs: Sequence[float]) -> None:
        return None

    def is_trained(self, workload_name: str) -> bool:
        return False

    def num_samples(self, workload_name: str) -> int:
        return 0

    def predict(self, schedules: Sequence[Schedule]) -> np.ndarray:
        return self._rng.random(len(schedules))

    def predict_throughput(self, schedules: Sequence[Schedule]) -> np.ndarray:
        return self.predict(schedules)

    def best_throughput(self, workload_name: str) -> float:
        return 0.0
