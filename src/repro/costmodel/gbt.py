"""Gradient-boosted regression trees (squared loss).

A minimal XGBoost-style booster: each round fits a
:class:`~repro.costmodel.tree.RegressionTree` to the residuals of the current
ensemble, with shrinkage and row subsampling.  It is intentionally small —
the cost model only needs to rank a few hundred schedules per round — but the
training loop, early stopping and feature subsampling mirror the structure of
the real thing so the ablation experiments behave comparably.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.costmodel.tree import RegressionTree

__all__ = ["GradientBoostedTrees"]


class GradientBoostedTrees:
    """Squared-loss gradient boosting.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth / min_samples_leaf:
        Weak-learner tree parameters.
    subsample:
        Fraction of rows sampled (without replacement) per boosting round.
    colsample:
        Fraction of features examined at each split.
    early_stopping_rounds:
        Stop when the training loss has not improved for this many rounds
        (``None`` disables early stopping).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        subsample: float = 0.9,
        colsample: float = 0.9,
        early_stopping_rounds: Optional[int] = 10,
        seed: int = 0,
    ):
        if not (0.0 < subsample <= 1.0) or not (0.0 < colsample <= 1.0):
            raise ValueError("subsample and colsample must be in (0, 1]")
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.colsample = colsample
        self.early_stopping_rounds = early_stopping_rounds
        self.seed = seed
        self._trees: List[RegressionTree] = []
        self._base_prediction = 0.0
        self._fitted = False

    # ------------------------------------------------------------------ #
    @property
    def n_trees(self) -> int:
        return len(self._trees)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and aligned with y")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.seed)
        n_samples, n_features = X.shape
        self._trees = []
        self._base_prediction = float(np.mean(y))
        predictions = np.full(n_samples, self._base_prediction, dtype=np.float64)

        max_features = max(1, int(round(self.colsample * n_features)))
        best_loss = float("inf")
        rounds_since_best = 0

        for _ in range(self.n_estimators):
            residuals = y - predictions

            if self.subsample < 1.0:
                sample_size = max(2, int(round(self.subsample * n_samples)))
                idx = rng.choice(n_samples, size=min(sample_size, n_samples), replace=False)
            else:
                idx = np.arange(n_samples)

            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features if max_features < n_features else None,
                rng=rng,
            )
            tree.fit(X[idx], residuals[idx])
            self._trees.append(tree)
            predictions += self.learning_rate * tree.predict(X)

            loss = float(np.mean((y - predictions) ** 2))
            if loss < best_loss - 1e-12:
                best_loss = loss
                rounds_since_best = 0
            else:
                rounds_since_best += 1
                if (
                    self.early_stopping_rounds is not None
                    and rounds_since_best >= self.early_stopping_rounds
                ):
                    break

        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        out = np.full(X.shape[0], self._base_prediction, dtype=np.float64)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out
