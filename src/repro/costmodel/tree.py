"""Binary regression tree with exact greedy splits.

This is the weak learner of the gradient-boosted cost model.  Splits minimise
the squared-error criterion; split search is vectorised with NumPy prefix
sums over the sorted feature values, so fitting stays fast for the few
thousand samples collected during a tuning run.

Prediction is vectorised as well: after fitting, the tree is flattened into
parallel node arrays (feature, threshold, child indices, leaf value) and a
whole feature matrix is routed level by level in at most ``max_depth`` NumPy
steps, instead of walking the node objects once per row.  This is what makes
batched cost-model inference fast enough for the measurement pipeline's
large candidate batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.caching import hot_path_enabled

__all__ = ["RegressionTree"]


@dataclass
class _Node:
    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART-style regression tree (squared loss).

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root has depth 0).
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    min_gain:
        Minimum reduction of the sum of squared errors required to split.
    max_features:
        Number of candidate features examined at every split (``None`` = all);
        when set, features are subsampled with the provided RNG, which
        decorrelates the boosted ensemble.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        min_gain: float = 1e-12,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._root = self._build(X, y, depth=0)
        self._flatten()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a whole feature matrix at once.

        The batch is routed through the flattened node arrays level by level:
        every iteration advances all rows still at internal nodes one level
        down, so the loop runs at most ``max_depth`` times regardless of the
        batch size.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        node = np.zeros(X.shape[0], dtype=np.intp)
        while True:
            feature = self._node_feature[node]
            active = feature >= 0
            if not np.any(active):
                break
            rows = np.nonzero(active)[0]
            at = node[rows]
            go_left = X[rows, feature[rows]] <= self._node_threshold[at]
            node[rows] = np.where(go_left, self._node_left[at], self._node_right[at])
        return self._node_value[node]

    # ------------------------------------------------------------------ #
    def _flatten(self) -> None:
        """Flatten the node objects into parallel arrays for batched predict."""
        features: list = []
        thresholds: list = []
        lefts: list = []
        rights: list = []
        values: list = []

        def add(node: _Node) -> int:
            idx = len(features)
            features.append(-1)
            thresholds.append(node.threshold)
            lefts.append(-1)
            rights.append(-1)
            values.append(node.prediction)
            if not node.is_leaf:
                features[idx] = node.feature
                lefts[idx] = add(node.left)
                rights[idx] = add(node.right)
            return idx

        add(self._root)
        self._node_feature = np.asarray(features, dtype=np.intp)
        self._node_threshold = np.asarray(thresholds, dtype=np.float64)
        self._node_left = np.asarray(lefts, dtype=np.intp)
        self._node_right = np.asarray(rights, dtype=np.intp)
        self._node_value = np.asarray(values, dtype=np.float64)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(np.mean(y)))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.allclose(y, y[0]):
            return node

        feature, threshold, gain = self._best_split(X, y)
        if feature < 0 or gain < self.min_gain:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        features = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            features = self._rng.choice(n_features, size=self.max_features, replace=False)
        return features

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """Exact greedy split over all candidate features in one NumPy pass.

        All candidate columns are argsorted and prefix-summed together
        (``axis=0``), so split search costs one sort of an ``(N, K)`` matrix
        instead of ``K`` per-feature sorts — the dominant cost of cost-model
        refits on the tuning hot path.  Gains, validity masks and the
        first-maximum tie-breaking replicate :meth:`_best_split_reference`
        bit for bit, so both implementations grow identical trees.
        """
        if not hot_path_enabled():
            return self._best_split_reference(X, y)
        n_samples, n_features = X.shape
        total_sum = float(np.sum(y))
        total_sq = float(np.sum(y * y))
        base_sse = total_sq - total_sum * total_sum / n_samples
        features = self._candidate_features(n_features)

        cols = X[:, features]
        order = np.argsort(cols, axis=0, kind="mergesort")
        v_sorted = np.take_along_axis(cols, order, axis=0)
        y_sorted = y[order]

        left_count = np.arange(1, n_samples)[:, None]
        left_sum = np.cumsum(y_sorted, axis=0)[:-1]
        left_sq = np.cumsum(y_sorted * y_sorted, axis=0)[:-1]
        right_count = n_samples - left_count
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq

        sse = (
            left_sq
            - left_sum * left_sum / left_count
            + right_sq
            - right_sum * right_sum / right_count
        )
        gains = base_sse - sse
        valid = (
            (left_count >= self.min_samples_leaf)
            & (right_count >= self.min_samples_leaf)
            & (v_sorted[:-1] < v_sorted[1:])
        )
        gains = np.where(valid, gains, -np.inf)

        col_best = np.argmax(gains, axis=0)
        col_gain = gains[col_best, np.arange(len(features))]
        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        for k, feature in enumerate(features):
            if col_gain[k] > best_gain:
                idx = int(col_best[k])
                best_gain = float(col_gain[k])
                best_feature = int(feature)
                best_threshold = float((v_sorted[idx, k] + v_sorted[idx + 1, k]) / 2.0)
        return best_feature, best_threshold, best_gain

    def _best_split_reference(self, X: np.ndarray, y: np.ndarray):
        """Per-feature reference split search (the pre-overhaul implementation)."""
        n_samples, n_features = X.shape
        total_sum = float(np.sum(y))
        total_sq = float(np.sum(y * y))
        base_sse = total_sq - total_sum * total_sum / n_samples

        features = self._candidate_features(n_features)

        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="mergesort")
            v_sorted = values[order]
            y_sorted = y[order]

            left_count = np.arange(1, n_samples)
            left_sum = np.cumsum(y_sorted)[:-1]
            left_sq = np.cumsum(y_sorted * y_sorted)[:-1]
            right_count = n_samples - left_count
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq

            sse = (
                left_sq
                - left_sum * left_sum / left_count
                + right_sq
                - right_sum * right_sum / right_count
            )
            gains = base_sse - sse

            # Valid split positions: both children big enough and distinct
            # adjacent feature values (otherwise the threshold is degenerate).
            valid = (
                (left_count >= self.min_samples_leaf)
                & (right_count >= self.min_samples_leaf)
                & (v_sorted[:-1] < v_sorted[1:])
            )
            if not np.any(valid):
                continue
            gains = np.where(valid, gains, -np.inf)
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain:
                best_gain = float(gains[idx])
                best_feature = int(feature)
                best_threshold = float((v_sorted[idx] + v_sorted[idx + 1]) / 2.0)

        return best_feature, best_threshold, best_gain
