"""Span tracing: context-manager spans, trace events, JSONL trace trees.

This is the *timelines* half of :mod:`repro.obs` — the *numbers* half
(counters/gauges/histograms) lives in :mod:`repro.obs.metrics`.  Unlike
metrics, tracing follows the same arming discipline as
:func:`repro.faults.plan.poll`: a module-level active :class:`Tracer` that
is ``None`` by default, so every instrumentation site in production code
costs exactly one global read when tracing is off::

    with obs.span("service.round", job=fingerprint) as sp:
        trials = job.scheduler.tune_round(...)
        sp.annotate(trials=trials)

When no tracer is armed, :func:`span` returns a shared no-op span and
:func:`trace_event` returns immediately.  Arm one with::

    with obs.tracing("trace.jsonl") as tracer:
        service.process(requests)

Parent/child nesting is tracked per *logical* thread of execution with a
:class:`contextvars.ContextVar`.  ``ThreadPoolExecutor`` workers do **not**
inherit the submitting thread's context, so code that fans work out to a
pool captures :func:`current_span_id` on the submitting thread and passes it
to the worker explicitly (``span(name, parent=parent_id)``) — that is how
``ParallelMeasurer`` keeps its per-chunk spans attached to the batch span.

Each finished span becomes one JSONL record::

    {"kind": "span", "id": 3, "parent": 1, "name": "measure.chunk",
     "start_s": 0.0123, "duration_s": 0.0040, "wall_time": 1754550000.1,
     "attrs": {"schedules": 24}}

and :func:`render_tree` turns a record list back into an indented text tree
for ``repro trace``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active_tracer",
    "current_span_id",
    "render_tree",
    "span",
    "trace_event",
    "tracing",
]

#: Current span id for this logical thread of execution (None at top level).
_CURRENT: "ContextVar[Optional[int]]" = ContextVar("repro_obs_current_span", default=None)

#: Sentinel: "inherit the parent from the calling context".
_INHERIT = object()


class Span:
    """One timed, attributed node in a trace tree (use as a context manager)."""

    __slots__ = ("tracer", "id", "parent", "name", "attrs", "_start", "_wall", "_token")

    def __init__(self, tracer: "Tracer", span_id: int, parent: Optional[int], name: str, attrs: Dict):
        self.tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._wall = 0.0
        self._token = None

    def annotate(self, **attrs) -> None:
        """Attach extra attributes to the span (e.g. results known at exit)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.id)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self.tracer._record_span(self, duration)
        # exceptions propagate


class _NullSpan:
    """Shared do-nothing span returned while no tracer is armed."""

    __slots__ = ()
    id = None
    parent = None
    name = ""

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and events for one tracing session.

    Records are kept in memory (``records``) and, when ``path`` is given,
    also appended eagerly as JSONL so a crash mid-session still leaves a
    usable trace on disk — the same durability stance as
    :class:`repro.records.RecordStore`.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self._lock = threading.Lock()
        self._next_id = 1
        self.records: List[Dict] = []
        self.epoch = time.perf_counter()
        self._file = None
        self.path: Optional[Path] = None
        if path is not None:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")

    # ------------------------------------------------------------------ #
    def span(self, name: str, parent=_INHERIT, **attrs) -> Span:
        """Open a span.  ``parent`` defaults to the calling context's span;
        pass an explicit id (or ``None`` for a root) when crossing a thread
        pool boundary, where contextvars do not follow."""
        if parent is _INHERIT:
            parent = _CURRENT.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, parent, name, dict(attrs))

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event under the current span."""
        record = {
            "kind": "event",
            "parent": _CURRENT.get(),
            "name": name,
            "start_s": round(time.perf_counter() - self.epoch, 6),
            "wall_time": round(time.time(), 6),
            "attrs": attrs,
        }
        self._append(record)

    def _record_span(self, span: Span, duration: float) -> None:
        record = {
            "kind": "span",
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "start_s": round(span._start - self.epoch, 6),
            "duration_s": round(duration, 6),
            "wall_time": round(span._wall, 6),
            "attrs": span.attrs,
        }
        self._append(record)

    def _append(self, record: Dict) -> None:
        with self._lock:
            self.records.append(record)
            if self._file is not None:
                self._file.write(json.dumps(record, sort_keys=True) + "\n")
                self._file.flush()

    # ------------------------------------------------------------------ #
    def lines(self) -> List[str]:
        """The trace as JSONL lines (one record per line)."""
        with self._lock:
            return [json.dumps(record, sort_keys=True) for record in self.records]

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.lines()) + "\n", encoding="utf-8")
        return path

    def tree(self) -> str:
        with self._lock:
            records = list(self.records)
        return render_tree(records)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def render_tree(records: List[Dict]) -> str:
    """Render trace records as an indented text tree.

    Spans print as ``name  12.3ms  {attrs}``; events as ``· name {attrs}``.
    Children are ordered by start time.  Orphans (parent id never recorded,
    e.g. a crashed parent span) surface at the root rather than vanishing.
    """
    span_ids = {r["id"] for r in records if r["kind"] == "span"}
    children: Dict[Optional[int], List[Dict]] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None and parent not in span_ids:
            parent = None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r["start_s"])

    lines: List[str] = []

    def emit(record: Dict, depth: int) -> None:
        indent = "  " * depth
        attrs = record.get("attrs") or {}
        attr_text = f"  {json.dumps(attrs, sort_keys=True)}" if attrs else ""
        if record["kind"] == "event":
            lines.append(f"{indent}· {record['name']}{attr_text}")
            return
        duration_ms = record["duration_s"] * 1e3
        lines.append(f"{indent}{record['name']}  {duration_ms:.3f}ms{attr_text}")
        for child in children.get(record["id"], ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# module-level arming, mirroring repro.faults.plan
# --------------------------------------------------------------------- #
_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The armed tracer, or None — production code never needs this directly."""
    return _ACTIVE


def span(name: str, parent=_INHERIT, **attrs):
    """Open a span on the armed tracer, or return the shared no-op span.

    This is *the* instrumentation entry point: one global read when tracing
    is unarmed, so it is safe on hot paths.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, parent=parent, **attrs)


def trace_event(name: str, **attrs) -> None:
    """Record an instantaneous event on the armed tracer (no-op otherwise)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(name, **attrs)


def current_span_id() -> Optional[int]:
    """The calling context's span id — capture this before a thread-pool
    submit and pass it to :func:`span` as ``parent=`` in the worker."""
    if _ACTIVE is None:
        return None
    return _CURRENT.get()


@contextmanager
def tracing(path: Optional[Union[str, Path]] = None) -> Iterator[Tracer]:
    """Arm a :class:`Tracer` for the duration of the block.

    Tracing sessions do not nest (one process-wide timeline, same as one
    process-wide fault plan): arming while armed raises ``RuntimeError``.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracing session is already active; sessions do not nest")
    tracer = Tracer(path)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = None
        tracer.close()
