"""Unified observability for the tuning/serving stack.

Two halves, one import (``from repro import obs``):

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and fixed-bucket
  latency histograms (p50/p95/p99) in one process-wide registry, with JSON
  snapshots and Prometheus text exposition.  Instruments are always live.
* :mod:`repro.obs.trace` — context-manager spans with parent/child nesting
  (surviving thread-pool fan-out via explicit parent ids), instantaneous
  events, JSONL trace trees.  Armed per session via :func:`tracing`; every
  site is a single global read when unarmed, the same discipline as
  :func:`repro.faults.plan.poll`.

This package is a **leaf** of the import graph: it imports only the
standard library, because nearly every repro module (including
``faults.plan`` and ``caching``) imports it.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
    register_collector,
    render_prometheus,
    reset_metrics,
    snapshot,
    write_snapshot,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    active_tracer,
    current_span_id,
    render_tree,
    span,
    trace_event,
    tracing,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active_tracer",
    "counter",
    "current_span_id",
    "default_registry",
    "gauge",
    "histogram",
    "register_collector",
    "render_prometheus",
    "render_tree",
    "reset_metrics",
    "snapshot",
    "span",
    "trace_event",
    "tracing",
    "write_snapshot",
]
