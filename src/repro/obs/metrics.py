"""Thread-safe metrics primitives: counters, gauges and latency histograms.

This is the *numbers* half of the observability layer (:mod:`repro.obs`); the
*timelines* half — spans and trace events — lives in :mod:`repro.obs.trace`.

Design rules, in the same spirit as :func:`repro.faults.plan.poll`:

* **Instruments are cheap and always live.**  A counter increment is one
  small lock plus an integer add, so production code binds its instruments at
  module import (``_HITS = counter("registry.hits")``) and increments them
  unconditionally — there is no arming step for plain metrics, which is what
  lets migrated legacy counters (cache hit/miss statistics, record-store
  flush accounting) keep their exact previous semantics.
* **One registry, one snapshot.**  Every instrument registers itself in a
  :class:`MetricsRegistry` (the process-wide default unless a test builds its
  own), so ``repro metrics`` / ``BENCH_metrics.json`` report the whole stack
  from a single :func:`snapshot` call.  Subsystems that keep their own
  counter objects for API-compatibility reasons (:mod:`repro.caching`)
  publish them through a **collector** — a callback the registry invokes at
  snapshot time — instead of double-counting into separate instruments.
* **Histograms are fixed-bucket.**  :class:`Histogram` counts observations
  into a fixed ladder of upper bounds (default: a latency ladder from 10 µs
  to 60 s), tracks count/sum/min/max, and reports percentiles as the
  smallest bucket upper bound covering the requested rank — exact whenever
  observations land on bucket boundaries, and never below the true
  percentile otherwise.  That makes p50/p95/p99 safe to gate on.

Naming convention: dotted lowercase ``subsystem.metric`` names
(``service.submit_to_finish_seconds``); duration histograms end in
``_seconds``.  The Prometheus text exposition (:meth:`MetricsRegistry.
render_prometheus`) maps dots to underscores and prefixes ``repro_``, so the
same metric appears as ``repro_service_submit_to_finish_seconds``.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "default_registry",
    "gauge",
    "histogram",
    "register_collector",
    "render_prometheus",
    "reset_metrics",
    "snapshot",
    "write_snapshot",
]

#: Default histogram ladder for wall-clock durations: ~1-2.5-5 decades from
#: 10 microseconds to one minute.  Wide enough for everything the stack times
#: (sub-ms shard appends up to multi-second tuning rounds).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically counting metric (resettable for test isolation)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    def set(self, value: Union[int, float]) -> None:
        """Pin the counter (used by legacy-accessor shims and resets)."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0)

    def snapshot(self) -> float:
        value = self.value
        return int(value) if float(value).is_integer() else value


class Gauge:
    """A metric that can go up and down (queue depths, in-flight jobs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0)

    def snapshot(self) -> float:
        value = self.value
        return int(value) if float(value).is_integer() else value


class Histogram:
    """Fixed-bucket histogram with conservative percentile reporting.

    ``bounds`` are the inclusive upper bounds (Prometheus ``le``) of the
    finite buckets, strictly increasing; one implicit overflow bucket catches
    everything beyond the last bound.  :meth:`percentile` returns the
    smallest bucket upper bound whose cumulative count covers the requested
    rank (the observed maximum for the overflow bucket) — exact when
    observations land on bucket boundaries, an upper bound otherwise, and
    never an underestimate, which is the safe direction for latency gates.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} bounds must strictly increase")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError(f"histogram {name!r} bounds must be finite")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # final slot: overflow (+Inf)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)  # first bound >= value (le)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: Union[int, float]) -> float:
        """The q-th percentile (0 < q <= 100) from the bucket counts.

        Returns 0.0 for an empty histogram.  The result is the smallest
        bucket upper bound covering ``ceil(q/100 * count)`` observations, so
        it is exact when observations sit on bucket bounds and otherwise
        rounds *up* to the containing bucket's bound.
        """
        if not 0 < q <= 100:
            raise ValueError(f"percentile wants 0 < q <= 100, got {q}")
        with self._lock:
            count = self._count
            counts = list(self._counts)
            maximum = self._max
        if count == 0:
            return 0.0
        rank = max(1, -(-count * q // 100))  # ceil(count * q / 100)
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return maximum  # overflow bucket: best bound is the max seen
        return maximum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe summary: count/sum/min/max, p50/p95/p99, bucket counts."""
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            minimum = self._min
            maximum = self._max
        buckets: List[Dict[str, object]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            buckets.append({"le": bound, "count": cumulative})
        buckets.append({"le": "+Inf", "count": count})
        return {
            "count": count,
            "sum": total,
            "min": minimum if count else None,
            "max": maximum if count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": buckets,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create instrument registry with one-call snapshots.

    ``counter`` / ``gauge`` / ``histogram`` return the existing instrument
    when the name is already registered (so every module binding
    ``counter("x")`` shares one instrument) and raise ``TypeError`` when the
    name is registered under a different metric kind — silent kind drift
    would corrupt dashboards.

    Collectors extend the snapshot with values owned elsewhere: a collector
    is a zero-argument callable returning ``{metric_name: number}``, invoked
    at snapshot/exposition time.  :mod:`repro.caching` uses one to publish
    its per-cache hit/miss counters without changing their storage.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Metric]" = {}
        self._collectors: Dict[str, Callable[[], Dict[str, float]]] = {}

    # ------------------------------------------------------------------ #
    # instrument access
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, factory) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            lambda: Histogram(name, buckets or DEFAULT_LATENCY_BUCKETS, help),
        )

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def register_collector(
        self, name: str, fn: Callable[[], Dict[str, float]]
    ) -> None:
        """(Re-)register a snapshot-time collector under a stable name."""
        with self._lock:
            self._collectors[name] = fn

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def _collected(self) -> Dict[str, float]:
        with self._lock:
            collectors = sorted(self._collectors.items())
        merged: Dict[str, float] = {}
        for _name, fn in collectors:
            merged.update(fn())
        return merged

    def snapshot(self) -> Dict[str, object]:
        """One JSON-safe snapshot of every instrument and collector."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name, metric in metrics:
            if isinstance(metric, Counter):
                counters[name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.snapshot()
            else:
                histograms[name] = metric.snapshot()
        return {
            "schema": "repro-metrics/1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "collected": self._collected(),
        }

    def write_snapshot(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2) + "\n", encoding="utf-8")
        return path

    @staticmethod
    def _prom_name(name: str, prefix: str) -> str:
        return f"{prefix}_{re.sub(r'[^a-zA-Z0-9_]', '_', name)}"

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition of every instrument and collector.

        Counters gain the conventional ``_total`` suffix; histograms emit
        cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``;
        collector values are exposed as untyped gauges.
        """
        lines: List[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            prom = self._prom_name(name, prefix)
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {prom}_total counter")
                lines.append(f"{prom}_total {metric.snapshot()}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {metric.snapshot()}")
            else:
                summary = metric.snapshot()
                lines.append(f"# TYPE {prom} histogram")
                for bucket in summary["buckets"]:
                    le = bucket["le"]
                    le_text = le if isinstance(le, str) else repr(float(le))
                    lines.append(f'{prom}_bucket{{le="{le_text}"}} {bucket["count"]}')
                lines.append(f"{prom}_sum {summary['sum']}")
                lines.append(f"{prom}_count {summary['count']}")
        collected = self._collected()
        for name in sorted(collected):
            prom = self._prom_name(name, prefix)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {collected[name]}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every instrument (registrations and collectors survive).

        Collector-backed values are owned elsewhere and are *not* reset —
        callers wanting a fully clean slate also reset the owning subsystem
        (e.g. :func:`repro.caching.reset_cache_stats`).
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# --------------------------------------------------------------------- #
# the process-wide default registry
# --------------------------------------------------------------------- #
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every production instrument lives in."""
    return _DEFAULT


def counter(name: str, help: str = "") -> Counter:
    return _DEFAULT.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return _DEFAULT.gauge(name, help)


def histogram(
    name: str, buckets: Optional[Sequence[float]] = None, help: str = ""
) -> Histogram:
    return _DEFAULT.histogram(name, buckets, help)


def register_collector(name: str, fn: Callable[[], Dict[str, float]]) -> None:
    _DEFAULT.register_collector(name, fn)


def snapshot() -> Dict[str, object]:
    return _DEFAULT.snapshot()


def write_snapshot(path: Union[str, Path]) -> Path:
    return _DEFAULT.write_snapshot(path)


def render_prometheus(prefix: str = "repro") -> str:
    return _DEFAULT.render_prometheus(prefix)


def reset_metrics() -> None:
    """Zero every instrument in the default registry (for test isolation)."""
    _DEFAULT.reset()
