"""Analytic latency simulator.

This module replaces real hardware measurements.  Given a schedule and a
:class:`~repro.hardware.target.HardwareTarget` it computes an estimated
execution latency from first-order performance effects:

* vectorisation efficiency of the innermost spatial tile,
* register-tile size (too small → loop overhead, too large → spills),
* loop overhead vs. the auto-unroll depth (with an i-cache pressure penalty),
* cache locality of the L1/L2 tile working sets,
* DRAM traffic as a function of outer tile counts, cache-write and fusion,
* parallel speedup with load balance, task-spawn overhead and (on GPU)
  occupancy,
* compute-at placement of the fused/cached stage,
* rfactor reduction parallelism,
* a deterministic per-schedule "ruggedness" factor that models the
  unmodelled micro-architectural noise which makes real tuning landscapes
  multi-modal.

The absolute numbers are not meant to match the paper's hardware; what
matters is that the landscape is schedule-sensitive and rugged, so the search
algorithms face the same kind of optimisation problem.

Two implementations share the model:

* :meth:`LatencySimulator.reference_breakdown` — the scalar reference, one
  schedule at a time (kept as the baseline for benchmarks and equivalence
  tests);
* :meth:`LatencySimulator.batch_latency` / :meth:`batch_breakdown` — the
  vectorised path: the batch is grouped by sketch, sketch-static quantities
  are computed once per group (and memoised on the sketch), and every
  efficiency factor is evaluated as one NumPy expression over the group.
  Single-schedule calls (:meth:`latency`, :meth:`breakdown`) route through a
  batch of one, so serial and batched measurement stay equivalent by
  construction.  The two implementations agree to floating-point rounding
  (the vectorised path uses NumPy transcendentals where the scalar path used
  ``float.__pow__``; tests pin the agreement at ``rtol=1e-9``).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.caching import hot_path_enabled
from repro.hardware.target import HardwareTarget
from repro.tensor.dag import DTYPE_BYTES
from repro.tensor.factors import product
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import Sketch

__all__ = ["LatencySimulator", "SimulationBreakdown"]


@dataclass(frozen=True)
class SimulationBreakdown:
    """Detailed per-component timing (exposed for tests, debugging and docs)."""

    latency: float
    compute_time: float
    memory_time: float
    parallel_overhead: float
    epilogue_time: float
    speedup: float
    efficiency: float
    ruggedness: float
    factors: Dict[str, float]


#: Attribute under which per-sketch simulator statics are memoised.
_STATICS_ATTR = "_simulator_statics_cache"


class _SketchStatics:
    """Target-independent per-sketch constants of the latency model.

    Everything here depends only on the sketch and its DAG — iterator
    counts, tiling depths, FLOPs, epilogue work, compute-at geometry, the
    rfactor piece count — so it is computed once per sketch instance and
    shared by every batch (and every simulator) that touches the sketch.
    """

    __slots__ = (
        "n_spatial",
        "n_reduction",
        "spatial_levels",
        "reduction_levels",
        "flops",
        "fuse_consumer",
        "cache_write",
        "rfactor",
        "has_data_reuse",
        "input_bytes",
        "output_bytes",
        "rfactor_pieces",
        "n_candidates",
        "ca_ideal",
        "ca_weight",
        "ca_denominator",
        "pending_flops",
        "pending_bytes",
        "fusion_eff",
    )

    def __init__(self, sketch: Sketch):
        dag = sketch.dag
        main = dag.main_stage
        self.n_spatial = len(main.spatial_iters)
        self.n_reduction = len(main.reduction_iters)
        self.spatial_levels = sketch.spatial_levels
        self.reduction_levels = sketch.reduction_levels
        self.flops = max(dag.flops, 1.0)
        self.fuse_consumer = sketch.fuse_consumer
        self.cache_write = sketch.cache_write
        self.rfactor = sketch.rfactor
        self.has_data_reuse = dag.has_data_reuse
        self.input_bytes = float(dag.input_bytes)
        self.output_bytes = float(dag.output_bytes)

        total_reduction = 1
        for it in main.reduction_iters:
            total_reduction *= it.extent
        self.rfactor_pieces = (
            min(8, max(1, total_reduction // 128)) if sketch.rfactor else 1
        )

        n_candidates = len(dag.compute_at_candidates())
        self.n_candidates = n_candidates
        self.ca_ideal = min(1 + self.n_spatial // 2, n_candidates - 1)
        self.ca_weight = 0.15 if (sketch.fuse_consumer or sketch.cache_write) else 0.03
        self.ca_denominator = max(n_candidates - 1, 1)

        pending_flops = 0.0
        pending_bytes = 0.0
        if not sketch.fuse_consumer:
            for stage in dag.elementwise_stages:
                if stage.name in sketch.inlined_stages:
                    continue
                if dag.main_stage_name not in stage.producers:
                    continue
                pending_flops += stage.flops
                pending_bytes += stage.output_elements * DTYPE_BYTES * 2
        self.pending_flops = pending_flops
        self.pending_bytes = pending_bytes
        self.fusion_eff = 1.05 if sketch.fuse_consumer else 1.0


def _masked_pow(values: np.ndarray, mask: np.ndarray, exponent: float) -> np.ndarray:
    """``values ** exponent`` on the masked elements, bit-compatible with CPython.

    The scalar reference path computes its cache/register/i-cache penalties
    with ``float.__pow__`` (libm ``pow``), which differs from ``np.power`` in
    the last ulp for a few percent of inputs.  Those ulps matter: measured
    latencies feed the cost model, and a single flipped tree split changes a
    whole search trajectory.  Penalties are rare enough (only schedules that
    blow a budget) that evaluating them through Python's ``pow`` keeps the
    batch bit-identical to the serial reference at negligible cost.
    """
    out = np.ones_like(values)
    if mask.any():
        out[mask] = [v**exponent for v in values[mask].tolist()]
    return out


def _statics_of(sketch: Sketch) -> _SketchStatics:
    statics = sketch.__dict__.get(_STATICS_ATTR)
    if statics is None:
        statics = _SketchStatics(sketch)
        object.__setattr__(sketch, _STATICS_ATTR, statics)
    return statics


class LatencySimulator:
    """Deterministic schedule → latency model for one hardware target."""

    #: Noise amplitude of the deterministic ruggedness factor.
    RUGGEDNESS_SIGMA = 0.05
    #: Relative loop-overhead constant (cycles of control flow per body op).
    LOOP_OVERHEAD = 6.0
    #: Register-tile volume beyond which spill penalties kick in (fp32 values).
    REGISTER_BUDGET = 512.0
    #: Instruction-footprint budget for unrolled bodies before i-cache penalties.
    ICACHE_BUDGET = 4096.0

    def __init__(self, target: HardwareTarget, ruggedness_seed: int = 0):
        self.target = target
        self.ruggedness_seed = int(ruggedness_seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def latency(self, schedule: Schedule) -> float:
        """Estimated execution latency (seconds) of one schedule."""
        return float(self.batch_latency([schedule])[0])

    def throughput(self, schedule: Schedule) -> float:
        """FLOP/s achieved by the schedule (used as the 'performance' metric)."""
        lat = self.latency(schedule)
        return schedule.dag.flops / lat if lat > 0 else 0.0

    def breakdown(self, schedule: Schedule) -> SimulationBreakdown:
        """Full per-component timing decomposition of one schedule."""
        if not hot_path_enabled():
            return self.reference_breakdown(schedule)
        return self.batch_breakdown([schedule])[0]

    # ------------------------------------------------------------------ #
    # vectorised batch path
    # ------------------------------------------------------------------ #
    def batch_latency(self, schedules: Sequence[Schedule]) -> np.ndarray:
        """Latencies of a whole batch in one vectorised pass per sketch group.

        This is the entry point of the measurement hot path: the
        :class:`~repro.hardware.measurer.Measurer` hands every measurement
        batch here instead of looping schedule by schedule.
        """
        if not schedules:
            return np.zeros(0, dtype=np.float64)
        if not hot_path_enabled():
            return np.array(
                [self.reference_breakdown(s).latency for s in schedules],
                dtype=np.float64,
            )
        out = np.zeros(len(schedules), dtype=np.float64)
        for sketch, rows in self._groups(schedules):
            comp = self._batch_components(sketch, [schedules[i] for i in rows])
            out[np.asarray(rows, dtype=np.intp)] = comp["latency"]
        return out

    def batch_breakdown(
        self, schedules: Sequence[Schedule]
    ) -> List[SimulationBreakdown]:
        """Per-component decompositions for a batch (vectorised per group)."""
        results: List[SimulationBreakdown] = [None] * len(schedules)  # type: ignore
        for sketch, rows in self._groups(schedules):
            group = [schedules[i] for i in rows]
            comp = self._batch_components(sketch, group)
            for local, row in enumerate(rows):
                results[row] = SimulationBreakdown(
                    latency=float(comp["latency"][local]),
                    compute_time=float(comp["compute_time"][local]),
                    memory_time=float(comp["memory_time"][local]),
                    parallel_overhead=float(comp["parallel_overhead"][local]),
                    epilogue_time=float(comp["epilogue_time"][local]),
                    speedup=float(comp["speedup"][local]),
                    efficiency=float(comp["efficiency"][local]),
                    ruggedness=float(comp["ruggedness"][local]),
                    factors={
                        "vector": float(comp["vector"][local]),
                        "register": float(comp["register"][local]),
                        "loop": float(comp["loop"][local]),
                        "cache": float(comp["cache"][local]),
                        "compute_at": float(comp["compute_at"][local]),
                        "fusion": float(comp["fusion"][local]),
                        "speedup": float(comp["speedup"][local]),
                    },
                )
        return results

    @staticmethod
    def _groups(schedules: Sequence[Schedule]):
        groups: Dict[int, List[int]] = {}
        keep: Dict[int, Sketch] = {}
        for idx, schedule in enumerate(schedules):
            key = id(schedule.sketch)
            keep[key] = schedule.sketch
            groups.setdefault(key, []).append(idx)
        return [(keep[key], rows) for key, rows in groups.items()]

    def _batch_components(
        self, sketch: Sketch, schedules: Sequence[Schedule]
    ) -> Dict[str, np.ndarray]:
        """All latency-model components of one sketch group, as arrays."""
        target = self.target
        st = _statics_of(sketch)
        n = len(schedules)

        tiles = np.asarray([s.flat_tile_sizes() for s in schedules], dtype=np.float64)
        n_sp, n_red = st.n_spatial, st.n_reduction
        ls, lr = st.spatial_levels, st.reduction_levels
        tiles_sp = tiles[:, : n_sp * ls].reshape(n, n_sp, ls)
        tiles_red = tiles[:, n_sp * ls :].reshape(n, n_red, lr)

        num_parallel = np.asarray([s.num_parallel for s in schedules], dtype=np.intp)
        compute_at = np.asarray(
            [s.compute_at_index for s in schedules], dtype=np.float64
        )
        unroll = np.asarray([s.unroll_depth for s in schedules], dtype=np.float64)

        # --- vectorisation efficiency ---------------------------------- #
        vw = float(target.vector_width)
        if n_sp:
            t_vec = tiles_sp[:, -1, -1]
            vector = np.where(
                t_vec >= vw,
                np.where(t_vec % vw == 0, 1.0, 0.85),
                np.maximum(0.15, 0.25 + 0.75 * t_vec / vw),
            )
        else:
            t_vec = np.ones(n)
            vector = np.full(n, 0.5)

        # --- register-tile efficiency ---------------------------------- #
        spatial_vol = np.prod(tiles_sp[:, :, -1], axis=1) if n_sp else np.ones(n)
        reduction_vol = np.prod(tiles_red[:, :, -1], axis=1) if n_red else np.ones(n)
        reg_vol = spatial_vol * np.maximum(reduction_vol, 1.0)
        spilled = reg_vol > self.REGISTER_BUDGET
        register = np.where(
            spilled,
            np.maximum(
                0.35, _masked_pow(self.REGISTER_BUDGET / reg_vol, spilled, 0.5)
            ),
            1.0,
        )

        # --- loop overhead / unrolling --------------------------------- #
        body = np.maximum(reg_vol, 1.0)
        # The unroll term must be bit-identical to the scalar reference's
        # math.log2 (np.log2 differs in the last ulp for some inputs, e.g.
        # 1621.0); there are at most len(unroll_depths) distinct values per
        # batch, so one libm call per unique value keeps this exact.
        log_unroll = np.empty(n)
        unroll_plus2 = 2.0 + unroll
        for value in np.unique(unroll_plus2):
            log_unroll[unroll_plus2 == value] = math.log2(value)
        effective_body = body * np.maximum(1.0, log_unroll)
        loop = 1.0 / (1.0 + self.LOOP_OVERHEAD / effective_body)
        instr_footprint = body * np.maximum(unroll, 1.0)
        pressured = instr_footprint > self.ICACHE_BUDGET
        loop = np.where(
            pressured,
            loop
            * np.maximum(
                0.5,
                _masked_pow(self.ICACHE_BUDGET / instr_footprint, pressured, 0.25),
            ),
            loop,
        )

        # --- cache locality of the L1/L2 working sets ------------------- #
        def working_set(spatial_levels: int, reduction_levels: int) -> np.ndarray:
            if n_sp:
                inner = np.prod(tiles_sp[:, :, ls - min(spatial_levels, ls) :], axis=2)
                prod_sp = np.prod(inner, axis=1)
                sum_sp = np.sum(inner, axis=1)
            else:
                prod_sp = np.ones(n)
                sum_sp = np.zeros(n)
            if n_red:
                prod_red = np.prod(
                    tiles_red[:, :, lr - min(reduction_levels, lr) :], axis=(1, 2)
                )
            else:
                prod_red = np.ones(n)
            return DTYPE_BYTES * (prod_sp + prod_red * sum_sp)

        ws_l1 = working_set(2, 1)
        ws_l2 = working_set(3, 2)
        over_l1 = ws_l1 > target.l1_bytes
        over_l2 = ws_l2 > target.l2_bytes
        cache = np.where(
            over_l1,
            np.maximum(0.45, _masked_pow(target.l1_bytes / ws_l1, over_l1, 0.25)),
            1.0,
        ) * np.where(
            over_l2,
            np.maximum(0.6, _masked_pow(target.l2_bytes / ws_l2, over_l2, 0.15)),
            1.0,
        )

        # --- compute-at placement -------------------------------------- #
        if st.n_candidates <= 1:
            compute_at_eff = np.ones(n)
        else:
            distance = np.abs(compute_at - st.ca_ideal) / st.ca_denominator
            compute_at_eff = 1.0 - st.ca_weight * distance

        fusion = np.full(n, st.fusion_eff)
        efficiency = np.clip(
            vector * register * loop * cache * compute_at_eff * fusion, 1e-4, 1.0
        )

        # --- parallel speedup ------------------------------------------ #
        if n_sp:
            prefix = np.concatenate(
                [np.ones((n, 1)), np.cumprod(tiles_sp[:, :, 0], axis=1)], axis=1
            )
            par_extent = prefix[np.arange(n), num_parallel]
        else:
            par_extent = np.ones(n)
        par_extent = par_extent * st.rfactor_pieces

        cores = float(target.num_cores)
        rounds = np.ceil(par_extent / cores)
        speedup = np.minimum(par_extent / np.maximum(rounds, 1.0), cores)
        if target.kind == "gpu":
            occupancy = np.minimum(1.0, par_extent / (cores * 8.0))
            speedup = np.maximum(speedup * np.maximum(0.15, occupancy), 1.0)
        overhead = target.parallel_overhead * (par_extent / np.maximum(speedup, 1.0))
        serial = par_extent <= 1
        speedup = np.where(serial, 1.0, speedup)
        par_overhead = np.where(serial, 0.0, overhead)

        # --- DRAM traffic ---------------------------------------------- #
        outer_reduction = np.prod(tiles_red[:, :, 0], axis=1) if n_red else np.ones(n)
        outer_spatial = np.prod(tiles_sp[:, :, 0], axis=1) if n_sp else np.ones(n)
        if st.cache_write or not st.has_data_reuse:
            output_traffic = np.full(n, st.output_bytes)
        else:
            output_traffic = st.output_bytes * (2.0 * outer_reduction - 1.0)
        reread = np.maximum(1.0, np.sqrt(outer_spatial) / 2.0)
        traffic = output_traffic + st.input_bytes * reread
        if st.fuse_consumer:
            traffic = traffic * 0.85
        if st.rfactor:
            traffic = traffic + st.output_bytes * 4.0
        memory_time = traffic / target.dram_bandwidth

        # --- epilogue, compute time, ruggedness ------------------------- #
        if st.pending_flops == 0.0:
            epilogue_time = np.zeros(n)
        else:
            epilogue = max(
                st.pending_flops / (target.peak_flops * 0.25),
                st.pending_bytes / target.dram_bandwidth,
            )
            epilogue_time = np.full(n, epilogue)

        compute_time = st.flops / (target.peak_flops_per_core * efficiency) / speedup

        ruggedness = np.empty(n)
        for i, schedule in enumerate(schedules):
            ruggedness[i] = self._ruggedness(schedule)

        overlapped = np.maximum(compute_time, memory_time) + 0.25 * np.minimum(
            compute_time, memory_time
        )
        latency = (
            overlapped + par_overhead + target.kernel_overhead + epilogue_time
        ) * ruggedness

        return {
            "latency": latency,
            "compute_time": compute_time,
            "memory_time": memory_time,
            "parallel_overhead": par_overhead,
            "epilogue_time": epilogue_time,
            "speedup": speedup,
            "efficiency": efficiency,
            "ruggedness": ruggedness,
            "vector": vector,
            "register": register,
            "loop": loop,
            "cache": cache,
            "compute_at": compute_at_eff,
            "fusion": fusion,
        }

    # ------------------------------------------------------------------ #
    # scalar reference path
    # ------------------------------------------------------------------ #
    def reference_breakdown(self, schedule: Schedule) -> SimulationBreakdown:
        """Scalar reference decomposition of one schedule.

        This is the original schedule-at-a-time implementation, kept as the
        baseline the perf harness times under :func:`~repro.caching.legacy_hot_path`
        and as the oracle the serial-vs-vectorised equivalence tests compare
        :meth:`batch_latency` against.
        """
        target = self.target
        dag = schedule.dag
        flops = max(dag.flops, 1.0)

        spatial = schedule.spatial_tile_sizes()
        reduction = schedule.reduction_tile_sizes()

        factors: Dict[str, float] = {}

        vector_eff = self._vectorization_efficiency(spatial)
        factors["vector"] = vector_eff

        register_eff = self._register_efficiency(schedule)
        factors["register"] = register_eff

        loop_eff = self._loop_overhead_efficiency(schedule)
        factors["loop"] = loop_eff

        cache_eff = self._cache_efficiency(schedule, spatial, reduction)
        factors["cache"] = cache_eff

        compute_at_eff = self._compute_at_efficiency(schedule)
        factors["compute_at"] = compute_at_eff

        fusion_eff = 1.05 if schedule.sketch.fuse_consumer else 1.0
        factors["fusion"] = fusion_eff

        efficiency = vector_eff * register_eff * loop_eff * cache_eff * compute_at_eff * fusion_eff
        efficiency = float(np.clip(efficiency, 1e-4, 1.0))

        speedup, par_overhead = self._parallel_speedup(schedule)
        factors["speedup"] = speedup

        compute_time = flops / (target.peak_flops_per_core * efficiency) / speedup

        memory_time = self._memory_time(schedule, spatial, reduction)
        epilogue_time = self._epilogue_time(schedule)

        ruggedness = self._ruggedness(schedule)

        overlapped = max(compute_time, memory_time) + 0.25 * min(compute_time, memory_time)
        latency = (overlapped + par_overhead + target.kernel_overhead + epilogue_time) * ruggedness

        return SimulationBreakdown(
            latency=float(latency),
            compute_time=float(compute_time),
            memory_time=float(memory_time),
            parallel_overhead=float(par_overhead),
            epilogue_time=float(epilogue_time),
            speedup=float(speedup),
            efficiency=float(efficiency),
            ruggedness=float(ruggedness),
            factors=factors,
        )

    # ------------------------------------------------------------------ #
    # individual effects (scalar reference)
    # ------------------------------------------------------------------ #
    def _vectorization_efficiency(self, spatial) -> float:
        """SIMD utilisation of the innermost spatial tile (the vectorised axis)."""
        if not spatial:
            return 0.5
        vw = self.target.vector_width
        t_vec = spatial[-1][-1]
        if t_vec >= vw:
            return 1.0 if t_vec % vw == 0 else 0.85
        return max(0.15, 0.25 + 0.75 * t_vec / vw)

    def _register_efficiency(self, schedule: Schedule) -> float:
        """Penalty for register tiles that exceed the register file."""
        reg_vol = schedule.innermost_spatial_volume() * max(
            schedule.innermost_reduction_volume(), 1
        )
        if reg_vol <= self.REGISTER_BUDGET:
            return 1.0
        return float(max(0.35, (self.REGISTER_BUDGET / reg_vol) ** 0.5))

    def _loop_overhead_efficiency(self, schedule: Schedule) -> float:
        """Loop control overhead, reduced by unrolling up to i-cache limits."""
        body = max(
            schedule.innermost_spatial_volume() * max(schedule.innermost_reduction_volume(), 1),
            1,
        )
        unroll = schedule.unroll_depth
        effective_body = body * max(1.0, math.log2(2 + unroll))
        overhead_fraction = self.LOOP_OVERHEAD / effective_body
        eff = 1.0 / (1.0 + overhead_fraction)
        instr_footprint = body * max(unroll, 1)
        if instr_footprint > self.ICACHE_BUDGET:
            eff *= max(0.5, (self.ICACHE_BUDGET / instr_footprint) ** 0.25)
        return float(eff)

    def _cache_efficiency(self, schedule: Schedule, spatial, reduction) -> float:
        """Locality of the L1 and L2 working sets of the tiled loop nest."""
        target = self.target

        def working_set(spatial_levels: int, reduction_levels: int) -> float:
            prod_sp = 1.0
            sum_sp = 0.0
            for sizes in spatial:
                inner = product(sizes[-spatial_levels:]) if sizes else 1
                prod_sp *= inner
                sum_sp += inner
            prod_red = 1.0
            for sizes in reduction:
                prod_red *= product(sizes[-reduction_levels:]) if sizes else 1
            # Output tile + one operand tile per spatial dimension streamed over
            # the reduction tile (the GEMM A/B footprint generalised).
            return DTYPE_BYTES * (prod_sp + prod_red * sum_sp)

        ws_l1 = working_set(2, 1)
        ws_l2 = working_set(3, 2)

        eff_l1 = 1.0 if ws_l1 <= target.l1_bytes else max(0.45, (target.l1_bytes / ws_l1) ** 0.25)
        eff_l2 = 1.0 if ws_l2 <= target.l2_bytes else max(0.6, (target.l2_bytes / ws_l2) ** 0.15)
        return float(eff_l1 * eff_l2)

    def _compute_at_efficiency(self, schedule: Schedule) -> float:
        """Placement quality of the fused consumer / cache-write stage.

        The ideal compute-at location sits in the middle of the spatial loop
        nest (after the outer parallel tiles, before the register tiles);
        positions further away lose producer-consumer reuse.  When the sketch
        has neither fusion nor cache-write the knob only has a small residual
        effect (loop-invariant hoisting of the inlined epilogue).
        """
        n_candidates = len(schedule.dag.compute_at_candidates())
        if n_candidates <= 1:
            return 1.0
        relevant = schedule.sketch.fuse_consumer or schedule.sketch.cache_write
        weight = 0.15 if relevant else 0.03
        ideal = 1 + len(schedule.dag.main_stage.spatial_iters) // 2
        ideal = min(ideal, n_candidates - 1)
        distance = abs(schedule.compute_at_index - ideal) / max(n_candidates - 1, 1)
        return float(1.0 - weight * distance)

    def _parallel_speedup(self, schedule: Schedule) -> tuple:
        """Parallel speedup and the associated task-spawn overhead."""
        target = self.target
        par_extent = schedule.parallel_extent()

        if schedule.sketch.rfactor:
            # Reduction factorisation exposes extra parallelism, most useful
            # when the spatial iteration space alone cannot fill the machine.
            total_reduction = 1
            for it in schedule.dag.main_stage.reduction_iters:
                total_reduction *= it.extent
            rfactor_pieces = min(8, max(1, total_reduction // 128))
            par_extent *= rfactor_pieces

        if par_extent <= 1:
            return 1.0, 0.0

        cores = target.num_cores
        # Load-balanced speedup: work is split into `par_extent` equal chunks
        # scheduled round-robin over `cores` workers.
        rounds = math.ceil(par_extent / cores)
        speedup = par_extent / rounds
        speedup = min(speedup, cores)

        if target.kind == "gpu":
            # GPUs need an excess of independent blocks to hide latency.
            occupancy = min(1.0, par_extent / (cores * 8.0))
            speedup *= max(0.15, occupancy)
            speedup = max(speedup, 1.0)

        overhead = target.parallel_overhead * (par_extent / max(speedup, 1.0))
        return float(speedup), float(overhead)

    def _memory_time(self, schedule: Schedule, spatial, reduction) -> float:
        """DRAM traffic model: outer tile counts determine how often operands stream."""
        dag = schedule.dag
        target = self.target

        outer_reduction = 1
        for sizes in reduction:
            outer_reduction *= sizes[0] if sizes else 1

        outer_spatial_tiles = 1
        for sizes in spatial:
            outer_spatial_tiles *= sizes[0] if sizes else 1

        if schedule.sketch.cache_write or not dag.has_data_reuse:
            output_traffic = dag.output_bytes
        else:
            # Splitting the reduction at the outermost level re-reads and
            # re-writes the partial output once per outer reduction tile.
            output_traffic = dag.output_bytes * (2 * outer_reduction - 1)

        # Each input operand streams roughly once per outer spatial tile of
        # the dimensions it does not index; the square root is a generic
        # surrogate for "half of the outer dimensions don't index me".
        reread = max(1.0, math.sqrt(outer_spatial_tiles) / 2.0)
        input_traffic = dag.input_bytes * reread

        traffic = output_traffic + input_traffic
        if schedule.sketch.fuse_consumer:
            traffic *= 0.85  # the epilogue round-trip through DRAM disappears
        if schedule.sketch.rfactor:
            traffic += dag.output_bytes * 4  # partial-result combine pass

        return float(traffic / target.dram_bandwidth)

    def _epilogue_time(self, schedule: Schedule) -> float:
        """Cost of element-wise stages that are neither inlined nor fused."""
        dag = schedule.dag
        sketch = schedule.sketch
        if sketch.fuse_consumer:
            return 0.0
        pending_flops = 0.0
        pending_bytes = 0.0
        for stage in dag.elementwise_stages:
            if stage.name in sketch.inlined_stages:
                continue
            if dag.main_stage_name not in stage.producers:
                continue
            pending_flops += stage.flops
            pending_bytes += stage.output_elements * DTYPE_BYTES * 2
        if pending_flops == 0.0:
            return 0.0
        compute = pending_flops / (self.target.peak_flops * 0.25)
        memory = pending_bytes / self.target.dram_bandwidth
        return float(max(compute, memory))

    def _ruggedness(self, schedule: Schedule) -> float:
        """Deterministic multiplicative noise keyed on the schedule identity."""
        signature = repr(schedule.signature()) + f"|{self.target.name}|{self.ruggedness_seed}"
        seed = zlib.crc32(signature.encode("utf-8"))
        rng = np.random.default_rng(seed)
        noise = float(rng.standard_normal()) * self.RUGGEDNESS_SIGMA
        return float(np.clip(1.0 + noise, 0.85, 1.15))
