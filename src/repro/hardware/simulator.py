"""Analytic latency simulator.

This module replaces real hardware measurements.  Given a schedule and a
:class:`~repro.hardware.target.HardwareTarget` it computes an estimated
execution latency from first-order performance effects:

* vectorisation efficiency of the innermost spatial tile,
* register-tile size (too small → loop overhead, too large → spills),
* loop overhead vs. the auto-unroll depth (with an i-cache pressure penalty),
* cache locality of the L1/L2 tile working sets,
* DRAM traffic as a function of outer tile counts, cache-write and fusion,
* parallel speedup with load balance, task-spawn overhead and (on GPU)
  occupancy,
* compute-at placement of the fused/cached stage,
* rfactor reduction parallelism,
* a deterministic per-schedule "ruggedness" factor that models the
  unmodelled micro-architectural noise which makes real tuning landscapes
  multi-modal.

The absolute numbers are not meant to match the paper's hardware; what
matters is that the landscape is schedule-sensitive and rugged, so the search
algorithms face the same kind of optimisation problem.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.tensor.dag import DTYPE_BYTES
from repro.tensor.factors import product
from repro.tensor.schedule import Schedule
from repro.hardware.target import HardwareTarget

__all__ = ["LatencySimulator", "SimulationBreakdown"]


@dataclass(frozen=True)
class SimulationBreakdown:
    """Detailed per-component timing (exposed for tests, debugging and docs)."""

    latency: float
    compute_time: float
    memory_time: float
    parallel_overhead: float
    epilogue_time: float
    speedup: float
    efficiency: float
    ruggedness: float
    factors: Dict[str, float]


class LatencySimulator:
    """Deterministic schedule → latency model for one hardware target."""

    #: Noise amplitude of the deterministic ruggedness factor.
    RUGGEDNESS_SIGMA = 0.05
    #: Relative loop-overhead constant (cycles of control flow per body op).
    LOOP_OVERHEAD = 6.0
    #: Register-tile volume beyond which spill penalties kick in (fp32 values).
    REGISTER_BUDGET = 512.0
    #: Instruction-footprint budget for unrolled bodies before i-cache penalties.
    ICACHE_BUDGET = 4096.0

    def __init__(self, target: HardwareTarget, ruggedness_seed: int = 0):
        self.target = target
        self.ruggedness_seed = int(ruggedness_seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def latency(self, schedule: Schedule) -> float:
        """Estimated execution latency (seconds) of one schedule."""
        return self.breakdown(schedule).latency

    def throughput(self, schedule: Schedule) -> float:
        """FLOP/s achieved by the schedule (used as the 'performance' metric)."""
        lat = self.latency(schedule)
        return schedule.dag.flops / lat if lat > 0 else 0.0

    def breakdown(self, schedule: Schedule) -> SimulationBreakdown:
        """Full per-component timing decomposition of one schedule.

        Combines the individual efficiency factors (vectorisation, register
        tiles, loop overhead, cache locality, compute-at placement, fusion),
        the parallel speedup model, the DRAM-traffic memory time and the
        deterministic ruggedness factor into the final latency estimate.
        """
        target = self.target
        dag = schedule.dag
        flops = max(dag.flops, 1.0)

        spatial = schedule.spatial_tile_sizes()
        reduction = schedule.reduction_tile_sizes()

        factors: Dict[str, float] = {}

        vector_eff = self._vectorization_efficiency(spatial)
        factors["vector"] = vector_eff

        register_eff = self._register_efficiency(schedule)
        factors["register"] = register_eff

        loop_eff = self._loop_overhead_efficiency(schedule)
        factors["loop"] = loop_eff

        cache_eff = self._cache_efficiency(schedule, spatial, reduction)
        factors["cache"] = cache_eff

        compute_at_eff = self._compute_at_efficiency(schedule)
        factors["compute_at"] = compute_at_eff

        fusion_eff = 1.05 if schedule.sketch.fuse_consumer else 1.0
        factors["fusion"] = fusion_eff

        efficiency = vector_eff * register_eff * loop_eff * cache_eff * compute_at_eff * fusion_eff
        efficiency = float(np.clip(efficiency, 1e-4, 1.0))

        speedup, par_overhead = self._parallel_speedup(schedule)
        factors["speedup"] = speedup

        compute_time = flops / (target.peak_flops_per_core * efficiency) / speedup

        memory_time = self._memory_time(schedule, spatial, reduction)
        epilogue_time = self._epilogue_time(schedule)

        ruggedness = self._ruggedness(schedule)

        overlapped = max(compute_time, memory_time) + 0.25 * min(compute_time, memory_time)
        latency = (overlapped + par_overhead + target.kernel_overhead + epilogue_time) * ruggedness

        return SimulationBreakdown(
            latency=float(latency),
            compute_time=float(compute_time),
            memory_time=float(memory_time),
            parallel_overhead=float(par_overhead),
            epilogue_time=float(epilogue_time),
            speedup=float(speedup),
            efficiency=float(efficiency),
            ruggedness=float(ruggedness),
            factors=factors,
        )

    # ------------------------------------------------------------------ #
    # individual effects
    # ------------------------------------------------------------------ #
    def _vectorization_efficiency(self, spatial) -> float:
        """SIMD utilisation of the innermost spatial tile (the vectorised axis)."""
        if not spatial:
            return 0.5
        vw = self.target.vector_width
        t_vec = spatial[-1][-1]
        if t_vec >= vw:
            return 1.0 if t_vec % vw == 0 else 0.85
        return max(0.15, 0.25 + 0.75 * t_vec / vw)

    def _register_efficiency(self, schedule: Schedule) -> float:
        """Penalty for register tiles that exceed the register file."""
        reg_vol = schedule.innermost_spatial_volume() * max(
            schedule.innermost_reduction_volume(), 1
        )
        if reg_vol <= self.REGISTER_BUDGET:
            return 1.0
        return float(max(0.35, (self.REGISTER_BUDGET / reg_vol) ** 0.5))

    def _loop_overhead_efficiency(self, schedule: Schedule) -> float:
        """Loop control overhead, reduced by unrolling up to i-cache limits."""
        body = max(
            schedule.innermost_spatial_volume() * max(schedule.innermost_reduction_volume(), 1),
            1,
        )
        unroll = schedule.unroll_depth
        effective_body = body * max(1.0, math.log2(2 + unroll))
        overhead_fraction = self.LOOP_OVERHEAD / effective_body
        eff = 1.0 / (1.0 + overhead_fraction)
        instr_footprint = body * max(unroll, 1)
        if instr_footprint > self.ICACHE_BUDGET:
            eff *= max(0.5, (self.ICACHE_BUDGET / instr_footprint) ** 0.25)
        return float(eff)

    def _cache_efficiency(self, schedule: Schedule, spatial, reduction) -> float:
        """Locality of the L1 and L2 working sets of the tiled loop nest."""
        target = self.target

        def working_set(spatial_levels: int, reduction_levels: int) -> float:
            prod_sp = 1.0
            sum_sp = 0.0
            for sizes in spatial:
                inner = product(sizes[-spatial_levels:]) if sizes else 1
                prod_sp *= inner
                sum_sp += inner
            prod_red = 1.0
            for sizes in reduction:
                prod_red *= product(sizes[-reduction_levels:]) if sizes else 1
            # Output tile + one operand tile per spatial dimension streamed over
            # the reduction tile (the GEMM A/B footprint generalised).
            return DTYPE_BYTES * (prod_sp + prod_red * sum_sp)

        ws_l1 = working_set(2, 1)
        ws_l2 = working_set(3, 2)

        eff_l1 = 1.0 if ws_l1 <= target.l1_bytes else max(0.45, (target.l1_bytes / ws_l1) ** 0.25)
        eff_l2 = 1.0 if ws_l2 <= target.l2_bytes else max(0.6, (target.l2_bytes / ws_l2) ** 0.15)
        return float(eff_l1 * eff_l2)

    def _compute_at_efficiency(self, schedule: Schedule) -> float:
        """Placement quality of the fused consumer / cache-write stage.

        The ideal compute-at location sits in the middle of the spatial loop
        nest (after the outer parallel tiles, before the register tiles);
        positions further away lose producer-consumer reuse.  When the sketch
        has neither fusion nor cache-write the knob only has a small residual
        effect (loop-invariant hoisting of the inlined epilogue).
        """
        n_candidates = len(schedule.dag.compute_at_candidates())
        if n_candidates <= 1:
            return 1.0
        relevant = schedule.sketch.fuse_consumer or schedule.sketch.cache_write
        weight = 0.15 if relevant else 0.03
        ideal = 1 + len(schedule.dag.main_stage.spatial_iters) // 2
        ideal = min(ideal, n_candidates - 1)
        distance = abs(schedule.compute_at_index - ideal) / max(n_candidates - 1, 1)
        return float(1.0 - weight * distance)

    def _parallel_speedup(self, schedule: Schedule) -> tuple:
        """Parallel speedup and the associated task-spawn overhead."""
        target = self.target
        par_extent = schedule.parallel_extent()

        if schedule.sketch.rfactor:
            # Reduction factorisation exposes extra parallelism, most useful
            # when the spatial iteration space alone cannot fill the machine.
            total_reduction = 1
            for it in schedule.dag.main_stage.reduction_iters:
                total_reduction *= it.extent
            rfactor_pieces = min(8, max(1, total_reduction // 128))
            par_extent *= rfactor_pieces

        if par_extent <= 1:
            return 1.0, 0.0

        cores = target.num_cores
        # Load-balanced speedup: work is split into `par_extent` equal chunks
        # scheduled round-robin over `cores` workers.
        rounds = math.ceil(par_extent / cores)
        speedup = par_extent / rounds
        speedup = min(speedup, cores)

        if target.kind == "gpu":
            # GPUs need an excess of independent blocks to hide latency.
            occupancy = min(1.0, par_extent / (cores * 8.0))
            speedup *= max(0.15, occupancy)
            speedup = max(speedup, 1.0)

        overhead = target.parallel_overhead * (par_extent / max(speedup, 1.0))
        return float(speedup), float(overhead)

    def _memory_time(self, schedule: Schedule, spatial, reduction) -> float:
        """DRAM traffic model: outer tile counts determine how often operands stream."""
        dag = schedule.dag
        target = self.target

        outer_reduction = 1
        for sizes in reduction:
            outer_reduction *= sizes[0] if sizes else 1

        outer_spatial_tiles = 1
        for sizes in spatial:
            outer_spatial_tiles *= sizes[0] if sizes else 1

        if schedule.sketch.cache_write or not dag.has_data_reuse:
            output_traffic = dag.output_bytes
        else:
            # Splitting the reduction at the outermost level re-reads and
            # re-writes the partial output once per outer reduction tile.
            output_traffic = dag.output_bytes * (2 * outer_reduction - 1)

        # Each input operand streams roughly once per outer spatial tile of
        # the dimensions it does not index; the square root is a generic
        # surrogate for "half of the outer dimensions don't index me".
        reread = max(1.0, math.sqrt(outer_spatial_tiles) / 2.0)
        input_traffic = dag.input_bytes * reread

        traffic = output_traffic + input_traffic
        if schedule.sketch.fuse_consumer:
            traffic *= 0.85  # the epilogue round-trip through DRAM disappears
        if schedule.sketch.rfactor:
            traffic += dag.output_bytes * 4  # partial-result combine pass

        return float(traffic / target.dram_bandwidth)

    def _epilogue_time(self, schedule: Schedule) -> float:
        """Cost of element-wise stages that are neither inlined nor fused."""
        dag = schedule.dag
        sketch = schedule.sketch
        if sketch.fuse_consumer:
            return 0.0
        pending_flops = 0.0
        pending_bytes = 0.0
        for stage in dag.elementwise_stages:
            if stage.name in sketch.inlined_stages:
                continue
            if dag.main_stage_name not in stage.producers:
                continue
            pending_flops += stage.flops
            pending_bytes += stage.output_elements * DTYPE_BYTES * 2
        if pending_flops == 0.0:
            return 0.0
        compute = pending_flops / (self.target.peak_flops * 0.25)
        memory = pending_bytes / self.target.dram_bandwidth
        return float(max(compute, memory))

    def _ruggedness(self, schedule: Schedule) -> float:
        """Deterministic multiplicative noise keyed on the schedule identity."""
        signature = repr(schedule.signature()) + f"|{self.target.name}|{self.ruggedness_seed}"
        seed = zlib.crc32(signature.encode("utf-8"))
        rng = np.random.default_rng(seed)
        noise = float(rng.standard_normal()) * self.RUGGEDNESS_SIGMA
        return float(np.clip(1.0 + noise, 0.85, 1.15))
