"""Simulated measurement substrate.

The paper measures candidate schedules on an Intel Xeon 6226R and an Nvidia
RTX 3090.  This package replaces those measurements with an analytic latency
model: the simulator scores a schedule from its tiling locality, vectorisation,
parallel load balance, loop overhead / unrolling and producer-consumer reuse,
and the measurer adds realistic measurement noise and repeat semantics.
"""

from repro.hardware.target import HardwareTarget, cpu_target, gpu_target
from repro.hardware.simulator import LatencySimulator
from repro.hardware.measurer import MeasureResult, Measurer

__all__ = [
    "HardwareTarget",
    "LatencySimulator",
    "MeasureResult",
    "Measurer",
    "cpu_target",
    "gpu_target",
]
