"""Simulated measurement substrate.

The paper measures candidate schedules on an Intel Xeon 6226R and an Nvidia
RTX 3090.  This package replaces those measurements with an analytic latency
model: the simulator scores a schedule from its tiling locality, vectorisation,
parallel load balance, loop overhead / unrolling and producer-consumer reuse,
and the measurer adds realistic measurement noise and repeat semantics.

Batches of candidates can be measured serially (:class:`Measurer`) or fanned
out over a thread/process pool (:class:`ParallelMeasurer`); per-(schedule,
trial) noise seeding makes both produce identical results for the same seed.
"""

from repro.hardware.target import HardwareTarget, cpu_target, gpu_target
from repro.hardware.catalog import (
    TargetCatalog,
    default_catalog,
    target_distance,
    target_embedding,
)
from repro.hardware.simulator import LatencySimulator
from repro.hardware.measurer import MeasureResult, Measurer, simulate_measurement
from repro.hardware.parallel import ParallelMeasurer

__all__ = [
    "HardwareTarget",
    "LatencySimulator",
    "MeasureResult",
    "Measurer",
    "ParallelMeasurer",
    "TargetCatalog",
    "cpu_target",
    "default_catalog",
    "gpu_target",
    "simulate_measurement",
    "target_distance",
    "target_embedding",
]
