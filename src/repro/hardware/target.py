"""Hardware target descriptions.

The two presets here mirror the evaluation platforms of the paper (Appendix
A.2): an Intel Xeon 6226R (32 cores, AVX-512) and an Nvidia GeForce RTX
3090.  The full device catalog — server CPUs, edge/mobile CPUs, GPU tiers,
synthetic variants and target embeddings — lives in
:mod:`repro.hardware.catalog`.  All numbers feed the analytic latency model;
they are nominal datasheet-level values, not calibrated measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.tensor.schedule import CPU_UNROLL_DEPTHS, GPU_UNROLL_DEPTHS

__all__ = ["HardwareTarget", "cpu_target", "gpu_target"]


@dataclass(frozen=True)
class HardwareTarget:
    """Parameters of the simulated execution platform.

    Attributes
    ----------
    name:
        Target identifier (``"xeon-6226r"`` / ``"rtx-3090"``).
    kind:
        ``"cpu"`` or ``"gpu"``; selects the sketch tiling structure and the
        unroll depth candidates.
    num_cores:
        Number of parallel execution units (physical cores / SMs).
    peak_flops_per_core:
        Peak single-precision FLOP/s of one execution unit at full vector
        utilisation.
    vector_width:
        SIMD lanes (fp32) per instruction — 16 for AVX-512, 32 for a GPU warp.
    l1_bytes / l2_bytes / l3_bytes:
        Cache capacities used by the tile-footprint locality model.  On the
        GPU preset, ``l1_bytes`` models shared memory per SM and ``l3_bytes``
        the device L2.
    dram_bandwidth:
        Main memory bandwidth in bytes/s.
    parallel_overhead:
        Fixed cost (seconds) of launching one parallel task/thread chunk.
    kernel_overhead:
        Fixed per-invocation cost (seconds) — thread-pool wake-up on CPU,
        kernel launch on GPU.
    """

    name: str
    kind: str
    num_cores: int
    peak_flops_per_core: float
    vector_width: int
    l1_bytes: float
    l2_bytes: float
    l3_bytes: float
    dram_bandwidth: float
    parallel_overhead: float
    kernel_overhead: float

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"unknown target kind {self.kind!r}")
        if not self.name:
            raise ValueError("target name must be non-empty")
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if self.vector_width < 1:
            raise ValueError("vector_width must be >= 1")
        for attr in ("peak_flops_per_core", "l1_bytes", "l2_bytes", "l3_bytes",
                     "dram_bandwidth"):
            if not getattr(self, attr) > 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("parallel_overhead", "kernel_overhead"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    @property
    def peak_flops(self) -> float:
        """Aggregate peak FLOP/s of the whole device."""
        return self.num_cores * self.peak_flops_per_core

    @property
    def unroll_depths(self) -> Tuple[int, ...]:
        """Auto-unroll depth candidates for this target kind (Appendix A.1)."""
        return CPU_UNROLL_DEPTHS if self.kind == "cpu" else GPU_UNROLL_DEPTHS

    @property
    def sketch_spatial_levels(self) -> int:
        """Multi-level tiling depth for spatial loops (Ansor uses 4 on CPU, 5 on GPU)."""
        return 4 if self.kind == "cpu" else 5

    @property
    def sketch_reduction_levels(self) -> int:
        """Multi-level tiling depth for reduction loops (2 on CPU, 3 on GPU)."""
        return 2 if self.kind == "cpu" else 3


def cpu_target() -> HardwareTarget:
    """Intel Xeon Gold 6226R-like target (32 cores, 2.9 GHz, AVX-512)."""
    # 2.9 GHz * 2 FMA ports * 16 fp32 lanes * 2 flops/FMA = ~185 GFLOP/s per core.
    return HardwareTarget(
        name="xeon-6226r",
        kind="cpu",
        num_cores=32,
        peak_flops_per_core=185.6e9,
        vector_width=16,
        l1_bytes=32 * 1024,
        l2_bytes=1024 * 1024,
        l3_bytes=22 * 1024 * 1024,
        dram_bandwidth=140e9,
        parallel_overhead=2.0e-6,
        kernel_overhead=5.0e-6,
    )


def gpu_target() -> HardwareTarget:
    """Nvidia GeForce RTX 3090-like target (82 SMs, 936 GB/s)."""
    # 35.6 TFLOP/s fp32 across 82 SMs -> ~434 GFLOP/s per SM.
    return HardwareTarget(
        name="rtx-3090",
        kind="gpu",
        num_cores=82,
        peak_flops_per_core=434.0e9,
        vector_width=32,
        l1_bytes=100 * 1024,       # shared memory / L1 per SM
        l2_bytes=512 * 1024,       # per-SM share of device L2
        l3_bytes=6 * 1024 * 1024,  # device L2
        dram_bandwidth=936e9,
        parallel_overhead=0.5e-6,
        kernel_overhead=8.0e-6,
    )
