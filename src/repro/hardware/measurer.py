"""Measurement harness on top of the latency simulator.

The :class:`Measurer` mirrors the role of TVM's RPC measurer in the paper:
given candidate schedules it returns measured latencies (simulated latency
plus log-normal measurement noise, averaged over repeats so that at least
``min_repeat_seconds`` of wall time is covered — the ``r_min`` parameter of
Table 5), and it keeps global statistics: the number of measurement trials
consumed and the best schedule found so far per workload.

The pipeline is built for batched, possibly parallel evaluation:

* **Noise is pre-drawn in submission order.**  Before a batch is evaluated,
  one standard-normal noise draw per schedule is taken from the measurer's
  sequential RNG.  Each task is then a *pure function* of (schedule, target,
  noise parameters, draw), so a worker pool can evaluate the batch in any
  order — see :class:`~repro.hardware.parallel.ParallelMeasurer` — and still
  produce results identical to a serial run.
* **Statistics are committed atomically per batch**, in submission order, on
  the controlling thread.  Trial counters, best-per-workload tracking and
  progress histories are therefore identical between serial and parallel
  execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.caching import hot_path_enabled
from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import HardwareTarget
from repro.tensor.schedule import Schedule

__all__ = [
    "MeasureResult",
    "Measurer",
    "simulate_measurement",
    "simulate_measurement_batch",
]


@dataclass(frozen=True)
class MeasureResult:
    """Outcome of measuring one schedule.

    Attributes
    ----------
    schedule:
        The measured schedule candidate.
    latency:
        Measured execution latency in seconds (simulated latency times a
        log-normal noise factor).
    throughput:
        Achieved FLOP/s, i.e. ``schedule.dag.flops / latency``.
    repeats:
        Number of timing repetitions that were averaged (the ``r_min``
        repeat semantics of the paper).
    trial_index:
        Global 1-based index of this measurement across the measurer's
        lifetime; used as the x-axis of tuning-progress curves.
    """

    schedule: Schedule
    latency: float
    throughput: float
    repeats: int
    trial_index: int

    @property
    def is_valid(self) -> bool:
        """Whether the measurement produced a usable (finite, positive) latency."""
        return np.isfinite(self.latency) and self.latency > 0


@dataclass
class _WorkloadStats:
    best_latency: float = float("inf")
    best_schedule: Optional[Schedule] = None
    trials: int = 0
    history: List[Tuple[int, float]] = field(default_factory=list)


def simulate_measurement(
    schedule: Schedule,
    simulator: LatencySimulator,
    noise: float,
    min_repeat_seconds: float,
    max_repeats: int,
    noise_draw: float,
) -> Tuple[float, int]:
    """Simulate one hardware measurement of a schedule.

    This is a pure function — it touches no shared state and consumes its
    randomness as an explicit argument — which is what allows
    :class:`~repro.hardware.parallel.ParallelMeasurer` to fan it out over a
    worker pool without affecting determinism.

    Parameters
    ----------
    schedule:
        Candidate schedule to measure.
    simulator:
        Latency simulator for the hardware target.
    noise:
        Relative standard deviation of a single timing sample.
    min_repeat_seconds:
        Minimum wall time covered by repeated timing (``r_min``); more
        repeats shrink the effective noise by ``sqrt(repeats)``.
    max_repeats:
        Upper bound on the number of repeats.
    noise_draw:
        A standard-normal draw supplied by the measurer (taken from its
        sequential RNG in batch-submission order).

    Returns
    -------
    (latency, repeats):
        The noisy measured latency in seconds and the repeat count used.
    """
    return simulate_measurement_batch(
        [schedule], simulator, noise, min_repeat_seconds, max_repeats, [noise_draw]
    )[0]


def simulate_measurement_batch(
    schedules: Sequence[Schedule],
    simulator: LatencySimulator,
    noise: float,
    min_repeat_seconds: float,
    max_repeats: int,
    noise_draws: Sequence[float],
) -> List[Tuple[float, int]]:
    """Simulate hardware measurements of a whole batch in one vectorised pass.

    The simulator consumes the batch through
    :meth:`~repro.hardware.simulator.LatencySimulator.batch_latency` (one
    NumPy pass per sketch group) and the repeat/noise arithmetic is applied
    as array expressions.  Per-element results are identical to calling
    :func:`simulate_measurement` schedule by schedule, so worker pools may
    split a batch into arbitrary chunks without changing any outcome.
    """
    if not schedules:
        return []
    true_latencies = simulator.batch_latency(schedules)
    repeats = np.clip(
        np.ceil(min_repeat_seconds / np.maximum(true_latencies, 1e-9)),
        1,
        max_repeats,
    ).astype(np.int64)
    # Averaging `repeats` noisy samples shrinks the noise by sqrt(repeats).
    effective_noise = noise / np.sqrt(repeats)
    factors = np.exp(np.asarray(noise_draws, dtype=np.float64) * effective_noise)
    measured = true_latencies * factors
    return [
        (float(latency), int(reps)) for latency, reps in zip(measured, repeats)
    ]


class Measurer:
    """Simulated measurement backend shared by all auto-schedulers.

    Parameters
    ----------
    target:
        Hardware target to simulate.
    noise:
        Relative standard deviation of a single timing sample.
    min_repeat_seconds:
        Minimum wall time covered by repeated timing of one schedule
        (``r_min`` in Table 5); more repeats shrink the effective noise.
    max_repeats:
        Upper bound on the number of timing repetitions per measurement.
    seed:
        Seed of the measurement-noise RNG (the simulator's deterministic
        ruggedness has its own seed).  One standard-normal value is consumed
        per measurement, in batch-submission order, so runs with the same
        seed see the same noise stream whether measurement is serial or
        parallel and however batches are split.
    record_store:
        Optional :class:`~repro.records.RecordStore`; when set, every
        measurement is appended to the store's JSONL log as it is committed,
        making tuning runs resumable.
    """

    def __init__(
        self,
        target: HardwareTarget,
        noise: float = 0.02,
        min_repeat_seconds: float = 1.0,
        max_repeats: int = 32,
        seed: int = 0,
        record_store=None,
    ):
        self.target = target
        self.simulator = LatencySimulator(target)
        self.noise = float(noise)
        self.min_repeat_seconds = float(min_repeat_seconds)
        self.max_repeats = int(max_repeats)
        self.seed = int(seed)
        self.record_store = record_store
        self._rng = np.random.default_rng(seed)
        self._stats: Dict[str, _WorkloadStats] = {}
        self.total_trials = 0

    # ------------------------------------------------------------------ #
    def measure(self, schedules: Sequence[Schedule]) -> List[MeasureResult]:
        """Measure a batch of schedules, updating global trial statistics.

        One noise draw per schedule is taken up front (in submission order),
        the batch is evaluated — serially here, possibly in parallel in
        subclasses — and the statistics update is committed atomically in one
        pass afterwards, so serial and parallel execution report identical
        results and trial accounting.
        """
        if not schedules:
            return []
        draws = [float(self._rng.standard_normal()) for _ in schedules]
        outcomes = self._run_batch(schedules, draws)
        return self._commit_batch(schedules, outcomes)

    def _run_batch(
        self, schedules: Sequence[Schedule], draws: Sequence[float]
    ) -> List[Tuple[float, int]]:
        """Evaluate a batch of (schedule, noise draw) measurement tasks.

        The whole batch goes to the simulator in one vectorised pass (under
        :func:`~repro.caching.legacy_hot_path` it degrades to the original
        per-schedule loop, which the perf harness times as the baseline).
        Subclasses override this hook to fan the batch out over a worker
        pool; results must be returned in submission order.
        """
        if not hot_path_enabled():
            return [
                simulate_measurement(
                    schedule,
                    self.simulator,
                    self.noise,
                    self.min_repeat_seconds,
                    self.max_repeats,
                    draw,
                )
                for schedule, draw in zip(schedules, draws)
            ]
        return simulate_measurement_batch(
            schedules,
            self.simulator,
            self.noise,
            self.min_repeat_seconds,
            self.max_repeats,
            draws,
        )

    def _commit_batch(
        self, schedules: Sequence[Schedule], outcomes: Sequence[Tuple[float, int]]
    ) -> List[MeasureResult]:
        """Fold a batch of measurement outcomes into the global statistics.

        Runs in submission order under single-threaded control, so trial
        counters, best-per-workload tracking and the progress history are
        updated atomically per batch regardless of how the batch was
        evaluated.
        """
        results: List[MeasureResult] = []
        for schedule, (latency, repeats) in zip(schedules, outcomes):
            self.total_trials += 1
            stats = self._stats.setdefault(schedule.dag.name, _WorkloadStats())
            stats.trials += 1
            if latency < stats.best_latency:
                stats.best_latency = latency
                stats.best_schedule = schedule
            stats.history.append((self.total_trials, stats.best_latency))
            result = MeasureResult(
                schedule=schedule,
                latency=float(latency),
                throughput=float(schedule.dag.flops / latency),
                repeats=repeats,
                trial_index=self.total_trials,
            )
            results.append(result)
            if self.record_store is not None:
                self.record_store.record_measure(result)
        return results

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def best_latency(self, workload_name: str) -> float:
        """Best (lowest) measured latency for a workload, ``inf`` if none."""
        stats = self._stats.get(workload_name)
        return stats.best_latency if stats else float("inf")

    def best_schedule(self, workload_name: str) -> Optional[Schedule]:
        """The schedule that achieved :meth:`best_latency`, if any."""
        stats = self._stats.get(workload_name)
        return stats.best_schedule if stats else None

    def trials(self, workload_name: str) -> int:
        """Number of measurement trials spent on one workload."""
        stats = self._stats.get(workload_name)
        return stats.trials if stats else 0

    def history(self, workload_name: str) -> List[Tuple[int, float]]:
        """(global trial index, best latency so far) pairs for one workload."""
        stats = self._stats.get(workload_name)
        return list(stats.history) if stats else []

    def preload(
        self, workload_name: str, latency: float, schedule: Optional[Schedule] = None
    ) -> None:
        """Seed the best-known result for a workload without consuming trials.

        Used when resuming from a record store: the best latency and schedule
        of a previous run become the starting point of the new run's
        statistics, while trial counters and the progress history stay at
        zero so the new budget is accounted from scratch.
        """
        stats = self._stats.setdefault(workload_name, _WorkloadStats())
        if latency < stats.best_latency:
            stats.best_latency = float(latency)
            if schedule is not None:
                stats.best_schedule = schedule

    def reset(self) -> None:
        """Drop all statistics and restart trial counting from zero.

        The noise RNG is *not* rewound: it keeps its stream position, exactly
        like a fresh run on real hardware would see fresh noise.
        """
        self._stats.clear()
        self.total_trials = 0
