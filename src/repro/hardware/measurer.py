"""Measurement harness on top of the latency simulator.

The :class:`Measurer` mirrors the role of TVM's RPC measurer in the paper:
given candidate schedules it returns measured latencies (simulated latency
plus log-normal measurement noise, averaged over repeats so that at least
``min_repeat_seconds`` of wall time is covered — the ``r_min`` parameter of
Table 5), and it keeps global statistics: the number of measurement trials
consumed and the best schedule found so far per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import HardwareTarget
from repro.tensor.schedule import Schedule

__all__ = ["MeasureResult", "Measurer"]


@dataclass(frozen=True)
class MeasureResult:
    """Outcome of measuring one schedule."""

    schedule: Schedule
    latency: float
    throughput: float
    repeats: int
    trial_index: int

    @property
    def is_valid(self) -> bool:
        return np.isfinite(self.latency) and self.latency > 0


@dataclass
class _WorkloadStats:
    best_latency: float = float("inf")
    best_schedule: Optional[Schedule] = None
    trials: int = 0
    history: List[Tuple[int, float]] = field(default_factory=list)


class Measurer:
    """Simulated measurement backend shared by all auto-schedulers.

    Parameters
    ----------
    target:
        Hardware target to simulate.
    noise:
        Relative standard deviation of a single timing sample.
    min_repeat_seconds:
        Minimum wall time covered by repeated timing of one schedule
        (``r_min`` in Table 5); more repeats shrink the effective noise.
    seed:
        Seed of the measurement-noise RNG (the simulator's deterministic
        ruggedness has its own seed).
    """

    def __init__(
        self,
        target: HardwareTarget,
        noise: float = 0.02,
        min_repeat_seconds: float = 1.0,
        max_repeats: int = 32,
        seed: int = 0,
    ):
        self.target = target
        self.simulator = LatencySimulator(target)
        self.noise = float(noise)
        self.min_repeat_seconds = float(min_repeat_seconds)
        self.max_repeats = int(max_repeats)
        self._rng = np.random.default_rng(seed)
        self._stats: Dict[str, _WorkloadStats] = {}
        self.total_trials = 0

    # ------------------------------------------------------------------ #
    def measure(self, schedules: Sequence[Schedule]) -> List[MeasureResult]:
        """Measure a batch of schedules, updating global trial statistics."""
        results = []
        for schedule in schedules:
            results.append(self._measure_one(schedule))
        return results

    def _measure_one(self, schedule: Schedule) -> MeasureResult:
        true_latency = self.simulator.latency(schedule)
        repeats = int(np.clip(np.ceil(self.min_repeat_seconds / max(true_latency, 1e-9)), 1, self.max_repeats))
        # Averaging `repeats` noisy samples shrinks the noise by sqrt(repeats).
        effective_noise = self.noise / np.sqrt(repeats)
        factor = float(np.exp(self._rng.normal(0.0, effective_noise)))
        latency = true_latency * factor

        self.total_trials += 1
        stats = self._stats.setdefault(schedule.dag.name, _WorkloadStats())
        stats.trials += 1
        if latency < stats.best_latency:
            stats.best_latency = latency
            stats.best_schedule = schedule
        stats.history.append((self.total_trials, stats.best_latency))

        return MeasureResult(
            schedule=schedule,
            latency=float(latency),
            throughput=float(schedule.dag.flops / latency),
            repeats=repeats,
            trial_index=self.total_trials,
        )

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def best_latency(self, workload_name: str) -> float:
        stats = self._stats.get(workload_name)
        return stats.best_latency if stats else float("inf")

    def best_schedule(self, workload_name: str) -> Optional[Schedule]:
        stats = self._stats.get(workload_name)
        return stats.best_schedule if stats else None

    def trials(self, workload_name: str) -> int:
        stats = self._stats.get(workload_name)
        return stats.trials if stats else 0

    def history(self, workload_name: str) -> List[Tuple[int, float]]:
        """(global trial index, best latency so far) pairs for one workload."""
        stats = self._stats.get(workload_name)
        return list(stats.history) if stats else []

    def reset(self) -> None:
        self._stats.clear()
        self.total_trials = 0
