"""Hardware target catalog: named presets, derivation and target embeddings.

The serving layer keys everything on ``(workload fingerprint, target)``, so
the diversity of scenarios the system can handle is bounded by the diversity
of targets it knows about.  This module grows the two paper platforms
(:func:`~repro.hardware.target.cpu_target` /
:func:`~repro.hardware.target.gpu_target`) into a validated
:class:`TargetCatalog` spanning three device families:

* **server CPUs** — AVX2 and AVX-512 parts from 8 to 64 cores,
* **edge / mobile CPUs** — narrow SIMD, small caches, expensive thread
  launches,
* **GPU tiers** — laptop, workstation, edge-accelerator and datacenter.

All numbers are nominal datasheet-level values (like the original presets):
they feed the analytic latency model, not a calibration claim.

Besides the named presets the catalog offers

* :meth:`TargetCatalog.derive` — synthetic variants of a preset (``"like an
  EPYC 7763 but with 16 cores"``), validated by
  :class:`~repro.hardware.target.HardwareTarget` itself, and
* :func:`target_embedding` / :func:`target_distance` — a fixed-length numeric
  summary of a target (log core count, peak FLOPs, bandwidth, cache
  hierarchy, overheads) whose Euclidean distance ranks how *related* two
  devices are.  The schedule registry uses it to pick the best donor target
  for cross-target schedule transfer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.target import HardwareTarget, cpu_target, gpu_target

__all__ = [
    "TARGET_EMBEDDING_SIZE",
    "TargetCatalog",
    "default_catalog",
    "target_embedding",
    "target_distance",
]

#: Embedding layout: kind flag, core count, per-core and aggregate FLOPs,
#: vector width, three cache levels, bandwidth, two overheads (all log2).
TARGET_EMBEDDING_SIZE = 11

#: Separation added between CPU and GPU embeddings.  Schedules structurally
#: differ across kinds (tiling depths, unroll depths), so a same-kind donor
#: should win over any cross-kind donor no matter how similar the datasheet
#: numbers look.
_KIND_GAP = 32.0


def _log2(value: float) -> float:
    return float(np.log2(max(float(value), 1e-12)))


def target_embedding(target: HardwareTarget) -> np.ndarray:
    """Fixed-length numeric summary of a hardware target.

    Log-scaled so that "twice the cores" and "twice the bandwidth" count the
    same amount everywhere on the spectrum; the kind flag dominates so
    cross-kind (CPU↔GPU) distances always exceed same-kind ones.
    """
    return np.array(
        [
            _KIND_GAP if target.kind == "gpu" else 0.0,
            _log2(target.num_cores),
            _log2(target.peak_flops_per_core / 1e9),
            _log2(target.peak_flops / 1e9),
            _log2(target.vector_width),
            _log2(target.l1_bytes / 1024),
            _log2(target.l2_bytes / 1024),
            _log2(target.l3_bytes / 1024),
            _log2(target.dram_bandwidth / 1e9),
            _log2(target.parallel_overhead / 1e-9 + 1.0),
            _log2(target.kernel_overhead / 1e-9 + 1.0),
        ],
        dtype=np.float64,
    )


def target_distance(a: HardwareTarget, b: HardwareTarget) -> float:
    """Euclidean distance between two targets' embeddings (0 = identical)."""
    return float(np.linalg.norm(target_embedding(a) - target_embedding(b)))


class TargetCatalog:
    """Named, validated collection of hardware targets.

    Every entry is a frozen :class:`HardwareTarget`, so registration runs the
    dataclass's own validation — a malformed preset (zero bandwidth, negative
    overhead, ...) fails loudly at catalog-construction time rather than
    producing nonsense latencies later.
    """

    def __init__(self, targets: Sequence[HardwareTarget] = ()):
        self._targets: Dict[str, HardwareTarget] = {}
        for target in targets:
            self.register(target)

    # ------------------------------------------------------------------ #
    # registration / lookup
    # ------------------------------------------------------------------ #
    def register(self, target: HardwareTarget, replace_existing: bool = False) -> HardwareTarget:
        """Add a target; duplicate names raise unless ``replace_existing``."""
        if not isinstance(target, HardwareTarget):
            raise TypeError(f"expected HardwareTarget, got {type(target).__name__}")
        if target.name in self._targets and not replace_existing:
            raise ValueError(f"target {target.name!r} already registered")
        self._targets[target.name] = target
        return target

    def get(self, name: str) -> HardwareTarget:
        """Look a target up by name; raises ``KeyError`` listing known names."""
        target = self._targets.get(name)
        if target is None:
            raise KeyError(
                f"unknown target {name!r}; known targets: {', '.join(self.names())}"
            )
        return target

    def get_optional(self, name: str) -> Optional[HardwareTarget]:
        """Like :meth:`get` but returns ``None`` for unknown names."""
        return self._targets.get(name)

    def names(self) -> List[str]:
        return sorted(self._targets)

    def by_kind(self, kind: str) -> List[HardwareTarget]:
        return [self._targets[n] for n in self.names() if self._targets[n].kind == kind]

    def __iter__(self) -> Iterator[HardwareTarget]:
        return iter(self._targets[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._targets)

    def __contains__(self, name: str) -> bool:
        return name in self._targets

    # ------------------------------------------------------------------ #
    # derivation / similarity
    # ------------------------------------------------------------------ #
    def derive(
        self,
        base: str,
        name: str,
        register: bool = True,
        **overrides,
    ) -> HardwareTarget:
        """Build a synthetic variant of a registered preset.

        ``overrides`` replace any :class:`HardwareTarget` field (``num_cores``,
        ``dram_bandwidth``, ...); the result passes through the dataclass
        validation, so an invalid variant raises instead of entering the
        catalog.  By default the variant is registered under ``name``.
        """
        variant = replace(self.get(base), name=name, **overrides)
        if register:
            self.register(variant)
        return variant

    def nearest(
        self,
        target: HardwareTarget,
        k: int = 3,
        same_kind_only: bool = False,
    ) -> List[Tuple[float, HardwareTarget]]:
        """The ``k`` registered targets closest to ``target`` (excluding itself)."""
        scored: List[Tuple[float, HardwareTarget]] = []
        for candidate in self:
            if candidate.name == target.name:
                continue
            if same_kind_only and candidate.kind != target.kind:
                continue
            scored.append((target_distance(target, candidate), candidate))
        scored.sort(key=lambda pair: (pair[0], pair[1].name))
        return scored[: max(k, 0)]

    def describe(self, name: str) -> dict:
        """Datasheet-style summary of one target (used by ``repro targets``)."""
        t = self.get(name)
        return {
            "name": t.name,
            "kind": t.kind,
            "num_cores": t.num_cores,
            "vector_width": t.vector_width,
            "peak_gflops_per_core": t.peak_flops_per_core / 1e9,
            "peak_tflops": t.peak_flops / 1e12,
            "l1_kb": t.l1_bytes / 1024,
            "l2_kb": t.l2_bytes / 1024,
            "l3_mb": t.l3_bytes / (1024 * 1024),
            "dram_gb_s": t.dram_bandwidth / 1e9,
            "parallel_overhead_us": t.parallel_overhead * 1e6,
            "kernel_overhead_us": t.kernel_overhead * 1e6,
            "embedding": target_embedding(t).tolist(),
        }


def _default_targets() -> List[HardwareTarget]:
    """The built-in presets (nominal datasheet-level numbers throughout)."""
    return [
        # ----- server CPUs ------------------------------------------------ #
        cpu_target(),  # xeon-6226r: 32 cores, AVX-512 (the paper's platform)
        HardwareTarget(
            name="xeon-4309y", kind="cpu", num_cores=8,
            # 2.8 GHz * 2 FMA ports * 16 fp32 lanes * 2 flops/FMA.
            peak_flops_per_core=179.2e9, vector_width=16,
            l1_bytes=48 * 1024, l2_bytes=1280 * 1024, l3_bytes=12 * 1024 * 1024,
            dram_bandwidth=100e9, parallel_overhead=2.0e-6, kernel_overhead=5.0e-6,
        ),
        HardwareTarget(
            name="epyc-7543", kind="cpu", num_cores=32,
            # Zen 3, AVX2: 3.7 GHz * 2 FMA * 8 lanes * 2.
            peak_flops_per_core=118.4e9, vector_width=8,
            l1_bytes=32 * 1024, l2_bytes=512 * 1024, l3_bytes=32 * 1024 * 1024,
            dram_bandwidth=204e9, parallel_overhead=2.5e-6, kernel_overhead=5.0e-6,
        ),
        HardwareTarget(
            name="epyc-7763", kind="cpu", num_cores=64,
            # Zen 3, AVX2 at the all-core base clock (2.45 GHz).
            peak_flops_per_core=78.4e9, vector_width=8,
            l1_bytes=32 * 1024, l2_bytes=512 * 1024, l3_bytes=32 * 1024 * 1024,
            dram_bandwidth=204e9, parallel_overhead=3.0e-6, kernel_overhead=5.0e-6,
        ),
        HardwareTarget(
            name="graviton3", kind="cpu", num_cores=64,
            # Neoverse V1: 2.6 GHz * 2x256-bit SVE pipes (8 lanes) * 2.
            peak_flops_per_core=83.2e9, vector_width=8,
            l1_bytes=64 * 1024, l2_bytes=1024 * 1024, l3_bytes=32 * 1024 * 1024,
            dram_bandwidth=300e9, parallel_overhead=2.0e-6, kernel_overhead=4.0e-6,
        ),
        # ----- edge / mobile CPUs ----------------------------------------- #
        HardwareTarget(
            name="rpi4-a72", kind="cpu", num_cores=4,
            # Cortex-A72: 1.5 GHz * one 128-bit NEON FMA (4 lanes) * 2.
            peak_flops_per_core=12.0e9, vector_width=4,
            l1_bytes=32 * 1024, l2_bytes=256 * 1024, l3_bytes=1024 * 1024,
            dram_bandwidth=4e9, parallel_overhead=20.0e-6, kernel_overhead=30.0e-6,
        ),
        HardwareTarget(
            name="mobile-a715", kind="cpu", num_cores=8,
            # Premium-phone big/mid cluster: ~2.8 GHz, 128-bit NEON.
            peak_flops_per_core=22.4e9, vector_width=4,
            l1_bytes=64 * 1024, l2_bytes=512 * 1024, l3_bytes=8 * 1024 * 1024,
            dram_bandwidth=60e9, parallel_overhead=10.0e-6, kernel_overhead=15.0e-6,
        ),
        # ----- GPUs (laptop → edge → workstation → datacenter) ------------ #
        HardwareTarget(
            name="rtx-3050-laptop", kind="gpu", num_cores=20,
            # 5.1 TFLOP/s fp32 across 20 SMs.
            peak_flops_per_core=256.0e9, vector_width=32,
            l1_bytes=100 * 1024, l2_bytes=256 * 1024, l3_bytes=2 * 1024 * 1024,
            dram_bandwidth=192e9, parallel_overhead=0.5e-6, kernel_overhead=10.0e-6,
        ),
        HardwareTarget(
            name="jetson-orin", kind="gpu", num_cores=16,
            # Ampere iGPU: ~5.3 TFLOP/s fp32 across 16 SMs, LPDDR5.
            peak_flops_per_core=330.0e9, vector_width=32,
            l1_bytes=128 * 1024, l2_bytes=256 * 1024, l3_bytes=4 * 1024 * 1024,
            dram_bandwidth=205e9, parallel_overhead=0.8e-6, kernel_overhead=12.0e-6,
        ),
        gpu_target(),  # rtx-3090: 82 SMs, 936 GB/s (the paper's platform)
        HardwareTarget(
            name="a100-sxm", kind="gpu", num_cores=108,
            # 19.5 TFLOP/s fp32 across 108 SMs, HBM2e.
            peak_flops_per_core=180.5e9, vector_width=32,
            l1_bytes=192 * 1024, l2_bytes=512 * 1024, l3_bytes=40 * 1024 * 1024,
            dram_bandwidth=1555e9, parallel_overhead=0.4e-6, kernel_overhead=8.0e-6,
        ),
        HardwareTarget(
            name="h100-sxm", kind="gpu", num_cores=132,
            # 67 TFLOP/s fp32 across 132 SMs, HBM3.
            peak_flops_per_core=507.5e9, vector_width=32,
            l1_bytes=228 * 1024, l2_bytes=512 * 1024, l3_bytes=50 * 1024 * 1024,
            dram_bandwidth=3350e9, parallel_overhead=0.3e-6, kernel_overhead=8.0e-6,
        ),
    ]


_DEFAULT_CATALOG: Optional[TargetCatalog] = None


def default_catalog() -> TargetCatalog:
    """The process-wide built-in catalog (built once, then shared).

    Callers that mutate the catalog (``register`` / ``derive``) share those
    mutations process-wide; build a private ``TargetCatalog`` for isolation.
    """
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = TargetCatalog(_default_targets())
    return _DEFAULT_CATALOG
