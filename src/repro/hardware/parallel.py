"""Batched, parallel measurement pipeline.

:class:`ParallelMeasurer` fans a batch of candidate schedules out over a
thread or process pool, mirroring the batched RPC measurement used by Ansor
and AutoTVM on real hardware.  Two properties make it a drop-in replacement
for the serial :class:`~repro.hardware.measurer.Measurer`:

* **Noise is pre-drawn in submission order** — the measurer takes one
  standard-normal draw per schedule from its sequential RNG *before* the
  batch is fanned out, so each task is a pure function of its inputs and
  results do not depend on worker count or completion order.
* **Atomic batch commits** — workers only evaluate the pure
  :func:`~repro.hardware.measurer.simulate_measurement` function; all
  statistics (trial counters, best-per-workload, progress history) are
  folded in by the inherited ``_commit_batch`` in submission order, exactly
  as a serial run would.

With a fixed seed, ``ParallelMeasurer(target, num_workers=4)`` therefore
produces bit-identical latencies, histories and trial accounting to
``Measurer(target)``.

Purity also makes the pipeline fault-tolerant for free: when a worker dies
mid-batch (a real RPC board dropping off, or an injected
:class:`~repro.faults.plan.WorkerDeath`), its span of the batch is simply
re-evaluated inline — with the *same* pre-drawn noise — yielding results
bit-identical to an undisturbed run.  Retries are bounded by
``max_worker_retries`` so a persistently failing span surfaces as an error
instead of an infinite loop.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import List, Optional, Sequence, Tuple

from repro.faults.plan import WorkerDeath, poll as poll_fault
from repro.hardware.measurer import (
    Measurer,
    simulate_measurement_batch,
)
from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import HardwareTarget
from repro.obs.metrics import counter, histogram
from repro.obs.trace import current_span_id, span as obs_span
from repro.tensor.schedule import Schedule

__all__ = ["ParallelMeasurer"]

_BATCHES = counter("parallel.batches", "Measurement batches fanned out over a pool")
_WORKER_DEATHS = counter("parallel.worker_deaths", "Worker deaths observed mid-batch")
_WORKER_RETRIES = counter("parallel.worker_retries", "Inline retries of dead workers' spans")
_BATCH_SECONDS = histogram("parallel.batch_seconds", help="Wall time per parallel batch")

#: Per-process simulator cache for process-pool workers, keyed by the full
#: (frozen, hashable) target so two different configurations never collide,
#: while repeated tasks for one target skip re-building the simulator.
_WORKER_SIMULATORS = {}


def _process_span_task(
    schedules: Sequence[Schedule],
    target: HardwareTarget,
    noise: float,
    min_repeat_seconds: float,
    max_repeats: int,
    draws: Sequence[float],
) -> List[Tuple[float, int]]:
    """Top-level worker entry point for process pools (must be picklable)."""
    simulator = _WORKER_SIMULATORS.get(target)
    if simulator is None:
        simulator = LatencySimulator(target)
        _WORKER_SIMULATORS[target] = simulator
    return simulate_measurement_batch(
        schedules, simulator, noise, min_repeat_seconds, max_repeats, draws
    )


def _injected_worker_death(index: int) -> List[Tuple[float, int]]:
    """Top-level (picklable) stand-in for a task whose worker dies."""
    raise WorkerDeath(f"worker evaluating measurement chunk {index} died")


class ParallelMeasurer(Measurer):
    """Measurer that evaluates each batch on a pool of workers.

    Parameters
    ----------
    target:
        Hardware target to simulate.
    num_workers:
        Pool size; defaults to the machine's CPU count.  ``num_workers=1``
        degenerates to fully serial evaluation (no pool is created).
    mode:
        ``"thread"`` (default) or ``"process"``.  The simulated backend is
        NumPy-bound, so threads primarily model the fan-out structure of a
        real RPC measurer while keeping zero serialisation overhead;
        ``"process"`` pays pickling costs per task but provides true CPU
        parallelism for expensive measurement backends.
    max_worker_retries:
        How many times a span whose worker died is re-evaluated inline
        before the batch gives up and raises
        :class:`~repro.faults.plan.WorkerDeath`.
    noise / min_repeat_seconds / max_repeats / seed / record_store:
        Forwarded to :class:`~repro.hardware.measurer.Measurer`.
    """

    def __init__(
        self,
        target: HardwareTarget,
        num_workers: Optional[int] = None,
        mode: str = "thread",
        max_worker_retries: int = 2,
        **kwargs,
    ):
        super().__init__(target, **kwargs)
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown pool mode {mode!r}; use 'thread' or 'process'")
        self.num_workers = max(1, int(num_workers or os.cpu_count() or 1))
        self.mode = mode
        self.max_worker_retries = max(0, int(max_worker_retries))
        self.worker_deaths = 0
        self.worker_retries = 0
        self._executor: Optional[Executor] = None

    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> Executor:
        """Create the worker pool lazily on the first parallel batch."""
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.num_workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="measurer",
                )
        return self._executor

    def _run_batch(
        self, schedules: Sequence[Schedule], draws: Sequence[float]
    ) -> List[Tuple[float, int]]:
        """Fan a batch of measurement tasks out over the pool.

        The batch is split into contiguous *spans* (one schedule per span in
        process mode, one chunk per worker in thread mode) and futures are
        gathered in submission order, so downstream statistics commits see
        the batch exactly as a serial measurer would.  A span whose worker
        dies is recovered by :meth:`_retry_span`.
        """
        if self.num_workers == 1 or len(schedules) <= 1:
            return super()._run_batch(schedules, draws)
        began = time.perf_counter()
        with obs_span(
            "measure.batch",
            schedules=len(schedules),
            workers=self.num_workers,
            mode=self.mode,
        ) as batch_span:
            executor = self._ensure_executor()
            # Thread-pool workers do not inherit this thread's context, so
            # the batch span's id is captured here (inside the span) and
            # handed to each worker task explicitly as its parent.
            parent = current_span_id()
            if self.mode == "process":
                # One schedule per span: pickling whole chunks buys nothing and a
                # dead worker then invalidates the smallest possible unit.
                spans = [(start, start + 1) for start in range(len(schedules))]
            else:
                # Thread mode: split the batch into one contiguous, vectorised
                # chunk per worker.  Per-element results are independent of the
                # chunking (see simulate_measurement_batch), so worker count
                # never changes outcomes — only how the NumPy passes are
                # distributed.
                chunk = max(1, -(-len(schedules) // self.num_workers))
                spans = [
                    (start, min(start + chunk, len(schedules)))
                    for start in range(0, len(schedules), chunk)
                ]
            futures = [
                self._submit_span(
                    executor, index, schedules[lo:hi], draws[lo:hi], parent
                )
                for index, (lo, hi) in enumerate(spans)
            ]
            results: List[Tuple[float, int]] = []
            deaths = 0
            for index, ((lo, hi), future) in enumerate(zip(spans, futures)):
                try:
                    results.extend(future.result())
                except (WorkerDeath, BrokenExecutor) as cause:
                    self.worker_deaths += 1
                    deaths += 1
                    _WORKER_DEATHS.inc()
                    if isinstance(cause, BrokenExecutor):
                        # The pool itself is unusable; drop it so the next batch
                        # rebuilds a fresh one.
                        executor.shutdown(wait=False)
                        self._executor = None
                    results.extend(
                        self._retry_span(index, schedules[lo:hi], draws[lo:hi], cause)
                    )
            if deaths:
                batch_span.annotate(worker_deaths=deaths)
        _BATCHES.inc()
        _BATCH_SECONDS.observe(time.perf_counter() - began)
        return results

    def _submit_span(
        self,
        executor: Executor,
        index: int,
        schedules: Sequence[Schedule],
        draws: Sequence[float],
        parent=None,
    ):
        """Submit one contiguous span of the batch to the pool.

        The ``parallel.worker`` fault point is polled *here*, on the main
        thread in submission order, so which span dies is deterministic for
        a fixed plan regardless of pool scheduling.  ``parent`` is the trace
        id of the enclosing batch span, forwarded because pool workers do
        not inherit the submitting thread's context.
        """
        fired = poll_fault("parallel.worker", detail=f"chunk-{index}")
        die = fired is not None and fired.spec.kind == "worker_death"
        if self.mode == "process":
            if die:
                return executor.submit(_injected_worker_death, index)
            return executor.submit(
                _process_span_task,
                schedules,
                self.target,
                self.noise,
                self.min_repeat_seconds,
                self.max_repeats,
                draws,
            )
        return executor.submit(
            self._thread_span_task, index, schedules, draws, die, parent
        )

    def _thread_span_task(
        self,
        index: int,
        schedules: Sequence[Schedule],
        draws: Sequence[float],
        die: bool,
        parent=None,
    ) -> List[Tuple[float, int]]:
        with obs_span(
            "measure.chunk", parent=parent, chunk=index, schedules=len(schedules)
        ):
            if die:
                raise WorkerDeath(f"worker evaluating measurement chunk {index} died")
            return simulate_measurement_batch(
                schedules,
                self.simulator,
                self.noise,
                self.min_repeat_seconds,
                self.max_repeats,
                draws,
            )

    def _retry_span(
        self,
        index: int,
        schedules: Sequence[Schedule],
        draws: Sequence[float],
        cause: BaseException,
    ) -> List[Tuple[float, int]]:
        """Re-evaluate a dead worker's span inline, with bounded retries.

        The task is pure and the noise draws are fixed, so the retried
        results are bit-identical to what the dead worker would have
        produced.  Retries poll the fault point again (detail
        ``retry-K:chunk-N``) so tests can kill retries too and verify the
        bound is honoured.
        """
        for attempt in range(1, self.max_worker_retries + 1):
            fired = poll_fault("parallel.worker", detail=f"retry-{attempt}:chunk-{index}")
            self.worker_retries += 1
            _WORKER_RETRIES.inc()
            if fired is not None and fired.spec.kind == "worker_death":
                continue
            return simulate_measurement_batch(
                schedules,
                self.simulator,
                self.noise,
                self.min_repeat_seconds,
                self.max_repeats,
                draws,
            )
        raise WorkerDeath(
            f"measurement chunk {index} failed {self.max_worker_retries + 1} times; giving up"
        ) from cause

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelMeasurer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
