"""Batched, parallel measurement pipeline.

:class:`ParallelMeasurer` fans a batch of candidate schedules out over a
thread or process pool, mirroring the batched RPC measurement used by Ansor
and AutoTVM on real hardware.  Two properties make it a drop-in replacement
for the serial :class:`~repro.hardware.measurer.Measurer`:

* **Noise is pre-drawn in submission order** — the measurer takes one
  standard-normal draw per schedule from its sequential RNG *before* the
  batch is fanned out, so each task is a pure function of its inputs and
  results do not depend on worker count or completion order.
* **Atomic batch commits** — workers only evaluate the pure
  :func:`~repro.hardware.measurer.simulate_measurement` function; all
  statistics (trial counters, best-per-workload, progress history) are
  folded in by the inherited ``_commit_batch`` in submission order, exactly
  as a serial run would.

With a fixed seed, ``ParallelMeasurer(target, num_workers=4)`` therefore
produces bit-identical latencies, histories and trial accounting to
``Measurer(target)``.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.hardware.measurer import (
    Measurer,
    simulate_measurement,
    simulate_measurement_batch,
)
from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import HardwareTarget
from repro.tensor.schedule import Schedule

__all__ = ["ParallelMeasurer"]

#: Per-process simulator cache for process-pool workers, keyed by the full
#: (frozen, hashable) target so two different configurations never collide,
#: while repeated tasks for one target skip re-building the simulator.
_WORKER_SIMULATORS = {}


def _process_measure_task(
    schedule: Schedule,
    target: HardwareTarget,
    noise: float,
    min_repeat_seconds: float,
    max_repeats: int,
    noise_draw: float,
) -> Tuple[float, int]:
    """Top-level worker entry point for process pools (must be picklable)."""
    simulator = _WORKER_SIMULATORS.get(target)
    if simulator is None:
        simulator = LatencySimulator(target)
        _WORKER_SIMULATORS[target] = simulator
    return simulate_measurement(
        schedule, simulator, noise, min_repeat_seconds, max_repeats, noise_draw
    )


class ParallelMeasurer(Measurer):
    """Measurer that evaluates each batch on a pool of workers.

    Parameters
    ----------
    target:
        Hardware target to simulate.
    num_workers:
        Pool size; defaults to the machine's CPU count.  ``num_workers=1``
        degenerates to fully serial evaluation (no pool is created).
    mode:
        ``"thread"`` (default) or ``"process"``.  The simulated backend is
        NumPy-bound, so threads primarily model the fan-out structure of a
        real RPC measurer while keeping zero serialisation overhead;
        ``"process"`` pays pickling costs per task but provides true CPU
        parallelism for expensive measurement backends.
    noise / min_repeat_seconds / max_repeats / seed / record_store:
        Forwarded to :class:`~repro.hardware.measurer.Measurer`.
    """

    def __init__(
        self,
        target: HardwareTarget,
        num_workers: Optional[int] = None,
        mode: str = "thread",
        **kwargs,
    ):
        super().__init__(target, **kwargs)
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown pool mode {mode!r}; use 'thread' or 'process'")
        self.num_workers = max(1, int(num_workers or os.cpu_count() or 1))
        self.mode = mode
        self._executor: Optional[Executor] = None

    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> Executor:
        """Create the worker pool lazily on the first parallel batch."""
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.num_workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="measurer",
                )
        return self._executor

    def _run_batch(
        self, schedules: Sequence[Schedule], draws: Sequence[float]
    ) -> List[Tuple[float, int]]:
        """Fan a batch of measurement tasks out over the pool.

        Futures are gathered in submission order, so downstream statistics
        commits see the batch exactly as a serial measurer would.
        """
        if self.num_workers == 1 or len(schedules) <= 1:
            return super()._run_batch(schedules, draws)
        executor = self._ensure_executor()
        if self.mode == "process":
            futures = [
                executor.submit(
                    _process_measure_task,
                    schedule,
                    self.target,
                    self.noise,
                    self.min_repeat_seconds,
                    self.max_repeats,
                    draw,
                )
                for schedule, draw in zip(schedules, draws)
            ]
            return [future.result() for future in futures]
        # Thread mode: split the batch into one contiguous, vectorised chunk
        # per worker.  Per-element results are independent of the chunking
        # (see simulate_measurement_batch), so worker count never changes
        # outcomes — only how the NumPy passes are distributed.
        chunk = max(1, -(-len(schedules) // self.num_workers))
        futures = [
            executor.submit(
                simulate_measurement_batch,
                schedules[start : start + chunk],
                self.simulator,
                self.noise,
                self.min_repeat_seconds,
                self.max_repeats,
                draws[start : start + chunk],
            )
            for start in range(0, len(schedules), chunk)
        ]
        return [result for future in futures for result in future.result()]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelMeasurer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
