"""Module entry point so the CLI is reachable via ``python -m repro``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
