"""NumPy neural networks for the actor-critic agent.

The actor is a small MLP trunk with one linear *head* per modification
sub-space (tiling, compute-at, parallel, unroll — Appendix A.1); the critic is
an MLP with a single scalar head.  Forward and backward passes are written by
hand (no autograd), and parameters are trained with Adam.  Network widths are
tiny (64 hidden units) because schedule feature vectors are ~60-dimensional
and episodes only contain a few hundred states.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MultiHeadMLP", "Adam", "softmax", "log_softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


class MultiHeadMLP:
    """MLP trunk (tanh activations) with multiple linear output heads.

    Parameters
    ----------
    input_size:
        Dimension of the input feature vector.
    hidden_sizes:
        Widths of the trunk's hidden layers.
    head_sizes:
        Output dimension of each head.  A critic is simply ``head_sizes=(1,)``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        head_sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ):
        if not head_sizes:
            raise ValueError("at least one head is required")
        rng = rng or np.random.default_rng(0)
        self.input_size = int(input_size)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.head_sizes = tuple(int(h) for h in head_sizes)

        self.trunk_weights: List[np.ndarray] = []
        self.trunk_biases: List[np.ndarray] = []
        prev = self.input_size
        for width in self.hidden_sizes:
            scale = np.sqrt(2.0 / prev)
            self.trunk_weights.append(rng.normal(0.0, scale, size=(prev, width)))
            self.trunk_biases.append(np.zeros(width))
            prev = width

        self.head_weights: List[np.ndarray] = []
        self.head_biases: List[np.ndarray] = []
        for width in self.head_sizes:
            scale = np.sqrt(1.0 / prev)
            self.head_weights.append(rng.normal(0.0, 0.1 * scale, size=(prev, width)))
            self.head_biases.append(np.zeros(width))

    # ------------------------------------------------------------------ #
    # parameter plumbing
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[np.ndarray]:
        """Flat list of parameter arrays (views, not copies)."""
        return (
            self.trunk_weights + self.trunk_biases + self.head_weights + self.head_biases
        )

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        expected = len(self.parameters())
        if len(params) != expected:
            raise ValueError(f"expected {expected} parameter arrays, got {len(params)}")
        nt = len(self.trunk_weights)
        nh = len(self.head_weights)
        self.trunk_weights = [np.array(p, dtype=np.float64) for p in params[:nt]]
        self.trunk_biases = [np.array(p, dtype=np.float64) for p in params[nt : 2 * nt]]
        self.head_weights = [np.array(p, dtype=np.float64) for p in params[2 * nt : 2 * nt + nh]]
        self.head_biases = [np.array(p, dtype=np.float64) for p in params[2 * nt + nh :]]

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> Tuple[List[np.ndarray], dict]:
        """Run the network; returns per-head outputs and a cache for backward."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        activations = [x]
        h = x
        for W, b in zip(self.trunk_weights, self.trunk_biases):
            h = np.tanh(h @ W + b)
            activations.append(h)
        outputs = [h @ W + b for W, b in zip(self.head_weights, self.head_biases)]
        cache = {"activations": activations}
        return outputs, cache

    def backward(self, cache: dict, head_grads: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Back-propagate per-head output gradients; returns parameter gradients
        aligned with :meth:`parameters`."""
        if len(head_grads) != len(self.head_weights):
            raise ValueError("one gradient array per head is required")
        activations = cache["activations"]
        trunk_out = activations[-1]

        head_w_grads: List[np.ndarray] = []
        head_b_grads: List[np.ndarray] = []
        grad_trunk = np.zeros_like(trunk_out)
        for grad_out, W in zip(head_grads, self.head_weights):
            grad_out = np.asarray(grad_out, dtype=np.float64)
            head_w_grads.append(trunk_out.T @ grad_out)
            head_b_grads.append(np.sum(grad_out, axis=0))
            grad_trunk = grad_trunk + grad_out @ W.T

        trunk_w_grads: List[np.ndarray] = [None] * len(self.trunk_weights)
        trunk_b_grads: List[np.ndarray] = [None] * len(self.trunk_biases)
        grad_h = grad_trunk
        for layer in reversed(range(len(self.trunk_weights))):
            post = activations[layer + 1]
            pre_grad = grad_h * (1.0 - post * post)  # d tanh
            trunk_w_grads[layer] = activations[layer].T @ pre_grad
            trunk_b_grads[layer] = np.sum(pre_grad, axis=0)
            grad_h = pre_grad @ self.trunk_weights[layer].T

        return trunk_w_grads + trunk_b_grads + head_w_grads + head_b_grads


class Adam:
    """Adam optimiser over a list of parameter arrays (updated in place)."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        max_grad_norm: Optional[float] = 5.0,
    ):
        self.params = list(params)
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient list does not match parameter list")
        grads = [np.asarray(g, dtype=np.float64) for g in grads]

        if self.max_grad_norm is not None:
            total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
            if total > self.max_grad_norm and total > 0:
                scale = self.max_grad_norm / total
                grads = [g * scale for g in grads]

        self._t += 1
        for i, (param, grad) in enumerate(zip(self.params, grads)):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
