"""Subgraph-selection reward (Eq. 3 / 4 of the paper).

The subgraph MAB cannot use raw performance as its reward because every
subgraph has a different latency scale.  HARL instead reuses Ansor's gradient
estimation: the expected benefit of spending the next trials on subgraph ``a``
combines (i) the recent improvement rate of that subgraph and (ii) the
remaining head-room, estimated both from the optimistic ``g_a / t_a`` bound
and from the throughput achieved on *similar* subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["SubgraphState", "subgraph_reward"]


@dataclass
class SubgraphState:
    """Tuning progress of one subgraph (task).

    ``latencies`` records the best achieved latency after every tuning round
    allocated to this subgraph; ``weight`` is the number of appearances
    ``w_n`` of the subgraph in the network; ``flops`` is the work of a single
    instance (``B_a`` in Eq. 3).
    """

    name: str
    weight: float
    flops: float
    similarity_group: str = ""
    latencies: List[float] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.latencies)

    @property
    def best_latency(self) -> float:
        return min(self.latencies) if self.latencies else float("inf")

    def record(self, latency: float) -> None:
        best = min(self.best_latency, float(latency))
        self.latencies.append(best)


def subgraph_reward(
    state: SubgraphState,
    all_states: Sequence[SubgraphState],
    alpha: float = 0.2,
    beta: float = 2.0,
    backward_window: int = 3,
) -> float:
    """Expected benefit (seconds of end-to-end latency) of tuning ``state`` next.

    This is the (sign-flipped, i.e. higher-is-better) form of the gradient
    estimation formula of Eq. 3:

    * the **history term** is the recent per-round improvement of the
      subgraph's weighted latency,
    * the **head-room term** is the larger of the optimistic ``g_a / t_a``
      decay bound and the gap to the latency this subgraph would have if it
      reached ``beta`` times the best throughput achieved by similar subgraphs
      (same non-empty ``similarity_group`` — the empty group matches nothing,
      so untagged subgraphs never transfer throughput between each other).

    Untuned subgraphs return ``+inf`` so they are explored first.  A subgraph
    whose every round so far *failed* to produce a measurement (``g_a`` is
    non-finite) returns 0: it already consumed rounds without progress, so it
    must not masquerade as an untuned top-priority task.
    """
    if state.rounds == 0:
        return float("inf")

    g_now = state.latencies[-1]
    if not np.isfinite(g_now):
        return 0.0
    weight = max(state.weight, 1.0)

    # History term: improvement rate over the last `backward_window` rounds.
    dt = min(backward_window, state.rounds - 1)
    if dt > 0:
        g_prev = state.latencies[-1 - dt]
        if np.isfinite(g_prev):
            improvement_rate = max(g_prev - g_now, 0.0) / dt
        else:
            # The window starts before the first successful measurement: the
            # drop from "failed" to g_now is not a meaningful rate, so fall
            # back to the single-round convention below.
            improvement_rate = g_now
    else:
        improvement_rate = g_now  # a single round: everything is head-room

    # Head-room term 1: optimistic decay bound g_a / t_a.
    decay_bound = g_now / max(state.rounds, 1)

    # Head-room term 2: gap to beta x the best similar-subgraph throughput.
    similar = [
        s
        for s in all_states
        if s is not state
        and state.similarity_group
        and s.similarity_group == state.similarity_group
        and s.rounds > 0
        and np.isfinite(s.best_latency)
        and s.best_latency > 0
    ]
    if similar and state.flops > 0:
        best_similar_throughput = max(s.flops / s.best_latency for s in similar)
        if best_similar_throughput > 0:
            predicted_latency = state.flops / (beta * best_similar_throughput)
            similarity_gap = max(g_now - predicted_latency, 0.0)
        else:
            similarity_gap = 0.0
    else:
        similarity_gap = 0.0

    headroom = max(decay_bound, similarity_gap)
    reward = weight * (alpha * improvement_rate + (1.0 - alpha) * headroom)
    return float(reward)


def normalized_rewards(
    states: Sequence[SubgraphState],
    alpha: float = 0.2,
    beta: float = 2.0,
    backward_window: int = 3,
) -> np.ndarray:
    """Rewards of every subgraph, normalised to [0, 1] for MAB consumption.

    ``+inf`` rewards (never-tuned subgraphs) map to 1.0.  Any residual
    non-finite value (NaN from a degenerate caller-provided state) maps to
    0.0 — a dead task must not look like an untuned top-priority one.
    """
    raw = np.array(
        [subgraph_reward(s, states, alpha, beta, backward_window) for s in states],
        dtype=np.float64,
    )
    finite = raw[np.isfinite(raw)]
    scale = float(np.max(finite)) if finite.size else 1.0
    scale = max(scale, 1e-30)
    out = np.where(np.isfinite(raw), raw / scale, np.where(np.isnan(raw), 0.0, 1.0))
    return np.clip(out, 0.0, 1.0)
