"""HARL hyper-parameter configuration.

Defaults follow Table 5 of the paper (model parameters) and Section 6.1
(search settings).  The paper-scale defaults assume thousands of measurement
trials per workload; :func:`HARLConfig.scaled` produces a proportionally
shrunk configuration so the unit tests and the default benchmark harness run
in seconds instead of hours.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HARLConfig"]


@dataclass(frozen=True)
class HARLConfig:
    """All tunable knobs of the HARL scheduler.

    Attributes mirror Table 5 of the paper; search-scale attributes (number of
    schedule tracks per round, measured candidates per round) follow the Ansor
    conventions the paper reuses.
    """

    # --- adaptive stopping (Section 5) -------------------------------- #
    window_size: int = 20              #: lambda — adaptive-stopping window size
    elimination_ratio: float = 0.5     #: rho — fraction of tracks eliminated per window
    min_tracks: int = 64               #: p-hat — minimum number of remaining tracks

    # --- schedule-track episode scale ---------------------------------- #
    num_tracks: int = 256              #: p — schedule tracks sampled per round
    episode_length: int = 40           #: L — fixed-length episode length (ablation / baselines)
    measures_per_round: int = 64       #: top-K schedules measured per round

    # --- actor-critic (PPO) -------------------------------------------- #
    actor_lr: float = 3e-4             #: learning rate of the actor network
    critic_lr: float = 1e-3            #: learning rate of the critic network
    train_interval: int = 2            #: T_rl — steps between PPO updates
    discount: float = 0.9              #: gamma — discount factor in Eq. 6
    mse_weight: float = 0.5            #: critic MSE loss weight
    entropy_weight: float = 0.01       #: entropy bonus weight
    clip_epsilon: float = 0.2          #: PPO clipped-surrogate epsilon
    hidden_size: int = 64              #: width of the actor/critic MLP hidden layers
    ppo_epochs: int = 4                #: gradient passes per PPO update
    minibatch_size: int = 256          #: samples per PPO gradient step
    replay_capacity: int = 4096        #: replay buffer capacity

    # --- sliding-window UCB (Eq. 1) ------------------------------------ #
    ucb_constant: float = 0.25         #: c — exploration constant
    ucb_window: int = 256              #: tau — sliding window size

    # --- subgraph reward (Eq. 3, adopted from Ansor) ------------------- #
    alpha: float = 0.2                 #: historical-gradient importance
    beta: float = 2.0                  #: similar-subgraph importance
    backward_window: int = 3           #: delta-t — rounds used for the improvement rate

    # --- measurement ---------------------------------------------------- #
    min_repeat_seconds: float = 1.0    #: r_min — minimum repeated-measurement time

    # -------------------------------------------------------------------- #
    def __post_init__(self) -> None:
        if not (0.0 < self.elimination_ratio < 1.0):
            raise ValueError("elimination_ratio must be in (0, 1)")
        if self.window_size < 1 or self.episode_length < 1:
            raise ValueError("window_size and episode_length must be >= 1")
        if self.min_tracks < 1 or self.num_tracks < self.min_tracks:
            raise ValueError("num_tracks must be >= min_tracks >= 1")
        if self.measures_per_round < 1:
            raise ValueError("measures_per_round must be >= 1")
        if not (0.0 <= self.discount <= 1.0):
            raise ValueError("discount must be in [0, 1]")
        if not (0.0 < self.clip_epsilon < 1.0):
            raise ValueError("clip_epsilon must be in (0, 1)")

    def replace(self, **kwargs) -> "HARLConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    @staticmethod
    def paper() -> "HARLConfig":
        """The paper's default configuration (Table 5)."""
        return HARLConfig()

    @staticmethod
    def scaled(factor: float = 0.125) -> "HARLConfig":
        """A proportionally smaller configuration for fast tests / CI benches.

        ``factor`` scales the episode width (tracks, measured candidates) and
        the adaptive-stopping window; the RL and MAB hyper-parameters are kept
        at their paper values because they are scale free.
        """
        if not (0.0 < factor <= 1.0):
            raise ValueError("factor must be in (0, 1]")
        base = HARLConfig()
        num_tracks = max(8, int(round(base.num_tracks * factor)))
        return base.replace(
            num_tracks=num_tracks,
            min_tracks=max(2, int(round(base.min_tracks * factor))),
            measures_per_round=max(4, int(round(base.measures_per_round * factor))),
            window_size=max(4, int(round(base.window_size * factor * 2))),
            episode_length=max(8, int(round(base.episode_length * factor * 2))),
            minibatch_size=max(32, int(round(base.minibatch_size * factor))),
            ucb_window=max(16, int(round(base.ucb_window * factor))),
        )
