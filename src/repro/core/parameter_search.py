"""Parameter search episodes (Algorithm 1 of the paper).

One episode = sample a batch of initial schedules ("schedule tracks"), walk
each track with actions from the PPO agent, score every visited schedule with
the cost model, prune tracks via the adaptive-stopping module, train the
actor/critic every ``T_rl`` steps, and finally measure only the top-K
predicted schedules on the (simulated) hardware and feed the measurements
back into the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actor_critic import PPOAgent
from repro.core.adaptive_stopping import AdaptiveStopper
from repro.core.config import HARLConfig
from repro.hardware.measurer import MeasureResult, Measurer
from repro.tensor.actions import ActionSpace, apply_action
from repro.tensor.features import batch_features
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import Sketch

__all__ = ["EpisodeResult", "ParameterSearcher"]

#: Hard safety cap on episode steps, far above any configured episode length.
MAX_EPISODE_STEPS = 2000


@dataclass
class EpisodeResult:
    """Everything produced by one parameter-search episode."""

    measured: List[MeasureResult]
    best_latency: float
    best_throughput: float
    num_steps: int
    num_visited: int
    track_lengths: List[int]
    #: Per track: relative position (0..1) of the best predicted score on the track.
    critical_positions: List[float]
    rl_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_measured(self) -> int:
        return len(self.measured)


class _Track:
    """Bookkeeping for one schedule track."""

    __slots__ = ("schedule", "scores", "alive")

    def __init__(self, schedule: Schedule):
        self.schedule = schedule
        self.scores: List[float] = []
        self.alive = True

    @property
    def length(self) -> int:
        return len(self.scores)

    def critical_position(self) -> float:
        if len(self.scores) <= 1:
            return 1.0
        best_step = int(np.argmax(self.scores))
        return best_step / (len(self.scores) - 1)


class ParameterSearcher:
    """Runs Algorithm 1 for one (workload, sketch) pair.

    Parameters
    ----------
    sketch:
        The sketch whose parameters are searched.
    agent:
        The PPO agent owning the policy for this sketch's action space.
    cost_model:
        Online cost model used for rewards, pruning scores and top-K selection.
    measurer:
        Simulated hardware measurer; consumes measurement trials.  The top-K
        candidates of every episode are submitted as one batch, so a
        :class:`~repro.hardware.parallel.ParallelMeasurer` fans them out over
        its worker pool without any change here.
    config:
        HARL configuration (track counts, top-K, RL training interval, ...).
    stopper:
        :class:`AdaptiveStopper` (HARL) or :class:`FixedLengthStopper`
        (Hierarchical-RL ablation / Flextensor).
    """

    def __init__(
        self,
        sketch: Sketch,
        agent: PPOAgent,
        cost_model,
        measurer: Measurer,
        config: Optional[HARLConfig] = None,
        stopper=None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sketch = sketch
        self.agent = agent
        self.cost_model = cost_model
        self.measurer = measurer
        self.config = config or HARLConfig()
        self.stopper = stopper or AdaptiveStopper(
            window_size=self.config.window_size,
            elimination_ratio=self.config.elimination_ratio,
            min_tracks=self.config.min_tracks,
        )
        self.rng = rng or np.random.default_rng(0)
        self.action_space = ActionSpace(sketch)
        self.unroll_depths = measurer.target.unroll_depths

    # ------------------------------------------------------------------ #
    def run_episode(
        self,
        warm_start: Optional[Sequence[Schedule]] = None,
        max_measures: Optional[int] = None,
    ) -> EpisodeResult:
        """Run one full episode and return its measurements and statistics."""
        cfg = self.config
        tracks = self._initial_tracks(warm_start)
        # history of visited schedules: signature -> (schedule, best predicted score)
        history: Dict[Tuple, Tuple[Schedule, float]] = {}

        initial_scores = self.cost_model.predict([t.schedule for t in tracks])
        for track, score in zip(tracks, initial_scores):
            track.scores.append(float(score))
            self._record(history, track.schedule, float(score))

        step = 0
        num_visited = len(tracks)
        rl_stats: Dict[str, float] = {}

        while (
            self.stopper.should_continue(step, sum(t.alive for t in tracks))
            and step < MAX_EPISODE_STEPS
        ):
            live = [t for t in tracks if t.alive]
            if not live:
                break
            states = batch_features([t.schedule for t in live])
            batch = self.agent.act(states)

            new_schedules = []
            for track, action_indices in zip(live, batch.actions):
                action = self.action_space.decode(tuple(action_indices))
                new_schedules.append(apply_action(track.schedule, action))

            old_scores = self.cost_model.predict([t.schedule for t in live])
            new_scores = self.cost_model.predict(new_schedules)
            rewards = (new_scores - old_scores) / (np.abs(old_scores) + 1e-6)
            rewards = np.clip(rewards, -2.0, 2.0)

            next_states = batch_features(new_schedules)
            next_values = self.agent.value(next_states)
            td_targets, advantages = self.agent.compute_advantage(
                rewards, batch.values, next_values
            )
            self.agent.store(states, batch.actions, batch.log_probs, rewards, td_targets, advantages)

            for track, schedule, score in zip(live, new_schedules, new_scores):
                track.schedule = schedule
                track.scores.append(float(score))
                self._record(history, schedule, float(score))
            num_visited += len(new_schedules)
            step += 1

            if step % cfg.train_interval == 0:
                rl_stats = self.agent.update()

            if self.stopper.is_elimination_step(step):
                survivors = set(self.stopper.select_survivors(advantages))
                for idx, track in enumerate(live):
                    if idx not in survivors:
                        track.alive = False

        measured = self._measure_top_k(history, max_measures)
        throughputs = [r.throughput for r in measured]
        latencies = [r.latency for r in measured]
        self.cost_model.update([r.schedule for r in measured], throughputs)

        return EpisodeResult(
            measured=measured,
            best_latency=float(min(latencies)) if latencies else float("inf"),
            best_throughput=float(max(throughputs)) if throughputs else 0.0,
            num_steps=step,
            num_visited=num_visited,
            track_lengths=[t.length for t in tracks],
            critical_positions=[t.critical_position() for t in tracks],
            rl_stats=rl_stats,
        )

    # ------------------------------------------------------------------ #
    def _initial_tracks(self, warm_start: Optional[Sequence[Schedule]]) -> List[_Track]:
        cfg = self.config
        schedules = sample_initial_schedules(
            self.sketch, cfg.num_tracks, self.rng, self.unroll_depths
        )
        if warm_start:
            # Seed a fraction of the tracks with previously good schedules so
            # later episodes refine rather than restart.
            keep = min(len(warm_start), max(1, cfg.num_tracks // 4))
            for i, schedule in enumerate(list(warm_start)[:keep]):
                if schedule.sketch is self.sketch or schedule.sketch.key == self.sketch.key:
                    schedules[i] = schedule.copy()
        return [_Track(s) for s in schedules]

    @staticmethod
    def _record(history: Dict, schedule: Schedule, score: float) -> None:
        key = schedule.signature()
        existing = history.get(key)
        if existing is None or score > existing[1]:
            history[key] = (schedule, score)

    def _measure_top_k(
        self, history: Dict, max_measures: Optional[int]
    ) -> List[MeasureResult]:
        """Measure the top-K predicted schedules of the episode in one batch."""
        budget = self.config.measures_per_round
        if max_measures is not None:
            budget = min(budget, max_measures)
        if budget <= 0 or not history:
            return []
        entries = sorted(history.values(), key=lambda pair: pair[1], reverse=True)
        top = [schedule for schedule, _score in entries[:budget]]
        return self.measurer.measure(top)
