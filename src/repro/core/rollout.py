"""Replay buffer for the PPO agent.

Algorithm 1 records ``(S, M, S', R, Y)`` tuples — state, joint action, next
state, reward and advantage — into a replay buffer ``B``; every ``T_rl`` steps
a mini-batch is sampled from it to train the actor and critic networks.  The
buffer here additionally stores the behaviour policy's log-probability and
the TD target, which the clipped PPO objective and the critic regression need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["ReplayBuffer"]


@dataclass
class _Batch:
    states: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    rewards: np.ndarray
    td_targets: np.ndarray
    advantages: np.ndarray


class ReplayBuffer:
    """Fixed-capacity FIFO buffer of transitions.

    All arrays are pre-allocated; ``add`` copies a batch of transitions in and
    overwrites the oldest entries once the capacity is reached.
    """

    def __init__(self, capacity: int, state_size: int, num_heads: int, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.state_size = int(state_size)
        self.num_heads = int(num_heads)
        self._states = np.zeros((capacity, state_size), dtype=np.float64)
        self._actions = np.zeros((capacity, num_heads), dtype=np.int64)
        self._old_log_probs = np.zeros(capacity, dtype=np.float64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        self._td_targets = np.zeros(capacity, dtype=np.float64)
        self._advantages = np.zeros(capacity, dtype=np.float64)
        self._rng = np.random.default_rng(seed)
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    def add(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        old_log_probs: np.ndarray,
        rewards: np.ndarray,
        td_targets: np.ndarray,
        advantages: np.ndarray,
    ) -> None:
        """Append a batch of transitions (oldest entries are overwritten)."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.atleast_2d(np.asarray(actions, dtype=np.int64))
        n = states.shape[0]
        if not (
            actions.shape[0] == n
            and len(old_log_probs) == n
            and len(rewards) == n
            and len(td_targets) == n
            and len(advantages) == n
        ):
            raise ValueError("all transition arrays must have the same leading dimension")
        for i in range(n):
            idx = self._next
            self._states[idx] = states[i]
            self._actions[idx] = actions[i]
            self._old_log_probs[idx] = old_log_probs[i]
            self._rewards[idx] = rewards[i]
            self._td_targets[idx] = td_targets[i]
            self._advantages[idx] = advantages[i]
            self._next = (self._next + 1) % self.capacity
            self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> Dict[str, np.ndarray]:
        """Sample a mini-batch uniformly at random (without replacement)."""
        if self._size == 0:
            raise RuntimeError("cannot sample from an empty buffer")
        batch_size = min(int(batch_size), self._size)
        idx = self._rng.choice(self._size, size=batch_size, replace=False)
        return {
            "states": self._states[idx],
            "actions": self._actions[idx],
            "old_log_probs": self._old_log_probs[idx],
            "rewards": self._rewards[idx],
            "td_targets": self._td_targets[idx],
            "advantages": self._advantages[idx],
        }

    def clear(self) -> None:
        self._next = 0
        self._size = 0
