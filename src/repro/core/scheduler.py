"""The HARL auto-scheduler.

:class:`HARLScheduler` ties the three hierarchical decision levels together:

* **subgraph selection** — a non-stationary SW-UCB bandit fed by the Ansor
  gradient-estimation reward (only used for end-to-end network tuning),
* **sketch selection** — a SW-UCB bandit per subgraph whose reward is the
  normalised best performance achieved by episodes run under each sketch,
* **parameter search** — a PPO agent per (subgraph, sketch) driving
  Algorithm 1 episodes with adaptive stopping.

Ablation switches (``adaptive_stopping``, ``use_sketch_mab``,
``use_subgraph_mab``) reproduce the "Hierarchical-RL" and "HARL w/o subgraph
MAB" variants of the evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.caching import cached_sketches_for_target
from repro.core.actor_critic import PPOAgent
from repro.core.adaptive_stopping import AdaptiveStopper, FixedLengthStopper
from repro.core.bandit import SlidingWindowUCB
from repro.core.config import HARLConfig
from repro.core.parameter_search import EpisodeResult, ParameterSearcher
from repro.core.subgraph_reward import SubgraphState, normalized_rewards
from repro.core.tuner import NetworkTuningResult, TuningResult
from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.hardware.target import HardwareTarget, cpu_target
from repro.networks.graph import NetworkGraph
from repro.tensor.actions import ActionSpace
from repro.tensor.dag import ComputeDAG
from repro.tensor.features import FEATURE_SIZE
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import Sketch

__all__ = ["HARLScheduler"]


class _TaskContext:
    """Per-subgraph tuning state: sketches, sketch bandit, agents, searchers."""

    def __init__(self, dag: ComputeDAG, scheduler: "HARLScheduler"):
        self.dag = dag
        # Sketch families are memoised per (workload, target depths): repeat
        # jobs for one workload — service resubmissions, network sweeps —
        # share one generation instead of regenerating per task context.
        self.sketches: List[Sketch] = cached_sketches_for_target(dag, scheduler.target)
        cfg = scheduler.config
        self.sketch_mab = SlidingWindowUCB(
            len(self.sketches),
            exploration=cfg.ucb_constant,
            window=cfg.ucb_window,
            rng=scheduler._rng,
        )
        self.agents: Dict[int, PPOAgent] = {}
        self.searchers: Dict[int, ParameterSearcher] = {}
        self.best_schedules: List[Schedule] = []
        #: Transferred schedules (from a registry / warm-start provider) that
        #: should be measured directly before regular search rounds begin.
        self.pending_warm_start: List[Schedule] = []
        #: Trials spent measuring transferred schedules (for provenance /
        #: sample-efficiency reporting: these trials bought donor knowledge,
        #: not fresh search).
        self.warm_start_trials = 0
        self.critical_positions: List[float] = []
        self.track_lengths: List[int] = []
        self.episodes = 0
        self.search_steps = 0


class HARLScheduler:
    """Hierarchical Adaptive RL auto-scheduler (the paper's contribution).

    Parameters
    ----------
    target:
        Simulated hardware target (defaults to the CPU preset).
    config:
        Hyper-parameters; defaults to the paper's Table 5 values.
    adaptive_stopping:
        Disable to obtain the fixed-length "Hierarchical-RL" ablation.
    use_sketch_mab:
        Disable to select sketches uniformly at random (Ansor-style).
    use_subgraph_mab:
        Disable to fall back to greedy gradient-based task selection for
        end-to-end networks ("HARL w/o subgraph MAB" in Table 4).
    measurer:
        Measurement backend; pass a
        :class:`~repro.hardware.parallel.ParallelMeasurer` to fan measurement
        batches out over a worker pool (results are identical to the serial
        default for the same seed).
    record_store:
        Optional :class:`~repro.records.RecordStore`.  When given, every
        measurement is streamed to the store's JSONL log as it happens and
        each final tuning result is appended on completion, so the run is
        resumable via :meth:`resume_from`.
    warm_start_provider:
        Optional callable ``provider(dag) -> Sequence[Schedule]`` consulted
        the first time each workload is tuned (e.g.
        :meth:`~repro.serving.registry.ScheduleRegistry.warm_start_schedules`).
        The returned schedules are measured directly before regular search
        rounds start, which both seeds the episode warm starts and teaches
        the cost model the transferred knowledge.
    """

    name = "harl"

    def __init__(
        self,
        target: Optional[HardwareTarget] = None,
        config: Optional[HARLConfig] = None,
        seed: int = 0,
        adaptive_stopping: bool = True,
        use_sketch_mab: bool = True,
        use_subgraph_mab: bool = True,
        cost_model: Optional[ScheduleCostModel] = None,
        measurer: Optional[Measurer] = None,
        record_store=None,
        warm_start_provider=None,
    ):
        self.target = target or cpu_target()
        self.config = config or HARLConfig()
        self.seed = int(seed)
        self.adaptive_stopping = bool(adaptive_stopping)
        self.use_sketch_mab = bool(use_sketch_mab)
        self.use_subgraph_mab = bool(use_subgraph_mab)
        self._rng = np.random.default_rng(seed)
        self.measurer = measurer or Measurer(
            self.target, min_repeat_seconds=self.config.min_repeat_seconds, seed=seed
        )
        self.cost_model = cost_model or ScheduleCostModel(seed=seed)
        self.record_store = record_store
        if record_store is not None and self.measurer.record_store is None:
            self.measurer.record_store = record_store
        self.warm_start_provider = warm_start_provider
        self._resume_store = None
        self._tasks: Dict[str, _TaskContext] = {}

        if not adaptive_stopping:
            self.name = "hierarchical-rl"

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def resume_from(self, store) -> "HARLScheduler":
        """Resume tuning from a previously persisted record store.

        The store's measurements are replayed lazily, per workload, the first
        time each workload is tuned: the cost model is warm-started with the
        recorded (schedule, throughput) pairs, the measurer's best-known
        statistics are preloaded, and the best recorded schedules seed the
        episode warm starts.  Returns ``self`` for chaining.
        """
        self._resume_store = store
        # Contexts built before the call would miss the replay.
        self._tasks.clear()
        return self

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _task(self, dag: ComputeDAG) -> _TaskContext:
        ctx = self._tasks.get(dag.name)
        if ctx is None:
            ctx = _TaskContext(dag, self)
            self._tasks[dag.name] = ctx
            if self._resume_store is not None:
                restored = self._resume_store.replay(
                    dag, cost_model=self.cost_model, measurer=self.measurer
                )
                # Best recorded schedules become episode warm starts.
                ctx.best_schedules = list(reversed(restored[:4]))
            if self.warm_start_provider is not None:
                ctx.pending_warm_start = list(self.warm_start_provider(dag) or [])
        return ctx

    def _make_stopper(self):
        if self.adaptive_stopping:
            return AdaptiveStopper(
                window_size=self.config.window_size,
                elimination_ratio=self.config.elimination_ratio,
                min_tracks=self.config.min_tracks,
            )
        return FixedLengthStopper(episode_length=self.config.episode_length)

    def _searcher(self, ctx: _TaskContext, sketch_index: int) -> ParameterSearcher:
        searcher = ctx.searchers.get(sketch_index)
        if searcher is None:
            sketch = ctx.sketches[sketch_index]
            agent = PPOAgent(
                feature_size=FEATURE_SIZE,
                head_sizes=ActionSpace(sketch).head_sizes,
                config=self.config,
                seed=self.seed + 97 * sketch_index + len(ctx.dag.name),
            )
            ctx.agents[sketch_index] = agent
            searcher = ParameterSearcher(
                sketch=sketch,
                agent=agent,
                cost_model=self.cost_model,
                measurer=self.measurer,
                config=self.config,
                stopper=self._make_stopper(),
                rng=np.random.default_rng(self.seed + 31 * sketch_index + 7),
            )
            ctx.searchers[sketch_index] = searcher
        return searcher

    # ------------------------------------------------------------------ #
    # single-operator tuning
    # ------------------------------------------------------------------ #
    def tune(self, dag: ComputeDAG, n_trials: int) -> TuningResult:
        """Tune one operator / subgraph within a budget of measurement trials."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        ctx = self._task(dag)
        start_trials = self.measurer.trials(dag.name)

        while self.measurer.trials(dag.name) - start_trials < n_trials:
            remaining = n_trials - (self.measurer.trials(dag.name) - start_trials)
            self._run_round(ctx, max_measures=remaining)

        result = self._build_result(ctx)
        self._persist_result(result)
        return result

    def tune_round(self, dag: ComputeDAG, max_measures: Optional[int] = None) -> int:
        """Run one incremental tuning round; returns trials consumed.

        This is the unit of work the multi-tenant
        :class:`~repro.serving.service.TuningService` interleaves across
        jobs: one sketch-bandit choice plus one parameter-search episode
        (or a warm-start measurement batch), bounded by ``max_measures``.
        Call :meth:`finalize` once the caller's budget is exhausted.
        """
        if max_measures is not None and max_measures <= 0:
            return 0
        ctx = self._task(dag)
        before = self.measurer.trials(dag.name)
        self._run_round(ctx, max_measures=max_measures)
        return self.measurer.trials(dag.name) - before

    def finalize(self, dag: ComputeDAG) -> TuningResult:
        """Build (and persist) the current tuning result of one workload."""
        result = self._build_result(self._task(dag))
        self._persist_result(result)
        return result

    def _persist_result(self, result: TuningResult) -> None:
        """Append a final tuning result to the record store, if one is attached."""
        if self.record_store is not None:
            self.record_store.append_result(result)

    def _consume_warm_start(
        self, ctx: _TaskContext, max_measures: Optional[int] = None
    ) -> EpisodeResult:
        """Measure pending transferred schedules as one direct batch.

        Transferred (registry) schedules skip the search entirely: they are
        measured immediately, their outcomes train the cost model, and the
        best of them seeds the episode warm starts — so a warm-started run
        reaches its donor's quality within the first few trials.
        """
        budget = len(ctx.pending_warm_start)
        if max_measures is not None:
            budget = min(budget, max_measures)
        batch = ctx.pending_warm_start[:budget]
        ctx.pending_warm_start = ctx.pending_warm_start[budget:]
        results = self.measurer.measure(batch)
        ctx.warm_start_trials += len(results)
        self.cost_model.update(
            [r.schedule for r in results], [r.throughput for r in results]
        )
        if results:
            best = min(results, key=lambda r: r.latency)
            ctx.best_schedules.append(best.schedule)
            ctx.best_schedules = ctx.best_schedules[-8:]
        latencies = [r.latency for r in results]
        return EpisodeResult(
            measured=results,
            best_latency=float(min(latencies)) if latencies else float("inf"),
            best_throughput=float(max(r.throughput for r in results)) if results else 0.0,
            num_steps=0,
            num_visited=len(results),
            track_lengths=[],
            critical_positions=[],
        )

    def _run_round(self, ctx: _TaskContext, max_measures: Optional[int] = None) -> EpisodeResult:
        """One tuning round: pick a sketch, run one parameter-search episode."""
        if ctx.pending_warm_start:
            return self._consume_warm_start(ctx, max_measures)
        if self.use_sketch_mab:
            sketch_index = ctx.sketch_mab.select()
        else:
            sketch_index = int(self._rng.integers(0, len(ctx.sketches)))

        searcher = self._searcher(ctx, sketch_index)
        warm_start = ctx.best_schedules[-4:] if ctx.best_schedules else None
        episode = searcher.run_episode(warm_start=warm_start, max_measures=max_measures)

        ctx.episodes += 1
        ctx.search_steps += episode.num_visited
        ctx.critical_positions.extend(episode.critical_positions)
        ctx.track_lengths.extend(episode.track_lengths)

        best_overall = self.cost_model.best_throughput(ctx.dag.name)
        if episode.best_throughput > 0 and best_overall > 0:
            reward = float(np.clip(episode.best_throughput / best_overall, 0.0, 1.0))
        else:
            reward = 0.0
        ctx.sketch_mab.update(sketch_index, reward)

        if episode.measured:
            best = min(episode.measured, key=lambda r: r.latency)
            ctx.best_schedules.append(best.schedule)
            ctx.best_schedules = ctx.best_schedules[-8:]
        return episode

    def _build_result(self, ctx: _TaskContext) -> TuningResult:
        name = ctx.dag.name
        best_latency = self.measurer.best_latency(name)
        best_schedule = self.measurer.best_schedule(name)
        return TuningResult(
            workload=name,
            scheduler=self.name,
            best_latency=best_latency,
            best_throughput=ctx.dag.flops / best_latency if np.isfinite(best_latency) else 0.0,
            best_schedule=best_schedule,
            trials_used=self.measurer.trials(name),
            search_steps=ctx.search_steps,
            history=self.measurer.history(name),
            extras={
                "episodes": ctx.episodes,
                "warm_start_trials": ctx.warm_start_trials,
                "critical_positions": list(ctx.critical_positions),
                "track_lengths": list(ctx.track_lengths),
                "sketch_plays": ctx.sketch_mab.total_plays().tolist(),
                "sketch_keys": [s.key for s in ctx.sketches],
            },
        )

    # ------------------------------------------------------------------ #
    # end-to-end network tuning
    # ------------------------------------------------------------------ #
    def tune_network(self, network: NetworkGraph, n_trials: int) -> NetworkTuningResult:
        """Tune all subgraphs of a network within a total measurement budget."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        cfg = self.config
        contexts = {sg.name: self._task(sg.dag) for sg in network}
        states = {
            sg.name: SubgraphState(
                name=sg.name,
                weight=sg.weight,
                flops=sg.dag.flops,
                similarity_group=sg.reward_group,
            )
            for sg in network
        }
        subgraph_mab = SlidingWindowUCB(
            len(network.subgraphs),
            exploration=cfg.ucb_constant,
            window=cfg.ucb_window,
            rng=self._rng,
        )
        task_names = [sg.name for sg in network]
        allocations = {name: 0 for name in task_names}
        latency_history: List[Tuple[int, float]] = []
        start_trials = self.measurer.total_trials

        while self.measurer.total_trials - start_trials < n_trials:
            remaining = n_trials - (self.measurer.total_trials - start_trials)
            if self.use_subgraph_mab:
                task_index = subgraph_mab.select()
            else:
                task_index = self._greedy_task_index(states, task_names)
            task_name = task_names[task_index]
            sg = network.subgraph(task_name)
            ctx = contexts[task_name]

            trials_before = self.measurer.trials(sg.dag.name)
            self._run_round(ctx, max_measures=remaining)
            allocations[task_name] += self.measurer.trials(sg.dag.name) - trials_before

            states[task_name].record(self.measurer.best_latency(sg.dag.name))
            rewards = normalized_rewards(
                [states[n] for n in task_names],
                alpha=cfg.alpha,
                beta=cfg.beta,
                backward_window=cfg.backward_window,
            )
            subgraph_mab.update(task_index, float(rewards[task_index]))

            current = network.estimated_latency(
                {n: states[n].best_latency for n in task_names}
            )
            latency_history.append((self.measurer.total_trials - start_trials, current))

        task_results = {name: self._build_result(contexts[name]) for name in task_names}
        for task_result in task_results.values():
            self._persist_result(task_result)
        return NetworkTuningResult(
            network=network.name,
            scheduler=self.name,
            task_results=task_results,
            task_weights=network.weights(),
            latency_history=latency_history,
            allocations=allocations,
            extras={
                "subgraph_plays": subgraph_mab.total_plays().tolist(),
                "task_names": task_names,
                "use_subgraph_mab": self.use_subgraph_mab,
            },
        )

    def _greedy_task_index(self, states: Dict[str, SubgraphState], task_names: List[str]) -> int:
        """Greedy (Ansor-style) task selection: always the highest-reward task.

        Tasks that were never tuned are warmed up first (a round-robin pass),
        which is how Ansor's task scheduler bootstraps its gradient estimates.
        """
        for index, name in enumerate(task_names):
            if states[name].rounds == 0:
                return index
        rewards = normalized_rewards(
            [states[n] for n in task_names],
            alpha=self.config.alpha,
            beta=self.config.beta,
            backward_window=self.config.backward_window,
        )
        return int(np.argmax(rewards))
