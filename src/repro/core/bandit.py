"""Sliding-Window Upper Confidence Bound (SW-UCB) bandit.

Both the subgraph-selection and the sketch-selection levels of HARL are
modelled as *non-stationary* multi-armed bandit problems and solved with
SW-UCB (Eq. 1 / 2 / 4 of the paper): the empirical mean reward of each arm is
computed over the last ``tau`` plays only, so the policy keeps adapting as the
reward distributions drift during the tuning run.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SlidingWindowUCB"]


class SlidingWindowUCB:
    """Non-stationary multi-armed bandit with a sliding reward window.

    Parameters
    ----------
    num_arms:
        Number of actions (subgraphs or sketches).
    exploration:
        The constant ``c`` of Eq. 1 weighting the exploration bonus.
    window:
        The window size ``tau``: only the most recent ``tau`` (arm, reward)
        observations contribute to the empirical means and counts.
    rng:
        Used only to break ties between arms with equal UCB scores.
    """

    def __init__(
        self,
        num_arms: int,
        exploration: float = 0.25,
        window: int = 256,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_arms < 1:
            raise ValueError("num_arms must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if exploration < 0:
            raise ValueError("exploration must be >= 0")
        self.num_arms = int(num_arms)
        self.exploration = float(exploration)
        self.window = int(window)
        self._rng = rng or np.random.default_rng(0)
        self._history: Deque[Tuple[int, float]] = deque(maxlen=self.window)
        self._total_plays = np.zeros(self.num_arms, dtype=np.int64)
        self.t = 0

    # ------------------------------------------------------------------ #
    def counts(self) -> np.ndarray:
        """Per-arm play counts inside the current window (``N_t(tau, a)``)."""
        counts = np.zeros(self.num_arms, dtype=np.int64)
        for arm, _reward in self._history:
            counts[arm] += 1
        return counts

    def values(self) -> np.ndarray:
        """Per-arm mean reward inside the window (``Q_t(tau, a)``); 0 if unplayed."""
        sums = np.zeros(self.num_arms, dtype=np.float64)
        counts = np.zeros(self.num_arms, dtype=np.float64)
        for arm, reward in self._history:
            sums[arm] += reward
            counts[arm] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return means

    def total_plays(self) -> np.ndarray:
        """Lifetime play counts per arm (used by the trial-allocation figures)."""
        return self._total_plays.copy()

    def ucb_scores(self) -> np.ndarray:
        """The SW-UCB score of every arm (Eq. 1).  Unplayed arms get +inf."""
        counts = self.counts().astype(np.float64)
        means = self.values()
        horizon = max(min(self.t, self.window), 1)
        scores = np.full(self.num_arms, np.inf, dtype=np.float64)
        played = counts > 0
        scores[played] = means[played] + self.exploration * np.sqrt(
            np.log(horizon) / counts[played]
        )
        return scores

    # ------------------------------------------------------------------ #
    def select(self, among: Optional[Sequence[int]] = None) -> int:
        """Choose the arm with the highest SW-UCB score (ties broken at random).

        ``among`` restricts the choice to a subset of arm indices (used by
        drivers whose arms can retire, e.g. network subgraphs whose trial
        budget is settled); the scores of excluded arms are ignored.
        """
        scores = self.ucb_scores()
        if among is not None:
            allowed = np.zeros(self.num_arms, dtype=bool)
            for arm in among:
                if not (0 <= arm < self.num_arms):
                    raise IndexError(f"arm {arm} out of range [0, {self.num_arms})")
                allowed[arm] = True
            if not allowed.any():
                raise ValueError("select needs at least one candidate arm")
            scores = np.where(allowed, scores, -np.inf)
        best = float(np.max(scores))
        candidates = np.flatnonzero(
            # isposinf (not isinf): masked-out arms sit at -inf and must never
            # be tie-broken in when unplayed arms put the maximum at +inf.
            np.isposinf(scores) if np.isinf(best) else np.isclose(scores, best)
        )
        return int(self._rng.choice(candidates))

    def update(self, arm: int, reward: float) -> None:
        """Record the reward obtained after playing ``arm``."""
        if not (0 <= arm < self.num_arms):
            raise IndexError(f"arm {arm} out of range [0, {self.num_arms})")
        if not np.isfinite(reward):
            reward = 0.0
        self._history.append((int(arm), float(reward)))
        self._total_plays[arm] += 1
        self.t += 1

    def play(self, reward_fn) -> Tuple[int, float]:
        """Convenience helper: select an arm, obtain its reward, update, return both."""
        arm = self.select()
        reward = float(reward_fn(arm))
        self.update(arm, reward)
        return arm, reward
