"""PPO actor-critic agent for schedule modifications.

The agent follows the actor-critic formulation of Section 4.3: the actor maps
a schedule's feature vector to one categorical distribution per modification
sub-space (tiling pair, compute-at delta, parallel delta, unroll delta); the
critic estimates the state value; the advantage is the one-step temporal
difference of Eq. 6; and training uses the clipped PPO surrogate with an
entropy bonus and an MSE value loss (weights from Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import HARLConfig
from repro.core.policy import Adam, MultiHeadMLP, log_softmax, softmax
from repro.core.rollout import ReplayBuffer

__all__ = ["PPOAgent", "ActionBatch"]


@dataclass
class ActionBatch:
    """Result of one policy query on a batch of states."""

    actions: np.ndarray       #: (N, num_heads) int indices
    log_probs: np.ndarray     #: (N,) joint log-probability under the behaviour policy
    values: np.ndarray        #: (N,) critic value estimates


class PPOAgent:
    """Actor-critic agent with a PPO update rule.

    One agent is instantiated per (workload, sketch) pair because the size of
    the tiling action head depends on the sketch's number of tile slots.
    """

    def __init__(
        self,
        feature_size: int,
        head_sizes: Sequence[int],
        config: Optional[HARLConfig] = None,
        seed: int = 0,
    ):
        self.config = config or HARLConfig()
        self.feature_size = int(feature_size)
        self.head_sizes = tuple(int(h) for h in head_sizes)
        self._rng = np.random.default_rng(seed)

        hidden = (self.config.hidden_size, self.config.hidden_size)
        self.actor = MultiHeadMLP(feature_size, hidden, self.head_sizes, rng=self._rng)
        self.critic = MultiHeadMLP(feature_size, hidden, (1,), rng=self._rng)
        self.actor_opt = Adam(self.actor.parameters(), lr=self.config.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=self.config.critic_lr)

        self.buffer = ReplayBuffer(
            capacity=self.config.replay_capacity,
            state_size=feature_size,
            num_heads=len(self.head_sizes),
            seed=seed + 1,
        )
        self.updates = 0

    # ------------------------------------------------------------------ #
    # acting
    # ------------------------------------------------------------------ #
    def policy_distributions(self, states: np.ndarray) -> List[np.ndarray]:
        """Per-head action probabilities for a batch of states."""
        logits, _ = self.actor.forward(states)
        return [softmax(l) for l in logits]

    def act(self, states: np.ndarray, greedy: bool = False) -> ActionBatch:
        """Sample one joint action per state (or take the argmax when ``greedy``)."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        logits, _ = self.actor.forward(states)
        n = states.shape[0]
        actions = np.zeros((n, len(self.head_sizes)), dtype=np.int64)
        log_probs = np.zeros(n, dtype=np.float64)
        for h, head_logits in enumerate(logits):
            probs = softmax(head_logits)
            logp = log_softmax(head_logits)
            if greedy:
                chosen = np.argmax(probs, axis=1)
            else:
                cumulative = np.cumsum(probs, axis=1)
                draws = self._rng.random((n, 1))
                chosen = np.argmax(cumulative > draws, axis=1)
            actions[:, h] = chosen
            log_probs += logp[np.arange(n), chosen]
        return ActionBatch(actions=actions, log_probs=log_probs, values=self.value(states))

    def value(self, states: np.ndarray) -> np.ndarray:
        """Critic value estimates ``V(s)`` for a batch of states."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        outputs, _ = self.critic.forward(states)
        return outputs[0][:, 0]

    # ------------------------------------------------------------------ #
    # experience
    # ------------------------------------------------------------------ #
    def compute_advantage(
        self, rewards: np.ndarray, values: np.ndarray, next_values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-step TD targets and advantages (Eq. 6)."""
        rewards = np.asarray(rewards, dtype=np.float64)
        td_targets = rewards + self.config.discount * np.asarray(next_values, dtype=np.float64)
        advantages = td_targets - np.asarray(values, dtype=np.float64)
        return td_targets, advantages

    def store(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        log_probs: np.ndarray,
        rewards: np.ndarray,
        td_targets: np.ndarray,
        advantages: np.ndarray,
    ) -> None:
        self.buffer.add(states, actions, log_probs, rewards, td_targets, advantages)

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #
    def update(self) -> Dict[str, float]:
        """Run ``ppo_epochs`` mini-batch gradient steps on the replay buffer."""
        if len(self.buffer) == 0:
            return {"actor_loss": 0.0, "critic_loss": 0.0, "entropy": 0.0}
        stats = {"actor_loss": 0.0, "critic_loss": 0.0, "entropy": 0.0}
        for _ in range(self.config.ppo_epochs):
            batch = self.buffer.sample(self.config.minibatch_size)
            step_stats = self._train_step(batch)
            for key in stats:
                stats[key] += step_stats[key] / self.config.ppo_epochs
        self.updates += 1
        return stats

    def _train_step(self, batch: Dict[str, np.ndarray]) -> Dict[str, float]:
        cfg = self.config
        states = batch["states"]
        actions = batch["actions"]
        old_log_probs = batch["old_log_probs"]
        advantages = batch["advantages"]
        td_targets = batch["td_targets"]
        n = states.shape[0]

        # Normalising advantages stabilises the tiny-batch PPO updates.
        adv = advantages.copy()
        if n > 1 and np.std(adv) > 1e-8:
            adv = (adv - np.mean(adv)) / (np.std(adv) + 1e-8)

        # ---------------- actor ---------------- #
        logits, actor_cache = self.actor.forward(states)
        new_log_probs = np.zeros(n, dtype=np.float64)
        probs_per_head = []
        for h, head_logits in enumerate(logits):
            logp = log_softmax(head_logits)
            probs_per_head.append(softmax(head_logits))
            new_log_probs += logp[np.arange(n), actions[:, h]]

        ratio = np.exp(np.clip(new_log_probs - old_log_probs, -20.0, 20.0))
        clipped = np.clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon)
        surr1 = ratio * adv
        surr2 = clipped * adv
        actor_loss = -float(np.mean(np.minimum(surr1, surr2)))

        # Gradient of the clipped surrogate w.r.t. the joint log-probability:
        # only unclipped samples propagate gradient.
        unclipped_mask = (surr1 <= surr2).astype(np.float64)
        dloss_dlogp = -(adv * ratio * unclipped_mask) / n

        entropy_total = 0.0
        head_grads = []
        for h, head_logits in enumerate(logits):
            probs = probs_per_head[h]
            logp = log_softmax(head_logits)
            onehot = np.zeros_like(probs)
            onehot[np.arange(n), actions[:, h]] = 1.0
            grad = dloss_dlogp[:, None] * (onehot - probs)

            entropy = -np.sum(probs * logp, axis=1)
            entropy_total += float(np.mean(entropy))
            # d(-w_ent * H)/dz = w_ent * p * (log p + H)
            grad += cfg.entropy_weight * probs * (logp + entropy[:, None]) / n
            head_grads.append(grad)

        actor_grads = self.actor.backward(actor_cache, head_grads)
        self.actor_opt.step(actor_grads)

        # ---------------- critic ---------------- #
        value_out, critic_cache = self.critic.forward(states)
        values = value_out[0][:, 0]
        value_error = values - td_targets
        critic_loss = float(cfg.mse_weight * np.mean(value_error ** 2))
        grad_value = (2.0 * cfg.mse_weight * value_error / n)[:, None]
        critic_grads = self.critic.backward(critic_cache, [grad_value])
        self.critic_opt.step(critic_grads)

        return {
            "actor_loss": actor_loss,
            "critic_loss": critic_loss,
            "entropy": entropy_total,
        }
