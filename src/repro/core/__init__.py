"""HARL core: the paper's primary contribution.

The hierarchical adaptive auto-scheduler consists of

* non-stationary multi-armed bandits (Sliding-Window UCB) for the subgraph and
  sketch selection levels of the search hierarchy,
* an actor-critic (PPO) agent for the low-level parameter modification level,
* an adaptive-stopping module that prunes schedule tracks with poor advantage
  values, and
* the parameter-search episode loop (Algorithm 1) with cost-model-based
  top-K selection, tied together by :class:`~repro.core.scheduler.HARLScheduler`.
"""

from repro.core.config import HARLConfig
from repro.core.bandit import SlidingWindowUCB
from repro.core.adaptive_stopping import AdaptiveStopper, FixedLengthStopper
from repro.core.actor_critic import PPOAgent
from repro.core.parameter_search import EpisodeResult, ParameterSearcher
from repro.core.scheduler import HARLScheduler
from repro.core.tuner import TuningResult

__all__ = [
    "AdaptiveStopper",
    "EpisodeResult",
    "FixedLengthStopper",
    "HARLConfig",
    "HARLScheduler",
    "PPOAgent",
    "ParameterSearcher",
    "SlidingWindowUCB",
    "TuningResult",
]
