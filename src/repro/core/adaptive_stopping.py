"""Adaptive-stopping search (Section 5 of the paper).

Instead of exploring every schedule track for a fixed number of steps, HARL
periodically (every ``window_size`` steps) sorts the live tracks by their
advantage value :math:`A_{\\pi_\\theta}` and eliminates the lowest
``elimination_ratio`` fraction, so the remaining budget concentrates on tracks
with better potential.  A :class:`FixedLengthStopper` is provided for the
"Hierarchical-RL" ablation of Fig. 7(a) and the Flextensor baseline.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["AdaptiveStopper", "FixedLengthStopper"]


class AdaptiveStopper:
    """Track-wise adaptive length control.

    Parameters
    ----------
    window_size:
        Number of steps (``lambda``) between elimination rounds.
    elimination_ratio:
        Fraction (``rho``) of live tracks eliminated at each round.
    min_tracks:
        Elimination stops once the number of live tracks would drop below this
        value (``p-hat``); the episode then ends.
    """

    def __init__(self, window_size: int = 20, elimination_ratio: float = 0.5, min_tracks: int = 64):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if not (0.0 < elimination_ratio < 1.0):
            raise ValueError("elimination_ratio must be in (0, 1)")
        if min_tracks < 1:
            raise ValueError("min_tracks must be >= 1")
        self.window_size = int(window_size)
        self.elimination_ratio = float(elimination_ratio)
        self.min_tracks = int(min_tracks)

    # ------------------------------------------------------------------ #
    def is_elimination_step(self, step: int) -> bool:
        """Whether an elimination round happens after completing ``step`` (1-based)."""
        return step > 0 and step % self.window_size == 0

    def should_continue(self, step: int, num_live: int) -> bool:
        """The episode continues while at least ``min_tracks`` tracks remain."""
        return num_live >= self.min_tracks

    def select_survivors(self, advantages: Sequence[float]) -> List[int]:
        """Indices of tracks to keep, ordered as in the input.

        The lowest-advantage ``rho`` fraction of tracks is eliminated.  The
        episode itself ends (via :meth:`should_continue`) once the number of
        survivors drops below ``min_tracks``.
        """
        advantages = np.asarray(list(advantages), dtype=np.float64)
        n = len(advantages)
        if n == 0:
            return []
        to_eliminate = int(np.floor(self.elimination_ratio * n))
        if to_eliminate <= 0:
            return list(range(n))
        order = np.argsort(advantages, kind="mergesort")  # ascending: worst first
        eliminated = set(int(i) for i in order[:to_eliminate])
        return [i for i in range(n) if i not in eliminated]

    def expected_total_steps(self, num_tracks: int) -> int:
        """Total schedule visits of one episode (used to match fixed-length budgets)."""
        total = 0
        live = num_tracks
        while live >= self.min_tracks:
            total += live * self.window_size
            keep = live - int(np.floor(self.elimination_ratio * live))
            if keep == live:
                break
            live = keep
        return total


class FixedLengthStopper:
    """Fixed-length episode control (the ablation / Flextensor behaviour).

    Every track runs for exactly ``episode_length`` steps; no elimination
    happens.
    """

    def __init__(self, episode_length: int = 40):
        if episode_length < 1:
            raise ValueError("episode_length must be >= 1")
        self.episode_length = int(episode_length)

    def is_elimination_step(self, step: int) -> bool:
        return False

    def should_continue(self, step: int, num_live: int) -> bool:
        return step < self.episode_length and num_live > 0

    def select_survivors(self, advantages: Sequence[float]) -> List[int]:
        return list(range(len(advantages)))

    def expected_total_steps(self, num_tracks: int) -> int:
        return num_tracks * self.episode_length
