"""Common tuning-result containers shared by HARL and the baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tensor.schedule import Schedule

__all__ = ["TuningResult", "NetworkTuningResult"]


@dataclass
class TuningResult:
    """Outcome of tuning a single operator / subgraph.

    ``history`` holds ``(measurement trial index, best latency so far)`` pairs;
    ``search_steps`` counts optimisation iterations (schedule visits), which is
    the wall-time proxy used by the search-time metrics.
    """

    workload: str
    scheduler: str
    best_latency: float
    best_throughput: float
    best_schedule: Optional[Schedule]
    trials_used: int
    search_steps: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def trials_to_reach(self, latency: float) -> Optional[int]:
        """First measurement trial at which the best latency reached ``latency``.

        Returns ``None`` when the target was never reached.  This implements
        the paper's *search time* metric: the cost of finding a program no
        worse than the baseline's final output.
        """
        for trial, best in self.history:
            if best <= latency:
                return trial
        return None

    def best_latency_at(self, trial: int) -> float:
        """Best latency achieved up to (and including) a given trial index."""
        best = float("inf")
        for t, latency in self.history:
            if t > trial:
                break
            best = latency
        return best


@dataclass
class NetworkTuningResult:
    """Outcome of tuning an end-to-end network (a weighted set of subgraphs)."""

    network: str
    scheduler: str
    task_results: Dict[str, TuningResult]
    task_weights: Dict[str, float]
    #: (total measurement trials, estimated end-to-end latency sum_n w_n * g_n)
    latency_history: List[Tuple[int, float]] = field(default_factory=list)
    #: total measurement trials allocated to each subgraph
    allocations: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def best_latency(self) -> float:
        """Final estimated end-to-end latency."""
        if self.latency_history:
            return self.latency_history[-1][1]
        return float("inf")

    @property
    def trials_used(self) -> int:
        return self.latency_history[-1][0] if self.latency_history else 0

    def trials_to_reach(self, latency: float) -> Optional[int]:
        for trial, value in self.latency_history:
            if value <= latency:
                return trial
        return None

    def task_contributions(self) -> Dict[str, float]:
        """Fraction of the end-to-end latency contributed by each subgraph."""
        weighted = {
            name: self.task_weights[name] * result.best_latency
            for name, result in self.task_results.items()
        }
        total = sum(v for v in weighted.values() if v != float("inf")) or 1.0
        return {name: value / total for name, value in weighted.items()}
