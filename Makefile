# Developer entry points.  Everything runs against the in-tree sources via
# PYTHONPATH, so no install step is required.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test coverage bench bench-smoke bench-full serve-demo serve-load \
	network-smoke network-demo perf perf-gate perf-scale lint gate analyze

## Tier-1 verification: the full unit/property/integration suite.
test:
	$(PYTHON) -m pytest tests -q

## Line coverage over src/repro (requires pytest-cov).  The suite measures
## ~95% line coverage; the fail-under pin sits a safety margin below and
## matches the CI coverage job.  Raise it when coverage improves, never
## lower it to make a PR pass.
coverage:
	$(PYTHON) -m pytest tests -q --cov=repro --cov-report=term-missing \
		--cov-fail-under=90

## Fast smoke pass over the benchmark harness (seconds, not minutes).
## Use this to sanity-check perf-sensitive changes before a full run.
bench-smoke:
	$(PYTHON) -m pytest -m smoke benchmarks -q

## Laptop-scale reproduction of every figure/table benchmark.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Paper-scale budgets (slow; see benchmarks/conftest.py).
bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks -q

## Fast end-to-end network sanity pass: a 2-subgraph toy network through the
## shared tuning service (seconds; also a CI job).
network-smoke:
	$(PYTHON) -m pytest -m network_smoke tests -q

## Hot-path micro-benchmarks: emits a schema-versioned BENCH_perf.json with
## median/p95 wall-clock, throughput and fast-vs-legacy speedup per stage,
## and enforces the tentpole floors (feature extraction >= 3x, NetworkTuner
## round >= 1.5x over the in-process legacy path).
perf:
	$(PYTHON) benchmarks/perf/run.py --output BENCH_perf.json --check

## perf + the CI regression gate: fail on >25% throughput regression in any
## stage vs the checked-in benchmarks/perf/baseline.json.
perf-gate: perf
	$(PYTHON) benchmarks/perf/compare.py BENCH_perf.json benchmarks/perf/baseline.json

## Million-entry registry scale benchmark: synthesises a 1M-entry v1 registry,
## upgrades it in place, and enforces the machine-independent speedup floors
## (startup-to-first-hit >= 10x, batched NN scoring >= 5x over the eager /
## per-entry v1 paths).  Emits the BENCH_scale.json artifact.
perf-scale:
	$(PYTHON) benchmarks/perf/scale.py --output BENCH_scale.json --check
	$(PYTHON) benchmarks/perf/compare.py --scale BENCH_scale.json

## Closed-loop load benchmark against the asyncio network front end: boots a
## server, replays Zipf/burst multi-tenant traffic at it, writes the
## BENCH_load.json artifact (p50/p95/p99 latency, registry hit rate, shed
## rate) and enforces the machine-independent serving invariants (every
## request answered, shed answers registry-only, hit-rate floor).
serve-load:
	$(PYTHON) benchmarks/perf/loadgen.py --output BENCH_load.json --check

## Release gate: run every fault-injection recovery obligation (registry,
## record store, compaction, measurer pool, tuning service) over 3 seeds and
## write the pass/fail report artifact (GATE_obligations.json).  Red report
## == non-zero exit == the build does not ship.
gate:
	$(PYTHON) -m repro.faults.gate --seeds 3 --report GATE_obligations.json

## Static checks (requires ruff; config in ruff.toml).  Format enforcement
## starts with the perf harness and will widen as files are formatted.
## mypy (strict-lite, scoped via mypy.ini) runs when installed and is
## skipped quietly otherwise, so laptop runs without dev deps still lint.
lint:
	ruff check .
	ruff format --check benchmarks/perf
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --config-file mypy.ini; \
	else \
		echo "mypy not installed; skipping type check (CI runs it)"; \
	fi

## Repo-aware static checkers (lock discipline, asyncio blocking calls,
## fault/obligation coverage, obs hygiene).  Non-zero exit on any finding
## not accepted in ANALYSIS_baseline.json; writes ANALYSIS_report.json.
analyze:
	$(PYTHON) -m repro.analysis --root src --baseline ANALYSIS_baseline.json \
		--report ANALYSIS_report.json

## Walk the serving subsystem: request coalescing, registry hits, transfer
## warm starts (see examples/serving_demo.py).
serve-demo:
	$(PYTHON) examples/serving_demo.py

## Walk end-to-end network tuning: ResNet-50 cold, MobileNet-V2 warm-started
## from it, ResNet-50 again from the registry (see examples/network_demo.py).
network-demo:
	$(PYTHON) examples/network_demo.py
