"""Table 7 — sensitivity of HARL to the adaptive-stopping window size lambda.

The 1024x1024x1024 GEMM is tuned with different window sizes under the same
trial budget; the bench reports the final performance and the search effort
per measurement trial (the "time per iteration" proxy), both normalised as in
the paper's Table 7.
"""

from __future__ import annotations

import os

import pytest

from repro.core.scheduler import HARLScheduler
from repro.experiments.cache import bench_config
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials
from repro.tensor.workloads import gemm

#: Paper values; at laptop scale the windows are shrunk proportionally to the
#: reduced episode width so the elimination dynamics stay comparable.
PAPER_LAMBDAS = (10, 20, 40, 80)
LAPTOP_LAMBDAS = (3, 5, 10, 20)


def test_table7_lambda_sensitivity(benchmark, print_report):
    full = os.environ.get("REPRO_FULL", "") == "1"
    lambdas = PAPER_LAMBDAS if full else LAPTOP_LAMBDAS
    n_trials = default_trials(1000, 64)
    base_config = bench_config() if not full else bench_config(1.0)

    def run():
        results = {}
        for lam in lambdas:
            config = base_config.replace(window_size=lam)
            scheduler = HARLScheduler(config=config, seed=0)
            dag = gemm(1024, 1024, 1024, name=f"gemm_l_lambda{lam}")
            result = scheduler.tune(dag, n_trials=n_trials)
            results[lam] = result
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    best_throughput = max(1.0 / r.best_latency for r in results.values())
    max_steps_per_trial = max(r.search_steps / max(r.trials_used, 1) for r in results.values())
    rows = []
    for lam, result in results.items():
        norm_perf = (1.0 / result.best_latency) / best_throughput
        norm_time = (result.search_steps / max(result.trials_used, 1)) / max_steps_per_trial
        rows.append([lam, norm_perf, norm_time])

    print_report(
        "Table 7: adaptive-stopping window size sensitivity on GEMM-L "
        "(paper: small lambda hurts performance, large lambda hurts time/iteration)",
        format_table(["lambda", "normalized performance", "normalized time/iteration"], rows),
    )

    # Shape checks: the largest window costs the most search effort per trial,
    # and no setting collapses performance entirely.
    assert rows[-1][2] == pytest.approx(1.0)
    assert all(perf > 0.5 for _lam, perf, _t in rows)
