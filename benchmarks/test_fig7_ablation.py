"""Figure 7 — ablation of hierarchical RL and adaptive stopping on GEMM-L.

* Fig. 7(a): best-performance-so-far vs. measurement trials for Ansor,
  Hierarchical-RL (HARL without adaptive stopping) and full HARL.
* Fig. 7(b): histogram of the critical step (position of the best schedule
  within each track) for fixed-length vs. adaptive-stopping search.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import cached_operator_comparison
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials

SCHEDULERS = ("ansor", "hierarchical-rl", "harl")


@pytest.fixture(scope="module")
def ablation_comparison():
    n_trials = default_trials(1000, 200)
    return cached_operator_comparison(
        "GEMM-L", batch=1, n_trials=n_trials, schedulers=SCHEDULERS, seed=0
    )


def test_fig7a_convergence_curves(benchmark, print_report, ablation_comparison):
    def run():
        return ablation_comparison

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    results = comparison.results
    budget = max(r.trials_used for r in results.values())
    checkpoints = [max(1, int(budget * f)) for f in (0.2, 0.4, 0.6, 0.8, 1.0)]

    best_overall = min(r.best_latency for r in results.values())
    rows = []
    for trial in checkpoints:
        row = [trial]
        for name in SCHEDULERS:
            latency = results[name].best_latency_at(trial)
            row.append(best_overall / latency if np.isfinite(latency) else 0.0)
        rows.append(row)

    print_report(
        "Figure 7(a): normalized performance vs. trials on GEMM-L "
        "(paper: Hierarchical-RL beats Ansor; adaptive stopping improves it further)",
        format_table(["trials"] + list(SCHEDULERS), rows),
    )

    final = {name: results[name].best_latency for name in SCHEDULERS}
    # Shape check: both HARL variants end at least as good as Ansor (small tolerance).
    assert final["harl"] <= final["ansor"] * 1.05
    assert final["hierarchical-rl"] <= final["ansor"] * 1.10


def test_fig7b_critical_step_histogram(benchmark, print_report, ablation_comparison):
    def run():
        return ablation_comparison

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    adaptive = np.asarray(comparison.results["harl"].extras["critical_positions"])
    fixed = np.asarray(comparison.results["hierarchical-rl"].extras["critical_positions"])

    bins = np.linspace(0.0, 1.0, 6)
    rows = []
    for i in range(5):
        label = f"{bins[i]:.0%} - {bins[i + 1]:.0%}"
        fixed_share = float(np.mean((fixed >= bins[i]) & (fixed < bins[i + 1] + (i == 4))))
        adaptive_share = float(np.mean((adaptive >= bins[i]) & (adaptive < bins[i + 1] + (i == 4))))
        rows.append([label, fixed_share, adaptive_share])
    rows.append(["mean critical position", float(np.mean(fixed)), float(np.mean(adaptive))])
    rows.append(["share in last 10% of track", float(np.mean(fixed >= 0.9)), float(np.mean(adaptive >= 0.9))])

    print_report(
        "Figure 7(b): critical-step position, fixed-length vs. adaptive-stopping "
        "(paper: adaptive stopping concentrates critical steps near the track end)",
        format_table(["relative position", "fixed-length", "adaptive-stopping"], rows),
    )

    # Shape check: adaptive stopping wastes no more steps than fixed-length search.
    assert float(np.mean(adaptive)) >= float(np.mean(fixed)) - 0.05
