"""Batched cost-model inference vs. a per-schedule prediction loop.

The measurement pipeline scores hundreds of candidate schedules per episode;
this bench demonstrates (and guards) the acceptance criterion that one
batched ``ScheduleCostModel.predict`` call over >= 64 schedules is measurably
faster than looping ``predict`` per schedule, thanks to the vectorised
feature extractor and the array-flattened regression trees.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.hardware.target import cpu_target
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm

pytestmark = pytest.mark.smoke

N_SCHEDULES = 96


@pytest.fixture(scope="module")
def trained_model_and_batch():
    """A cost model trained on measured schedules, plus a prediction batch."""
    rng = np.random.default_rng(0)
    dag = gemm(256, 256, 256)
    sketch = generate_sketches(dag)[0]
    train = sample_initial_schedules(sketch, 128, rng)
    measured = Measurer(cpu_target(), seed=0).measure(train)

    model = ScheduleCostModel(min_samples=16, retrain_interval=16, seed=0)
    model.update([r.schedule for r in measured], [r.throughput for r in measured])
    assert model.is_trained(dag.name)

    batch = sample_initial_schedules(sketch, N_SCHEDULES, rng)
    return model, batch


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_prediction_faster_than_loop(trained_model_and_batch, print_report):
    model, batch = trained_model_and_batch
    assert len(batch) >= 64

    batched_time = _best_of(3, lambda: model.predict(batch))
    loop_time = _best_of(3, lambda: [model.predict([s]) for s in batch])

    speedup = loop_time / batched_time
    print_report(
        f"Batched cost-model inference over {len(batch)} schedules",
        f"batched call : {batched_time * 1e3:8.2f} ms\n"
        f"per-schedule : {loop_time * 1e3:8.2f} ms\n"
        f"speedup      : {speedup:8.1f}x",
    )

    # Identical scores either way...
    batched_scores = model.predict(batch)
    loop_scores = np.concatenate([model.predict([s]) for s in batch])
    assert np.allclose(batched_scores, loop_scores)
    # ...but the batched call must be measurably (>= 2x) faster.
    assert batched_time * 2 < loop_time


def test_batched_feature_extraction_faster_than_loop(trained_model_and_batch, print_report):
    from repro.tensor.features import batch_features, schedule_features

    _model, batch = trained_model_and_batch
    batched_time = _best_of(3, lambda: batch_features(batch))
    loop_time = _best_of(3, lambda: [schedule_features(s) for s in batch])
    print_report(
        f"Vectorised feature extraction over {len(batch)} schedules",
        f"batched call : {batched_time * 1e3:8.2f} ms\n"
        f"per-schedule : {loop_time * 1e3:8.2f} ms\n"
        f"speedup      : {loop_time / batched_time:8.1f}x",
    )
    assert batched_time < loop_time
