"""Shared configuration for the benchmark harness.

Every file under ``benchmarks/`` regenerates one figure or table of the
paper's evaluation section (see DESIGN.md for the experiment index).  The
default budgets are scaled down so the whole harness runs on a laptop in
minutes; set ``REPRO_FULL=1`` for paper-scale budgets or ``REPRO_TRIALS=<n>``
to override the per-workload measurement-trial budget.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_report_header(config):
    import os

    full = os.environ.get("REPRO_FULL", "") == "1"
    override = os.environ.get("REPRO_TRIALS", "")
    mode = "paper-scale (REPRO_FULL=1)" if full else (
        f"override REPRO_TRIALS={override}" if override else "laptop-scale defaults"
    )
    return f"repro benchmark harness: {mode}"


@pytest.fixture(scope="session")
def print_report():
    """Print a reproduced figure/table after the benchmark timing finishes."""

    def _print(title: str, body: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)
        print(body)

    return _print
