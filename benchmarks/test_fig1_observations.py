"""Figure 1 — motivation observations on current auto-schedulers.

* Fig. 1(a): greedy task allocation on BERT wastes a large share of trials on
  subgraphs that only contribute to the final 1% of improvement.
* Fig. 1(b): uniformly-selected schedule mutations mostly yield ~zero
  improvement.
* Fig. 1(c): with fixed-length search (Flextensor), most tracks find their
  best schedule early, wasting the remaining steps.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.flextensor import FlextensorScheduler
from repro.experiments.cache import bench_config, cached_network_comparison
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials
from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import cpu_target
from repro.tensor.actions import ActionSpace, apply_action
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm


def test_fig1a_greedy_allocation(benchmark, print_report):
    """Trial allocations of the greedy (Ansor-style) task scheduler on BERT."""
    n_trials = default_trials(12000, 240)

    def run():
        return cached_network_comparison(
            "bert", batch=1, n_trials=n_trials, schedulers=("ansor",), seed=0
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    result = comparison.results["ansor"]

    history = result.latency_history
    final = history[-1][1]
    # The trial index at which the network got within 1% of its final latency.
    threshold = final * 1.01
    reach_trial = next(t for t, v in history if v <= threshold)

    weights = result.task_weights
    contributions = {
        name: weights[name] * res.best_latency for name, res in result.task_results.items()
    }
    top5 = sorted(contributions, key=contributions.get, reverse=True)[:5]

    total = sum(result.allocations.values())
    late = total - min(reach_trial, total)
    rows = [
        [name, result.allocations[name], f"{100 * contributions[name] / sum(contributions.values()):.1f}%"]
        for name in top5
    ]
    rows.append(["(all subgraphs, last-1% phase)", late, f"{100 * late / total:.1f}% of trials"])
    print_report(
        "Figure 1(a): greedy allocation on BERT (top-5 subgraphs by execution time)",
        format_table(["subgraph", "allocated trials", "share"], rows),
    )
    assert total >= n_trials


def test_fig1b_uniform_improvement(benchmark, print_report):
    """Improvement-ratio distribution of uniformly selected schedule mutations.

    Following the paper, the base programs are schedules an evolutionary
    search would actually hold in its population (the best of a larger random
    sample), and the improvement ratio is the performance of the mutated
    schedule relative to the original one.
    """
    num_programs = 200
    num_mutations = 20
    rng = np.random.default_rng(0)
    sim = LatencySimulator(cpu_target())
    sketch = generate_sketches(gemm(512, 512, 512))[1]
    space = ActionSpace(sketch)

    def run():
        pool = sample_initial_schedules(sketch, num_programs * 5, rng)
        pool.sort(key=sim.throughput, reverse=True)
        programs = pool[:num_programs]
        ratios = []
        for schedule in programs:
            base = sim.throughput(schedule)
            for _ in range(num_mutations):
                mutated = apply_action(schedule, space.sample(rng))
                ratios.append(sim.throughput(mutated) / base)
        return np.asarray(ratios)

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    no_gain = float(np.mean(ratios <= 1.02))
    rows = [
        ["programs x mutations", ratios.size, ""],
        ["median improvement ratio", float(np.median(ratios)), "paper: concentrated around 1.0"],
        ["mean improvement ratio", float(np.mean(ratios)), ""],
        ["fraction with no meaningful gain (<= 1.02)", no_gain, "paper: most improvements are ~0"],
        ["5th percentile", float(np.percentile(ratios, 5)), ""],
        ["95th percentile", float(np.percentile(ratios, 95)), ""],
    ]
    print_report(
        "Figure 1(b): improvement ratio of uniform schedule selection",
        format_table(["statistic", "value", "note"], rows),
    )
    # Most uniformly selected mutations of an already-decent schedule do not improve it.
    assert no_gain > 0.5
    assert 0.5 < float(np.median(ratios)) < 1.1


def test_fig1c_flextensor_path_efficiency(benchmark, print_report):
    """Histogram of the best-schedule position within fixed-length search paths."""
    n_trials = default_trials(1000, 48)
    config = bench_config()

    def run():
        scheduler = FlextensorScheduler(config=config, seed=0)
        positions = []
        for m, k, n in [(512, 512, 512), (256, 1024, 512), (1024, 1024, 1024)]:
            result = scheduler.tune(gemm(m, k, n), n_trials=n_trials)
            positions.extend(result.extras["critical_positions"])
        return np.asarray(positions)

    positions = benchmark.pedantic(run, rounds=1, iterations=1)
    hist, edges = np.histogram(positions, bins=5, range=(0.0, 1.0))
    rows = [
        [f"{edges[i]:.0%} - {edges[i + 1]:.0%}", int(count), f"{count / len(positions):.1%}"]
        for i, count in enumerate(hist)
    ]
    early_fraction = float(np.mean(positions <= 0.4))
    rows.append(["best found in first 40% of path", "", f"{early_fraction:.1%}"])
    print_report(
        "Figure 1(c): position of the best schedule within fixed-length search paths (Flextensor)",
        format_table(["relative position", "count", "share"], rows),
    )
    # The paper observes that most paths peak in the first 40% of their steps.
    assert early_fraction > 0.35
