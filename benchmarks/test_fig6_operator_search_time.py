"""Figure 6 — normalized search time of Ansor vs. HARL on tensor operators.

Search time is the cost (measurement trials) a scheduler needs to find a
program no worse than Ansor's final output, normalised to the slower
scheduler.  Reuses the tuning runs of the Figure 5 bench via the shared
result cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import cached_operator_comparison
from repro.experiments.operator_suite import OPERATOR_CLASSES
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials

BATCHES = (1, 16)


@pytest.mark.parametrize("batch", BATCHES)
def test_fig6_operator_search_time(benchmark, print_report, batch):
    n_trials = default_trials(1000, 100)

    def run():
        rows = []
        for op_class in OPERATOR_CLASSES:
            comparison = cached_operator_comparison(op_class, batch=batch, n_trials=n_trials)
            times = comparison.normalized_search_time(baseline="ansor")
            rows.append([op_class, times["ansor"], times["harl"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        f"Figure 6: normalized search time, batch={batch} "
        f"(paper: HARL needs 23-63% of Ansor's search time)",
        format_table(["operator", "Ansor", "HARL"], rows),
    )

    # Shape check: on average HARL reaches Ansor's best performance with no
    # more search cost than Ansor itself (small tolerance for laptop-scale
    # budget noise; the full-budget runs show a clear reduction).
    mean_ansor = float(np.mean([a for _op, a, _h in rows]))
    mean_harl = float(np.mean([h for _op, _a, h in rows]))
    assert mean_harl <= mean_ansor * 1.1
