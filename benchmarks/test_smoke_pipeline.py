"""Fast smoke checks for the measurement pipeline (``pytest -m smoke``).

Tiny-budget sanity runs for perf-sensitive PRs: the full figure benchmarks
take minutes, these take seconds.  They verify the three pipeline invariants
end to end — parallel == serial under a fixed seed, records survive a
round-trip, and a resumed run never regresses — without asserting anything
about absolute search quality.
"""

from __future__ import annotations

import pytest

from repro.core.config import HARLConfig
from repro.core.scheduler import HARLScheduler
from repro.hardware.parallel import ParallelMeasurer
from repro.hardware.target import cpu_target
from repro.records import RecordStore
from repro.tensor.workloads import gemm

pytestmark = pytest.mark.smoke

_SMOKE_TRIALS = 16


def _smoke_config() -> HARLConfig:
    return HARLConfig.scaled(0.1)


def test_smoke_serial_equals_parallel():
    dag = gemm(128, 128, 128)
    cfg = _smoke_config()
    target = cpu_target()
    serial = HARLScheduler(target=target, config=cfg, seed=0).tune(dag, _SMOKE_TRIALS)
    with ParallelMeasurer(
        target, num_workers=4, seed=0, min_repeat_seconds=cfg.min_repeat_seconds
    ) as measurer:
        parallel = HARLScheduler(
            target=target, config=cfg, seed=0, measurer=measurer
        ).tune(dag, _SMOKE_TRIALS)
    assert parallel.best_latency == serial.best_latency
    assert parallel.history == serial.history


def test_smoke_records_roundtrip_and_resume(tmp_path):
    dag = gemm(128, 128, 128)
    cfg = _smoke_config()
    path = tmp_path / "records.jsonl"

    with RecordStore(path) as store:
        first = HARLScheduler(config=cfg, seed=0, record_store=store).tune(
            dag, _SMOKE_TRIALS
        )
    loaded = RecordStore.load(path)
    assert len(loaded.measures(dag.name)) == first.trials_used

    second = (
        HARLScheduler(config=cfg, seed=1)
        .resume_from(loaded)
        .tune(dag, _SMOKE_TRIALS)
    )
    assert second.best_latency <= first.best_latency
