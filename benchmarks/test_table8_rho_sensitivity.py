"""Table 8 — sensitivity of HARL to the adaptive-stopping elimination ratio rho.

The 1024x1024x1024 GEMM is tuned with elimination ratios 0.25 / 0.5 / 0.75
under the same trial budget; the bench reports normalised final performance
and search effort per trial, mirroring Table 8 of the paper.
"""

from __future__ import annotations


from repro.core.scheduler import HARLScheduler
from repro.experiments.cache import bench_config
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials
from repro.tensor.workloads import gemm

RHOS = (0.75, 0.5, 0.25)


def test_table8_rho_sensitivity(benchmark, print_report):
    n_trials = default_trials(1000, 64)
    base_config = bench_config()

    def run():
        results = {}
        for rho in RHOS:
            config = base_config.replace(elimination_ratio=rho)
            scheduler = HARLScheduler(config=config, seed=0)
            dag = gemm(1024, 1024, 1024, name=f"gemm_l_rho{int(rho * 100)}")
            results[rho] = scheduler.tune(dag, n_trials=n_trials)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    best_throughput = max(1.0 / r.best_latency for r in results.values())
    max_steps_per_trial = max(r.search_steps / max(r.trials_used, 1) for r in results.values())
    rows = []
    for rho, result in results.items():
        norm_perf = (1.0 / result.best_latency) / best_throughput
        norm_time = (result.search_steps / max(result.trials_used, 1)) / max_steps_per_trial
        rows.append([rho, norm_perf, norm_time])

    print_report(
        "Table 8: adaptive-stopping elimination ratio sensitivity on GEMM-L "
        "(paper: rho=0.75 drops performance, rho=0.25 costs the most time per iteration)",
        format_table(["rho", "normalized performance", "normalized time/iteration"], rows),
    )

    # Shape checks: an aggressive elimination ratio explores fewer schedules per
    # trial than a conservative one, and rho=0.5 stays close to the best result.
    by_rho = {rho: row for rho, *row in rows}
    assert by_rho[0.25][1] >= by_rho[0.75][1]  # rho=0.25 searches more per trial
    assert by_rho[0.5][0] >= 0.8
