"""Figure 8 — normalized end-to-end performance of Ansor vs. HARL.

Default budgets cover BERT on the CPU and GPU targets at batch size 1;
``REPRO_FULL=1`` extends the sweep to ResNet-50 / MobileNet-V2 and batch 16,
matching the paper's full figure.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.cache import cached_network_comparison
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: (network, paper trial budget, laptop trial budget)
_NETWORKS = [("bert", 12000, 240)]
if FULL:
    _NETWORKS += [("resnet50", 22000, 700), ("mobilenet_v2", 16000, 1200)]

_TARGETS = ("cpu", "gpu")
_BATCHES = (1, 16) if FULL else (1,)


def _cases():
    cases = []
    for network, paper, laptop in _NETWORKS:
        for target in _TARGETS:
            for batch in _BATCHES:
                cases.append((network, target, batch, paper, laptop))
    return cases


@pytest.mark.parametrize("network,target,batch,paper_trials,laptop_trials", _cases())
def test_fig8_network_performance(
    benchmark, print_report, network, target, batch, paper_trials, laptop_trials
):
    n_trials = default_trials(paper_trials, laptop_trials)

    def run():
        return cached_network_comparison(
            network, batch=batch, n_trials=n_trials, target_name=target
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    perf = comparison.normalized_performance()
    harl = comparison.results["harl"]
    ansor = comparison.results["ansor"]
    label = f"{network}{'(G)' if target == 'gpu' else ''} batch={batch}"
    rows = [
        [label, perf["ansor"], perf["harl"], ansor.best_latency / harl.best_latency],
    ]
    print_report(
        "Figure 8: normalized end-to-end performance "
        "(paper: HARL improves the outcome by ~8-9%)",
        format_table(["network", "Ansor", "HARL", "HARL speedup"], rows),
    )

    # Shape check: HARL stays competitive end-to-end.  At laptop-scale budgets
    # (a few hundred trials instead of the paper's 12k+) the subgraph MAB's
    # exploration is not yet amortised, so the margin is generous here; the
    # REPRO_FULL run is where the paper's 8-9% improvement is expected.
    assert perf["harl"] >= 0.7
