"""Table 4 — per-subgraph breakdown of BERT on the CPU target.

For every BERT subgraph the bench reports its contribution to the end-to-end
execution time of HARL's output and the speed-up of HARL over Ansor on that
subgraph, plus the estimated / measured totals and the "without subgraph MAB"
ablation row — the same rows as Table 4 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.cache import cached_network_comparison
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials


def test_table4_bert_breakdown(benchmark, print_report):
    n_trials = default_trials(12000, 240)

    def run():
        return cached_network_comparison(
            "bert",
            batch=1,
            n_trials=n_trials,
            schedulers=("ansor", "harl", "harl-no-subgraph-mab"),
            seed=0,
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    harl = comparison.results["harl"]
    ansor = comparison.results["ansor"]
    no_mab = comparison.results["harl-no-subgraph-mab"]

    contributions = harl.task_contributions()
    order = sorted(contributions, key=contributions.get, reverse=True)

    rows = []
    for name in order:
        harl_latency = harl.task_results[name].best_latency
        ansor_latency = ansor.task_results[name].best_latency
        speedup = ansor_latency / harl_latency if np.isfinite(harl_latency) else 0.0
        rows.append([name, f"{contributions[name]:.1%}", f"{speedup:.2f}x"])

    total_speedup = ansor.best_latency / harl.best_latency
    no_mab_speedup = ansor.best_latency / no_mab.best_latency
    rows.append(["Estimated HARL (sum)", "100%", f"{total_speedup:.2f}x"])
    rows.append(["HARL w/o subgraph MAB", "-", f"{no_mab_speedup:.2f}x"])

    print_report(
        "Table 4: BERT subgraph breakdown on CPU "
        "(paper: GEMM subgraphs contribute ~87%, HARL speedup ~1.06-1.15x each, "
        "1.08x end-to-end, 1.06x without the subgraph MAB)",
        format_table(["subgraph", "execution time contribution", "speedup vs Ansor"], rows),
    )

    # Shape checks: the dense GEMMs dominate the execution time, and the full
    # HARL end-to-end result is at least as good as the no-MAB ablation.
    gemm_share = sum(contributions[n] for n in contributions if n.startswith("GEMM-"))
    assert gemm_share > 0.5
    assert total_speedup >= no_mab_speedup * 0.9
