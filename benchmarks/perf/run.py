#!/usr/bin/env python
"""Hot-path micro-benchmark harness (``make perf``).

Times the stages of the tuning inner loop — feature extraction, batched
cost-model prediction, sampler throughput, the vectorised simulator, a full
``NetworkTuner`` round and a registry warm-start lookup — and emits a
schema-versioned ``BENCH_perf.json`` with median / p95 wall-clock and
throughput per stage.

Every vectorised stage is timed twice: once on the fast path and once under
:func:`repro.caching.legacy_hot_path` (the pre-optimisation schedule-at-a-time
implementation), so the reported ``speedup`` is machine-independent and the
harness can verify the two paths produce equal results.  CI compares the
emitted throughputs against ``benchmarks/perf/baseline.json`` via
``compare.py`` and fails on regressions.

Usage::

    python benchmarks/perf/run.py --output BENCH_perf.json
    python benchmarks/perf/run.py --check     # also enforce speedup floors
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import obs
from repro.caching import cache_stats, clear_caches, legacy_hot_path, reset_cache_stats
from repro.core.config import HARLConfig
from repro.costmodel.model import ScheduleCostModel
from repro.experiments.network_runner import NetworkTuner
from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import cpu_target
from repro.networks.graph import NetworkGraph, Subgraph
from repro.records import schedule_to_dict
from repro.serving.fingerprint import structural_fingerprint, workload_embedding
from repro.serving.registry import RegistryEntry, ScheduleRegistry
from repro.serving.service import TuningService
from repro.tensor.features import batch_features
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv1d, gemm

SCHEMA_VERSION = 1

#: Speedup floors the tentpole must demonstrate (enforced by ``--check``).
SPEEDUP_FLOORS = {"feature_extraction": 3.0, "tuning_round": 1.5}


# --------------------------------------------------------------------- #
# timing helpers
# --------------------------------------------------------------------- #
def _time(fn: Callable[[], object], repeats: int, warmup: int = 1) -> List[float]:
    """Wall-clock samples of ``fn`` (seconds), after ``warmup`` unmeasured runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def _percentile(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _stage(
    name: str,
    samples: List[float],
    items: int,
    unit: str,
    legacy_samples: Optional[List[float]] = None,
) -> Dict[str, object]:
    median = statistics.median(samples)
    entry: Dict[str, object] = {
        "median_s": median,
        "p95_s": _percentile(samples, 95.0),
        "items": items,
        "throughput": items / median if median > 0 else float("inf"),
        "unit": unit,
    }
    if legacy_samples is not None:
        legacy_median = statistics.median(legacy_samples)
        entry["legacy_median_s"] = legacy_median
        entry["speedup"] = legacy_median / median if median > 0 else float("inf")
    else:
        entry["legacy_median_s"] = None
        entry["speedup"] = None
    print(
        f"  {name:<22} median {median * 1e3:9.3f} ms   "
        f"{entry['throughput']:12.1f} {unit}"
        + (
            f"   speedup {entry['speedup']:.2f}x"
            if entry["speedup"] is not None
            else ""
        )
    )
    return entry


# --------------------------------------------------------------------- #
# workload fixtures
# --------------------------------------------------------------------- #
def _schedule_batch(batch: int) -> list:
    """A mixed batch of schedules over every sketch of a mid-size GEMM."""
    target = cpu_target()
    dag = gemm(512, 512, 512)
    rng = np.random.default_rng(0)
    sketches = generate_sketches(
        dag, target.sketch_spatial_levels, target.sketch_reduction_levels
    )
    per_sketch = max(1, batch // len(sketches))
    schedules = []
    for sketch in sketches:
        schedules.extend(
            sample_initial_schedules(sketch, per_sketch, rng, target.unroll_depths)
        )
    return schedules


def _toy_network(name: str = "perf_net") -> NetworkGraph:
    return NetworkGraph(
        name=name,
        subgraphs=[
            Subgraph(
                "mm",
                gemm(128, 128, 128, name=f"{name}_mm"),
                weight=4,
                similarity_group="gemm",
            ),
            Subgraph(
                "c1d",
                conv1d(64, 16, 32, 3, 1, 1, name=f"{name}_c1d"),
                weight=2,
                similarity_group="conv1d",
            ),
        ],
    )


# --------------------------------------------------------------------- #
# stages
# --------------------------------------------------------------------- #
def bench_feature_extraction(repeats: int, batch: int) -> Dict[str, object]:
    schedules = _schedule_batch(batch)
    fast = _time(lambda: batch_features(schedules), repeats)
    with legacy_hot_path():
        legacy = _time(lambda: batch_features(schedules), repeats)
        reference = batch_features(schedules)
    if not np.array_equal(batch_features(schedules), reference):
        raise AssertionError("vectorised features differ from the serial reference")
    return _stage(
        "feature_extraction", fast, len(schedules), "schedules/s", legacy
    )


def bench_batched_prediction(repeats: int, batch: int) -> Dict[str, object]:
    schedules = _schedule_batch(batch)
    target = cpu_target()
    simulator = LatencySimulator(target)
    model = ScheduleCostModel(seed=0)
    train = schedules[:64]
    latencies = simulator.batch_latency(train)
    model.update(train, [s.dag.flops / lat for s, lat in zip(train, latencies)])

    fast = _time(lambda: model.predict(schedules), repeats)
    with legacy_hot_path():
        legacy = _time(
            lambda: [model.predict([schedule]) for schedule in schedules], repeats
        )
    return _stage("batched_prediction", fast, len(schedules), "schedules/s", legacy)


def bench_sampler(repeats: int, batch: int) -> Dict[str, object]:
    target = cpu_target()
    dag = gemm(512, 512, 512)
    sketch = generate_sketches(
        dag, target.sketch_spatial_levels, target.sketch_reduction_levels
    )[0]

    def run():
        rng = np.random.default_rng(7)
        return sample_initial_schedules(sketch, batch, rng, target.unroll_depths)

    samples = _time(run, repeats)
    return _stage("sampler", samples, batch, "schedules/s")


def bench_simulator(repeats: int, batch: int) -> Dict[str, object]:
    schedules = _schedule_batch(batch)
    simulator = LatencySimulator(cpu_target())
    fast = _time(lambda: simulator.batch_latency(schedules), repeats)
    with legacy_hot_path():
        legacy = _time(lambda: simulator.batch_latency(schedules), repeats)
        reference = simulator.batch_latency(schedules)
    # The documented contract is agreement to floating-point rounding
    # (tests pin rtol=1e-9); on this repo's reference platform the paths are
    # bit-identical, but a NumPy build with SIMD transcendental dispatch may
    # legitimately differ in the last ulp.
    if not np.allclose(simulator.batch_latency(schedules), reference, rtol=1e-9, atol=0.0):
        raise AssertionError("vectorised simulator differs from the serial reference")
    return _stage("simulator_batch", fast, len(schedules), "schedules/s", legacy)


def _run_network_tuning(n_trials: int) -> float:
    """One full NetworkTuner run on a fresh service; returns f(S)."""
    service = TuningService(
        registry=ScheduleRegistry(),
        config=HARLConfig.scaled(),
        seed=0,
    )
    report = NetworkTuner(_toy_network(), service).tune(n_trials=n_trials)
    return report.final_latency


def bench_tuning_round(repeats: int, n_trials: int) -> Dict[str, object]:
    fast = _time(lambda: _run_network_tuning(n_trials), repeats, warmup=1)
    fast_result = _run_network_tuning(n_trials)
    with legacy_hot_path():
        legacy = _time(lambda: _run_network_tuning(n_trials), repeats, warmup=0)
        legacy_result = _run_network_tuning(n_trials)
    if not np.isclose(fast_result, legacy_result, rtol=1e-9):
        raise AssertionError(
            f"fast/legacy tuning results diverged: {fast_result} vs {legacy_result}"
        )
    return _stage("tuning_round", fast, n_trials, "trials/s", legacy)


def bench_obs_overhead(repeats: int, n_trials: int) -> Dict[str, object]:
    """Instrumentation overhead on the six-stage harness's tuning stage.

    Times the full ``NetworkTuner`` run (the harness stage that crosses every
    instrumented layer: service rounds, measurement batches, registry appends,
    cache lookups) with tracing unarmed versus armed, and reports the
    fractional overhead.  ``compare.py --max-obs-overhead`` gates this at 2%.
    """
    baseline = _time(lambda: _run_network_tuning(n_trials), repeats, warmup=1)

    def traced():
        with obs.tracing():
            return _run_network_tuning(n_trials)

    armed = _time(traced, repeats, warmup=1)
    baseline_median = statistics.median(baseline)
    traced_median = statistics.median(armed)
    overhead = (
        traced_median / baseline_median - 1.0 if baseline_median > 0 else 0.0
    )
    print(
        f"  {'obs_overhead':<22} baseline {baseline_median * 1e3:9.3f} ms   "
        f"traced {traced_median * 1e3:9.3f} ms   overhead {overhead * 100:+.2f}%"
    )
    return {
        "baseline_median_s": baseline_median,
        "traced_median_s": traced_median,
        "overhead_frac": overhead,
    }


def _seed_registry(registry: ScheduleRegistry) -> None:
    """Register donor schedules for a family of GEMM shapes."""
    target = cpu_target()
    rng = np.random.default_rng(3)
    for size in (96, 128, 160, 192, 224, 256, 320, 384):
        dag = gemm(size, size, size)
        sketch = generate_sketches(
            dag, target.sketch_spatial_levels, target.sketch_reduction_levels
        )[0]
        schedule = sample_initial_schedules(sketch, 1, rng, target.unroll_depths)[0]
        registry.record(
            RegistryEntry(
                fingerprint=structural_fingerprint(dag),
                target=target.name,
                workload=dag.name,
                latency=1e-3,
                throughput=dag.flops / 1e-3,
                trials=16,
                scheduler="harl",
                schedule=schedule_to_dict(schedule),
                embedding=tuple(workload_embedding(dag).tolist()),
                source="perf-harness",
            )
        )


def bench_registry_warm_start(repeats: int, lookups: int) -> Dict[str, object]:
    target = cpu_target()
    registry = ScheduleRegistry()
    _seed_registry(registry)
    queries = [gemm(112 + 16 * i, 112 + 16 * i, 112 + 16 * i) for i in range(4)]

    def run():
        out = 0
        for _ in range(lookups // len(queries)):
            for dag in queries:
                out += len(
                    registry.warm_start_transfers(dag, target, max_candidates=4)
                )
        return out

    fast = _time(run, repeats, warmup=2)
    with legacy_hot_path():
        legacy = _time(run, repeats)
    return _stage("registry_warm_start", fast, lookups, "lookups/s", legacy)


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #
def run_harness(repeats: int, batch: int, n_trials: int) -> Dict[str, object]:
    clear_caches()
    reset_cache_stats()
    print(f"hot-path micro-benchmarks (repeats={repeats}, batch={batch})")
    stages = {
        "feature_extraction": bench_feature_extraction(repeats, batch),
        "batched_prediction": bench_batched_prediction(repeats, batch),
        "sampler": bench_sampler(repeats, batch),
        "simulator_batch": bench_simulator(repeats, batch),
        "tuning_round": bench_tuning_round(max(2, repeats // 2), n_trials),
        "registry_warm_start": bench_registry_warm_start(repeats, 128),
    }
    # Outside "stages": the stage loop in compare.py (and old baselines)
    # only knows throughput entries; the overhead check reads this key.
    obs_overhead = bench_obs_overhead(max(2, repeats // 2), n_trials)
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "hot-path-microbench",
        "stages": stages,
        "obs_overhead": obs_overhead,
        "obs": obs.snapshot(),
        "cache_stats": cache_stats(),
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "repeats": repeats,
            "batch": batch,
            "tuning_trials": n_trials,
        },
    }


def check_speedups(payload: Dict[str, object]) -> List[str]:
    """Violations of the tentpole speedup floors (empty list when green)."""
    failures = []
    for stage, floor in SPEEDUP_FLOORS.items():
        speedup = payload["stages"][stage]["speedup"]
        if speedup is None or speedup < floor:
            got = "missing" if speedup is None else f"{speedup:.2f}x"
            failures.append(f"{stage}: speedup {got} below required {floor:.1f}x")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_perf.json"),
        help="where to write the benchmark JSON (default: repo-root BENCH_perf.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed repetitions per stage"
    )
    parser.add_argument(
        "--batch", type=int, default=384, help="schedule batch size for array stages"
    )
    parser.add_argument(
        "--trials", type=int, default=32, help="measurement trials per tuning run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the tentpole speedup floors hold "
        "(feature extraction >= 3x, tuning round >= 1.5x)",
    )
    parser.add_argument(
        "--metrics-output",
        default=str(REPO_ROOT / "BENCH_metrics.json"),
        help="where to write the repro.obs metrics snapshot "
        "(default: repo-root BENCH_metrics.json)",
    )
    args = parser.parse_args(argv)

    payload = run_harness(args.repeats, args.batch, args.trials)
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")
    metrics_out = obs.write_snapshot(args.metrics_output)
    print(f"wrote {metrics_out}")

    if args.check:
        failures = check_speedups(payload)
        if failures:
            for failure in failures:
                print(f"SPEEDUP FLOOR VIOLATED: {failure}", file=sys.stderr)
            return 1
        print("speedup floors hold: " + ", ".join(
            f"{stage} >= {floor:.1f}x" for stage, floor in SPEEDUP_FLOORS.items()
        ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
