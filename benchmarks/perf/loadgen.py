#!/usr/bin/env python
"""Closed-loop load-generation benchmark (``make serve-load``).

Boots a :class:`~repro.serving.server.ServingServer` over a fresh
:class:`~repro.serving.service.TuningService` (tiny HARL config, in-memory
registry), replays Zipf-popularity multi-tenant traffic against it with
:func:`repro.serving.loadgen.run_load`, and writes the ``repro-loadgen/1``
report — client-observed p50/p95/p99 response latency, outcome census,
registry hit rate and shed rate — to ``BENCH_load.json`` (uploaded as a CI
artifact).

``--check`` enforces the machine-independent serving invariants instead of
absolute latencies (which would flake across runners):

* every request is answered — no silent drops, no unbounded hangs
  (``unanswered == 0`` and ``answered == requests``),
* a saturated server degrades instead of tuning: every degraded answer
  consumed zero fresh trials,
* the Zipf head makes the registry pay off: the hit rate over answered
  requests clears a conservative floor,
* the percentile fields the dashboards consume are present and ordered
  (p50 <= p95 <= p99).

Usage::

    python benchmarks/perf/loadgen.py --output BENCH_load.json --check
    python benchmarks/perf/loadgen.py --clients 8 --requests 50 --saturate
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import HARLConfig
from repro.serving.loadgen import (
    DEFAULT_UNIVERSE,
    HIT_RATE_FLOOR,
    LoadGenConfig,
    check_report,
    run_load,
)
from repro.serving.netclient import TuningClient
from repro.serving.registry import ScheduleRegistry
from repro.serving.server import ServerConfig, ServingServer
from repro.serving.service import TuningService


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_load.json", metavar="FILE")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client (closed loop)")
    parser.add_argument("--trials", type=int, default=4,
                        help="measurement trials per cold tune request")
    parser.add_argument("--zipf", type=float, default=1.1, metavar="S",
                        help="Zipf popularity skew over the workload universe")
    parser.add_argument("--burst", type=int, default=4,
                        help="back-to-back requests per burst")
    parser.add_argument("--pause", type=float, default=0.02,
                        help="seconds between bursts")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2,
                        help="server worker threads")
    parser.add_argument("--max-inflight", type=int, default=2,
                        help="server admission slots")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="HARLConfig.scaled factor for the backing service")
    parser.add_argument("--saturate", action="store_true",
                        help="shrink admission to 1 slot so shedding is "
                             "exercised even on fast machines")
    parser.add_argument("--warmup", type=int, default=3, metavar="N",
                        help="prime the N most popular workloads before the "
                             "measured run (steady-state serving; makes the "
                             "hit-rate floor machine-independent). 0 = cold")
    parser.add_argument("--check", action="store_true",
                        help="enforce the serving invariants (exit 1 on failure)")
    return parser.parse_args(argv)


def check(report: dict) -> List[str]:
    """Machine-independent invariant failures (empty = pass)."""
    return check_report(report, hit_rate_floor=HIT_RATE_FLOOR)


def main(argv=None) -> int:
    args = parse_args(argv)
    service = TuningService(
        registry=ScheduleRegistry(),
        config=HARLConfig.scaled(args.scale),
        seed=args.seed,
    )
    server_config = ServerConfig(
        workers=args.workers,
        max_inflight=1 if args.saturate else args.max_inflight,
    )
    load_config = LoadGenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        trials=args.trials,
        zipf_s=args.zipf,
        burst=args.burst,
        pause=args.pause,
        seed=args.seed,
    )
    with ServingServer(service, server_config) as server:
        if args.warmup > 0:
            # Steady-state serving: tune the Zipf head once so the measured
            # run exercises the registry fast path under load rather than
            # racing cold tuning against traffic (machine-speed dependent).
            with TuningClient(server.host, server.port) as warm:
                for op, batch in DEFAULT_UNIVERSE[: args.warmup]:
                    warm.tune(op, batch=batch, trials=args.trials)
        report = run_load(server.host, server.port, load_config)
    report["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "server": {
            "workers": server_config.workers,
            "max_inflight": server_config.max_inflight,
        },
    }

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    lat = report["latency_ms"]
    print(f"loadgen: {report['answered']}/{report['requests']} answered in "
          f"{report['wall_seconds']:.2f}s ({report['throughput_rps']:.1f} req/s)")
    print(f"  latency p50={lat['p50']:.2f}ms p95={lat['p95']:.2f}ms "
          f"p99={lat['p99']:.2f}ms max={lat['max']:.2f}ms")
    print(f"  hit rate {report['hit_rate']:.2f}, shed rate "
          f"{report['shed_rate']:.2f}, outcomes {report['outcomes']}")
    print(f"report written to {out}")

    if args.check:
        failures = check(report)
        if failures:
            print("\nserve-load invariant failures:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("serve-load invariants: all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
