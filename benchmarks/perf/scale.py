#!/usr/bin/env python
"""Million-entry registry scale benchmark (``make perf-scale``).

Synthesises a v1-format (no manifest, no sidecars) registry directory with
``--entries`` entries spread over ``--shards`` shard files and ``--targets``
hardware targets, then times the two costs the shard-format v2 redesign
attacks:

* **startup-to-first-hit** — construct a :class:`ScheduleRegistry` over the
  directory and answer one exact ``lookup(..., k=0)``.  The v1 layout forces
  a full parse of every shard; the v2 layout (produced in place by
  ``compact()``) reads the manifest plus one index sidecar.
* **batched nearest-neighbour scoring** — steady-state ``lookup(dag, target,
  k=8)`` over the per-target embedding matrix, vectorised vs. the per-entry
  reference loop under :func:`repro.caching.legacy_hot_path`.

Both reported speedups are machine-independent (both sides of each ratio are
timed in the same process on the same data), so ``--check`` enforces the
fixed floors below and CI needs no per-machine baseline for this file.

Usage::

    python benchmarks/perf/scale.py --output BENCH_scale.json --check
    python benchmarks/perf/scale.py --entries 50000   # quick local run
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.caching import legacy_hot_path
from repro.serving.fingerprint import EMBEDDING_SIZE, structural_fingerprint
from repro.serving.registry import ScheduleRegistry
from repro.tensor.workloads import gemm

SCHEMA_VERSION = 1

#: Machine-independent speedup floors (also enforced by ``compare.py --scale``).
SCALE_FLOORS = {"startup_to_first_hit": 10.0, "batched_nn": 5.0}

QUERY_TARGET = "sim-cpu"


# --------------------------------------------------------------------- #
# synthetic registry
# --------------------------------------------------------------------- #
def synthesise_v1(root: Path, entries: int, shards: int, targets: int, seed: int) -> str:
    """Write a v1-layout registry (plain JSONL shards, no manifest/sidecars).

    Returns the fingerprint of the entry used for the exact-lookup probes
    (chosen so it lives on ``{QUERY_TARGET}``).  Lines are written with the
    exact sharding function the registry uses, so reopening the directory
    with the same shard count finds every key on its home shard.
    """
    root.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(seed)
    # One embedding matrix drawn up front: per-row python RNG calls would
    # dominate synthesis time at 1M entries.
    emb = np.round(rng.uniform(0.0, 8.0, size=(entries, EMBEDDING_SIZE)), 3)
    target_names = [QUERY_TARGET] + [f"sim-dev{j}" for j in range(1, targets)]
    handles = [
        (root / f"shard-{i:02d}.jsonl").open("w", encoding="utf-8")
        for i in range(shards)
    ]
    probe = ""
    try:
        for i in range(entries):
            fingerprint = f"scale-{i:07d}"
            target = target_names[i % targets]
            if not probe and target == QUERY_TARGET:
                probe = fingerprint
            line = json.dumps(
                {
                    "fingerprint": fingerprint,
                    "target": target,
                    "workload": f"wl_{i % 997}",
                    "latency": round(1e-3 + (i % 1000) * 1e-6, 9),
                    "throughput": float(1000 - i % 1000),
                    "trials": 64,
                    "scheduler": "harl",
                    "schedule": None,
                    "embedding": emb[i].tolist(),
                    "source": "scale-bench",
                    "donor_target": "",
                }
            )
            handles[zlib.crc32(fingerprint.encode("utf-8")) % shards].write(line + "\n")
    finally:
        for fh in handles:
            fh.close()
    return probe


# --------------------------------------------------------------------- #
# timed stages
# --------------------------------------------------------------------- #
def time_startup_to_first_hit(
    root: Path, shards: int, probe: str
) -> tuple[float, int]:
    """Seconds from cold construct to one answered exact lookup."""
    start = time.perf_counter()
    registry = ScheduleRegistry(root, num_shards=shards)
    entry = registry.lookup(probe, QUERY_TARGET, k=0).entry
    elapsed = time.perf_counter() - start
    if entry is None:
        raise SystemExit(f"scale harness defect: probe {probe!r} not found")
    indexed = registry.indexed_shards
    registry.close()
    return elapsed, indexed


def time_nn(root: Path, shards: int, repeats: int, legacy_repeats: int) -> Dict:
    """Steady-state k=8 nearest-neighbour lookups, vectorised vs. legacy."""
    registry = ScheduleRegistry(root, num_shards=shards)
    dag = gemm(256, 256, 256)
    structural_fingerprint(dag)  # memoised: keep it out of the timed region
    registry.lookup(dag, QUERY_TARGET, k=8)  # warm: index + target matrix
    fast: List[float] = []
    for _ in range(repeats):
        began = time.perf_counter()
        result = registry.lookup(dag, QUERY_TARGET, k=8)
        fast.append(time.perf_counter() - began)
    slow: List[float] = []
    with legacy_hot_path():
        registry.lookup(dag, QUERY_TARGET, k=8)  # warm the reference path
        for _ in range(legacy_repeats):
            began = time.perf_counter()
            legacy = registry.lookup(dag, QUERY_TARGET, k=8)
            slow.append(time.perf_counter() - began)
    equal = [
        (round(d, 9), e.fingerprint) for d, e in result.neighbors
    ] == [(round(d, 9), e.fingerprint) for d, e in legacy.neighbors]
    registry.close()
    if not equal:
        raise SystemExit("scale harness defect: vectorised and legacy NN disagree")
    return {
        "vector_seconds": min(fast),
        "legacy_seconds": min(slow),
        "neighbors": len(result.neighbors),
    }


# --------------------------------------------------------------------- #
# main
# --------------------------------------------------------------------- #
def run(args) -> Dict:
    workdir = Path(tempfile.mkdtemp(prefix="repro-scale-"))
    root = workdir / "registry"
    try:
        print(f"synthesising v1 registry: {args.entries} entries, "
              f"{args.shards} shards, {args.targets} targets ...")
        began = time.perf_counter()
        probe = synthesise_v1(root, args.entries, args.shards, args.targets, args.seed)
        synth_seconds = time.perf_counter() - began
        print(f"  wrote {sum(f.stat().st_size for f in root.iterdir()) >> 20} MiB "
              f"in {synth_seconds:.1f}s")

        eager_seconds, eager_indexed = time_startup_to_first_hit(
            root, args.shards, probe
        )
        print(f"v1 eager startup-to-first-hit: {eager_seconds:.3f}s "
              f"({eager_indexed} shards parsed)")

        began = time.perf_counter()
        upgrading = ScheduleRegistry(root, num_shards=args.shards)
        removed = upgrading.compact()
        upgrading.close()
        compact_seconds = time.perf_counter() - began
        print(f"streaming compaction to v2: {compact_seconds:.3f}s "
              f"({removed} stale lines removed)")

        lazy_seconds, lazy_indexed = time_startup_to_first_hit(
            root, args.shards, probe
        )
        print(f"v2 indexed startup-to-first-hit: {lazy_seconds:.4f}s "
              f"({lazy_indexed} shard indexed)")
        if lazy_indexed > 1:
            raise SystemExit(
                f"scale harness defect: an exact v2 lookup indexed {lazy_indexed} shards"
            )

        nn = time_nn(root, args.shards, args.repeats, args.legacy_repeats)
        print(f"nearest(k=8) steady-state: vectorised {nn['vector_seconds']*1e3:.2f}ms, "
              f"legacy {nn['legacy_seconds']*1e3:.1f}ms")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    startup_speedup = eager_seconds / max(lazy_seconds, 1e-9)
    nn_speedup = nn["legacy_seconds"] / max(nn["vector_seconds"], 1e-9)
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "entries": args.entries,
            "shards": args.shards,
            "targets": args.targets,
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "stages": {
            "synthesise": {"seconds": synth_seconds},
            "v1_eager_first_hit": {"seconds": eager_seconds},
            "compact_to_v2": {"seconds": compact_seconds, "removed": removed},
            "v2_indexed_first_hit": {
                "seconds": lazy_seconds,
                "indexed_shards": lazy_indexed,
            },
            "nearest_vectorised": {"seconds": nn["vector_seconds"]},
            "nearest_legacy": {"seconds": nn["legacy_seconds"]},
        },
        "speedups": {
            "startup_to_first_hit": round(startup_speedup, 2),
            "batched_nn": round(nn_speedup, 2),
        },
        "floors": dict(SCALE_FLOORS),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entries", type=int, default=1_000_000)
    parser.add_argument("--shards", type=int, default=32)
    parser.add_argument("--targets", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="vectorised NN timing repeats (min is reported)")
    parser.add_argument("--legacy-repeats", type=int, default=3,
                        help="legacy NN timing repeats (min is reported)")
    parser.add_argument("--output", type=Path, default=Path("BENCH_scale.json"))
    parser.add_argument("--check", action="store_true",
                        help="fail unless both speedup floors hold")
    args = parser.parse_args(argv)

    report = run(args)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nspeedups: startup_to_first_hit {report['speedups']['startup_to_first_hit']}x, "
          f"batched_nn {report['speedups']['batched_nn']}x")
    print(f"report written to {args.output}")

    if args.check:
        failures = [
            f"{name}: {report['speedups'][name]}x < required {floor}x"
            for name, floor in SCALE_FLOORS.items()
            if report["speedups"][name] < floor
        ]
        if failures:
            for failure in failures:
                print(f"SCALE FLOOR FAILED: {failure}", file=sys.stderr)
            return 1
        print("scale floors passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
