#!/usr/bin/env python
"""Compare a fresh ``BENCH_perf.json`` against the checked-in perf baseline.

Used by the CI ``perf`` job: after ``make perf`` emits ``BENCH_perf.json``,
this script fails (exit 1) when any stage's throughput regressed by more than
``--max-regression`` (default 25%) relative to
``benchmarks/perf/baseline.json``, or when a baseline stage disappeared.

The machine-independent speedup floors (vectorised vs. in-process legacy
path) are enforced separately by ``run.py --check``; this gate covers
absolute throughput drift.  It also enforces the observability-layer
contract: the harness's ``obs_overhead`` measurement (tuning stage traced
vs. untraced, both timed on this machine in this run) must stay within
``--max-obs-overhead`` (default 2%).  To refresh the baseline after an
intentional change, run ``make perf`` and copy the new ``BENCH_perf.json``
over ``benchmarks/perf/baseline.json`` (see ``docs/architecture.md``,
"Performance & benchmarking").
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"missing benchmark file: {path}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"malformed benchmark file {path}: {exc}") from exc


def compare(current: dict, baseline: dict, max_regression: float) -> List[str]:
    """Human-readable failure list (empty when the gate passes)."""
    failures: List[str] = []
    if current.get("schema_version") != baseline.get("schema_version"):
        failures.append(
            f"schema_version mismatch: current {current.get('schema_version')} "
            f"vs baseline {baseline.get('schema_version')} — refresh the baseline"
        )
        return failures

    floor = 1.0 - max_regression
    for name, base_stage in baseline.get("stages", {}).items():
        stage = current.get("stages", {}).get(name)
        if stage is None:
            failures.append(f"stage {name!r} missing from current run")
            continue
        base_value = base_stage.get("throughput")
        value = stage.get("throughput")
        if base_value is None:
            continue
        if value is None:
            failures.append(f"{name}: throughput missing from current run")
        elif value < base_value * floor:
            failures.append(
                f"{name}: throughput regressed {1 - value / base_value:.1%} "
                f"({value:.1f} vs baseline {base_value:.1f}, "
                f"allowed {max_regression:.0%})"
            )
    return failures


def check_obs_overhead(current: dict, max_overhead: float) -> List[str]:
    """Failures of the instrumentation-overhead contract (empty when green).

    ``obs_overhead`` is machine-independent (both sides of the ratio are
    timed in the same run), so it is checked against a fixed ceiling rather
    than against the baseline file.  Missing data fails: a harness that
    stopped measuring the overhead must not silently pass the gate.
    """
    overhead = current.get("obs_overhead", {}).get("overhead_frac")
    if overhead is None:
        return ["obs_overhead missing from current run — harness regressed"]
    if overhead > max_overhead:
        return [
            f"instrumentation overhead {overhead:.2%} exceeds the "
            f"{max_overhead:.0%} ceiling on the tuning stage"
        ]
    return []


def print_table(current: dict, baseline: dict) -> None:
    print(f"{'stage':<22} {'current':>14} {'baseline':>14} {'ratio':>8}  unit")
    for name, base_stage in baseline.get("stages", {}).items():
        stage = current.get("stages", {}).get(name, {})
        value = stage.get("throughput")
        base_value = base_stage.get("throughput")
        if value is None or not base_value:
            continue
        print(
            f"{name:<22} {value:>14.1f} {base_value:>14.1f} "
            f"{value / base_value:>7.2f}x  {base_stage.get('unit', '')}"
        )


#: Machine-independent speedup floors for ``BENCH_scale.json`` (``--scale``).
#: Kept in sync with ``benchmarks/perf/scale.py``; both sides of each ratio
#: are timed in one run, so no per-machine baseline applies.
SCALE_FLOORS = {"startup_to_first_hit": 10.0, "batched_nn": 5.0}


def check_scale(report: dict) -> List[str]:
    """Failures of the registry-scale speedup floors (empty when green)."""
    failures: List[str] = []
    speedups = report.get("speedups", {})
    for name, floor in SCALE_FLOORS.items():
        value = speedups.get(name)
        if value is None:
            failures.append(f"scale speedup {name!r} missing from report")
        elif value < floor:
            failures.append(f"{name}: {value}x below the {floor}x floor")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="fresh BENCH_perf.json")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=Path(__file__).with_name("baseline.json"),
        help="checked-in baseline (default: benchmarks/perf/baseline.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional throughput loss per stage (default 0.25)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.02,
        help="allowed fractional slowdown of the tuning stage with "
        "instrumentation armed (default 0.02)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="treat the positional file as a BENCH_scale.json report and "
        "enforce the registry-scale speedup floors instead of the "
        "throughput baseline",
    )
    args = parser.parse_args(argv)

    if args.scale:
        report = load(args.current)
        for name, floor in SCALE_FLOORS.items():
            value = report.get("speedups", {}).get(name)
            shown = f"{value}x" if value is not None else "missing"
            print(f"{name:<22} {shown:>10}  (floor {floor}x)")
        failures = check_scale(report)
        if failures:
            for failure in failures:
                print(f"SCALE FLOOR FAILED: {failure}", file=sys.stderr)
            return 1
        print("\nscale gate passed")
        return 0

    current = load(args.current)
    baseline = load(args.baseline)
    print_table(current, baseline)
    overhead = current.get("obs_overhead", {}).get("overhead_frac")
    if overhead is not None:
        print(f"\ninstrumentation overhead: {overhead:+.2%} "
              f"(ceiling {args.max_obs_overhead:.0%})")
    failures = compare(current, baseline, args.max_regression)
    failures += check_obs_overhead(current, args.max_obs_overhead)
    if failures:
        print()
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed (threshold {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
