"""Figure 9 — normalized end-to-end search time of Ansor vs. HARL.

Reuses the network tuning runs of the Figure 8 bench through the shared
result cache and reports the trials each scheduler needed to reach Ansor's
final end-to-end latency.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.cache import cached_network_comparison
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials

FULL = os.environ.get("REPRO_FULL", "") == "1"

_NETWORKS = [("bert", 12000, 240)]
if FULL:
    _NETWORKS += [("resnet50", 22000, 700), ("mobilenet_v2", 16000, 1200)]
_TARGETS = ("cpu", "gpu")
_BATCHES = (1, 16) if FULL else (1,)


def _cases():
    return [
        (network, target, batch, paper, laptop)
        for network, paper, laptop in _NETWORKS
        for target in _TARGETS
        for batch in _BATCHES
    ]


@pytest.mark.parametrize("network,target,batch,paper_trials,laptop_trials", _cases())
def test_fig9_network_search_time(
    benchmark, print_report, network, target, batch, paper_trials, laptop_trials
):
    n_trials = default_trials(paper_trials, laptop_trials)

    def run():
        return cached_network_comparison(
            network, batch=batch, n_trials=n_trials, target_name=target
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    times = comparison.normalized_search_time(baseline="ansor")
    label = f"{network}{'(G)' if target == 'gpu' else ''} batch={batch}"
    rows = [[label, times["ansor"], times["harl"]]]
    print_report(
        "Figure 9: normalized end-to-end search time "
        "(paper: HARL reduces search time by up to 51-55%)",
        format_table(["network", "Ansor", "HARL"], rows),
    )

    # Shape check: HARL does not need more search cost than the slower scheduler.
    assert times["harl"] <= 1.0
