"""Figure 10 — subgraph trial allocations with and without the subgraph MAB.

For the heavy BERT subgraphs (the four GEMMs and the softmax) the bench
reports how many measurement trials each variant allocated, split into the
portion spent before reaching Ansor's best end-to-end latency ("= Ansor") and
the portion spent afterwards ("> Ansor").
"""

from __future__ import annotations


from repro.experiments.cache import cached_network_comparison
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials

FOCUS_SUBGRAPHS = ("GEMM-I", "GEMM-II", "GEMM-III", "GEMM-IV", "Softmax")


def test_fig10_subgraph_allocations(benchmark, print_report):
    n_trials = default_trials(12000, 240)

    def run():
        return cached_network_comparison(
            "bert",
            batch=1,
            n_trials=n_trials,
            schedulers=("ansor", "harl", "harl-no-subgraph-mab"),
            seed=0,
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    ansor_best = comparison.results["ansor"].best_latency

    rows = []
    totals = {}
    for variant in ("harl", "harl-no-subgraph-mab"):
        result = comparison.results[variant]
        reach = result.trials_to_reach(ansor_best)
        reach = reach if reach is not None else result.trials_used
        split = reach / max(result.trials_used, 1)
        totals[variant] = result
        for name in FOCUS_SUBGRAPHS:
            allocated = result.allocations.get(name, 0)
            rows.append(
                [
                    name,
                    variant,
                    allocated,
                    int(round(allocated * split)),      # '= Ansor' portion (approx.)
                    allocated - int(round(allocated * split)),  # '> Ansor' portion
                ]
            )

    print_report(
        "Figure 10: BERT subgraph trial allocations "
        "(paper: the subgraph MAB shifts trials away from over-allocated GEMMs "
        "toward subgraphs such as Softmax)",
        format_table(
            ["subgraph", "variant", "total trials", "'= Ansor' portion", "'> Ansor' portion"],
            rows,
        ),
    )

    harl = totals["harl"]
    greedy = totals["harl-no-subgraph-mab"]
    softmax_share_mab = harl.allocations.get("Softmax", 0) / max(harl.trials_used, 1)
    softmax_share_greedy = greedy.allocations.get("Softmax", 0) / max(greedy.trials_used, 1)
    # Shape check: with the MAB, the softmax subgraph is not starved relative to
    # the greedy allocator.
    assert softmax_share_mab >= softmax_share_greedy * 0.8
