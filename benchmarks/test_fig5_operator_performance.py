"""Figure 5 — normalized performance of Ansor vs. HARL on tensor operators.

One comparison per operator class of Table 6 (GEMM-S/M/L, C1D, C2D, C3D, T2D)
at batch sizes 1 and 16, reported as performance normalised to the best
scheduler per operator (the paper's Fig. 5 bar groups).
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import cached_operator_comparison
from repro.experiments.operator_suite import OPERATOR_CLASSES
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_trials

BATCHES = (1, 16)


@pytest.mark.parametrize("batch", BATCHES)
def test_fig5_operator_performance(benchmark, print_report, batch):
    n_trials = default_trials(1000, 100)

    def run():
        rows = []
        for op_class in OPERATOR_CLASSES:
            comparison = cached_operator_comparison(op_class, batch=batch, n_trials=n_trials)
            perf = comparison.normalized_performance()
            harl_latency = comparison.results["harl"].best_latency
            ansor_latency = comparison.results["ansor"].best_latency
            rows.append(
                [
                    op_class,
                    perf["ansor"],
                    perf["harl"],
                    ansor_latency / harl_latency,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        f"Figure 5: normalized operator performance, batch={batch} "
        f"(paper: HARL outperforms Ansor by 6-22%)",
        format_table(["operator", "Ansor", "HARL", "HARL speedup over Ansor"], rows),
    )

    # Shape check: HARL wins (or ties within noise) on the majority of operators.
    harl_wins = sum(1 for _op, _a, h, _s in rows if h >= 0.99)
    assert harl_wins >= len(rows) // 2
