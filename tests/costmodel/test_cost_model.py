"""Unit tests for the online schedule cost model."""

import numpy as np
import pytest

from repro.costmodel.model import RandomCostModel, ScheduleCostModel
from repro.hardware.simulator import LatencySimulator
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm


@pytest.fixture
def big_sketch():
    return generate_sketches(gemm(512, 512, 512))[0]


def _measured(sketch, cpu, rng, count):
    schedules = sample_initial_schedules(sketch, count, rng)
    sim = LatencySimulator(cpu)
    throughputs = [sim.throughput(s) for s in schedules]
    return schedules, throughputs


class TestColdStart:
    def test_untrained_predictions_are_weak_priors(self, big_sketch, rng, cpu):
        model = ScheduleCostModel(min_samples=16, seed=0)
        schedules, _ = _measured(big_sketch, cpu, rng, 4)
        scores = model.predict(schedules)
        assert scores.shape == (4,)
        assert np.all((scores >= 0.0) & (scores <= 0.05))
        assert not model.is_trained(schedules[0].dag.name)

    def test_empty_prediction(self):
        model = ScheduleCostModel()
        assert model.predict([]).shape == (0,)


class TestOnlineTraining:
    def test_becomes_trained_after_enough_samples(self, big_sketch, rng, cpu):
        model = ScheduleCostModel(min_samples=16, retrain_interval=8, seed=0)
        schedules, throughputs = _measured(big_sketch, cpu, rng, 32)
        model.update(schedules, throughputs)
        assert model.is_trained(schedules[0].dag.name)
        assert model.num_samples(schedules[0].dag.name) == 32

    def test_predictions_correlate_with_true_throughput(self, big_sketch, rng, cpu):
        model = ScheduleCostModel(min_samples=16, retrain_interval=8, seed=0)
        train_s, train_t = _measured(big_sketch, cpu, rng, 96)
        model.update(train_s, train_t)
        test_s, test_t = _measured(big_sketch, cpu, rng, 48)
        scores = model.predict(test_s)
        corr = np.corrcoef(scores, np.asarray(test_t))[0, 1]
        assert corr > 0.4

    def test_best_score_near_one(self, big_sketch, rng, cpu):
        model = ScheduleCostModel(min_samples=16, retrain_interval=8, seed=0)
        schedules, throughputs = _measured(big_sketch, cpu, rng, 64)
        model.update(schedules, throughputs)
        best_idx = int(np.argmax(throughputs))
        score = model.predict([schedules[best_idx]])[0]
        assert score > 0.5

    def test_invalid_throughputs_ignored(self, big_sketch, rng, cpu):
        model = ScheduleCostModel(min_samples=4, seed=0)
        schedules, throughputs = _measured(big_sketch, cpu, rng, 4)
        model.update(schedules, [float("nan"), -1.0, 0.0, throughputs[3]])
        assert model.num_samples(schedules[0].dag.name) == 1

    def test_mismatched_lengths_rejected(self, big_sketch, rng, cpu):
        model = ScheduleCostModel()
        schedules, throughputs = _measured(big_sketch, cpu, rng, 4)
        with pytest.raises(ValueError):
            model.update(schedules, throughputs[:-1])

    def test_predict_throughput_denormalises(self, big_sketch, rng, cpu):
        model = ScheduleCostModel(min_samples=16, retrain_interval=8, seed=0)
        schedules, throughputs = _measured(big_sketch, cpu, rng, 48)
        model.update(schedules, throughputs)
        pred = model.predict_throughput(schedules[:8])
        assert np.all(pred >= 0)
        assert np.max(pred) <= 2.0 * max(throughputs)

    def test_per_workload_isolation(self, rng, cpu):
        model = ScheduleCostModel(min_samples=8, retrain_interval=4, seed=0)
        sk_a = generate_sketches(gemm(128, 128, 128))[0]
        sk_b = generate_sketches(gemm(256, 128, 128))[0]
        s_a, t_a = _measured(sk_a, cpu, rng, 16)
        model.update(s_a, t_a)
        assert model.is_trained(s_a[0].dag.name)
        assert not model.is_trained(sk_b.dag.name)


class TestRandomCostModel:
    def test_uniform_scores(self, big_sketch, rng):
        model = RandomCostModel(seed=0)
        schedules = sample_initial_schedules(big_sketch, 10, rng)
        scores = model.predict(schedules)
        assert scores.shape == (10,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_update_is_noop(self, big_sketch, rng):
        model = RandomCostModel(seed=0)
        schedules = sample_initial_schedules(big_sketch, 3, rng)
        model.update(schedules, [1.0, 2.0, 3.0])
        assert not model.is_trained(schedules[0].dag.name)
        assert model.num_samples(schedules[0].dag.name) == 0
