"""Unit tests for the regression tree weak learner."""

import numpy as np
import pytest

from repro.costmodel.tree import RegressionTree


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFitPredict:
    def test_constant_target(self, rng):
        X = rng.random((20, 3))
        y = np.full(20, 7.0)
        pred = RegressionTree(max_depth=3).fit(X, y).predict(X)
        assert np.allclose(pred, 7.0)

    def test_single_split_step_function(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        pred = RegressionTree(max_depth=1, min_samples_leaf=1).fit(X, y).predict(X)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_deep_tree_fits_piecewise_target(self, rng):
        X = rng.random((200, 2))
        y = np.where(X[:, 0] > 0.5, 3.0, -1.0) + np.where(X[:, 1] > 0.3, 0.5, 0.0)
        pred = RegressionTree(max_depth=6, min_samples_leaf=2).fit(X, y).predict(X)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_prediction_within_target_range(self, rng):
        X = rng.random((100, 4))
        y = rng.normal(size=100)
        pred = RegressionTree(max_depth=4).fit(X, y).predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    def test_min_samples_leaf_respected(self, rng):
        X = rng.random((10, 1))
        y = rng.random(10)
        tree = RegressionTree(max_depth=10, min_samples_leaf=5).fit(X, y)
        # With a leaf minimum of 5 and 10 samples, at most one split can happen,
        # so there are at most 2 distinct predictions.
        assert len(np.unique(np.round(tree.predict(X), 12))) <= 2

    def test_duplicate_feature_values_handled(self):
        X = np.zeros((30, 2))
        y = np.arange(30, dtype=float)
        pred = RegressionTree(max_depth=3).fit(X, y).predict(X)
        assert np.allclose(pred, np.mean(y))

    def test_max_features_subsampling(self, rng):
        X = rng.random((50, 8))
        y = X[:, 0] * 2.0
        tree = RegressionTree(max_depth=4, max_features=2, rng=rng)
        pred = tree.fit(X, y).predict(X)
        assert np.all(np.isfinite(pred))


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 3)), np.zeros(0))

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            RegressionTree().fit(rng.random((5, 2)), rng.random(4))

    def test_one_dimensional_x_rejected(self, rng):
        with pytest.raises(ValueError):
            RegressionTree().fit(rng.random(5), rng.random(5))

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
