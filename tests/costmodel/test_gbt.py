"""Unit tests for the gradient-boosted trees model."""

import numpy as np
import pytest

from repro.costmodel.gbt import GradientBoostedTrees


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _friedman_like(rng, n=300):
    X = rng.random((n, 5))
    y = 2 * X[:, 0] + np.sin(4 * X[:, 1]) + 0.5 * X[:, 2] * X[:, 3]
    return X, y


class TestFitPredict:
    def test_reduces_error_versus_mean_predictor(self, rng):
        X, y = _friedman_like(rng)
        model = GradientBoostedTrees(n_estimators=40, max_depth=4, seed=1).fit(X, y)
        mse_model = np.mean((model.predict(X) - y) ** 2)
        mse_mean = np.mean((np.mean(y) - y) ** 2)
        assert mse_model < 0.2 * mse_mean

    def test_generalises_to_held_out_data(self, rng):
        X, y = _friedman_like(rng, n=400)
        X_train, y_train = X[:300], y[:300]
        X_test, y_test = X[300:], y[300:]
        model = GradientBoostedTrees(n_estimators=60, max_depth=4, seed=1).fit(X_train, y_train)
        mse = np.mean((model.predict(X_test) - y_test) ** 2)
        assert mse < 0.5 * np.var(y_test)

    def test_more_trees_do_not_hurt_training_fit(self, rng):
        X, y = _friedman_like(rng)
        small = GradientBoostedTrees(n_estimators=5, early_stopping_rounds=None, seed=0).fit(X, y)
        large = GradientBoostedTrees(n_estimators=60, early_stopping_rounds=None, seed=0).fit(X, y)
        mse_small = np.mean((small.predict(X) - y) ** 2)
        mse_large = np.mean((large.predict(X) - y) ** 2)
        assert mse_large <= mse_small + 1e-9

    def test_ranking_quality_on_monotone_target(self, rng):
        X = rng.random((200, 3))
        y = 3 * X[:, 0]
        model = GradientBoostedTrees(n_estimators=30, seed=0).fit(X, y)
        pred = model.predict(X)
        corr = np.corrcoef(pred, y)[0, 1]
        assert corr > 0.9

    def test_early_stopping_limits_trees(self, rng):
        X = rng.random((50, 2))
        y = np.full(50, 3.0)  # constant: no improvement possible after round 1
        model = GradientBoostedTrees(n_estimators=50, early_stopping_rounds=3, seed=0).fit(X, y)
        assert model.n_trees <= 5

    def test_deterministic_given_seed(self, rng):
        X, y = _friedman_like(rng)
        a = GradientBoostedTrees(n_estimators=10, seed=3).fit(X, y).predict(X)
        b = GradientBoostedTrees(n_estimators=10, seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_single_sample_pair(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 2.0])
        model = GradientBoostedTrees(n_estimators=5, min_samples_leaf=1, subsample=1.0).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 2)))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros((0, 2)), np.zeros(0))

    def test_bad_subsample_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(colsample=1.5)

    def test_bad_n_estimators_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
