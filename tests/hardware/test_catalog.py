"""Unit tests for the hardware target catalog and target embeddings."""

import numpy as np
import pytest

from repro.hardware.catalog import (
    TARGET_EMBEDDING_SIZE,
    TargetCatalog,
    default_catalog,
    target_distance,
    target_embedding,
)
from repro.hardware.target import cpu_target, gpu_target


@pytest.fixture
def catalog():
    return default_catalog()


class TestDefaultCatalog:
    def test_ships_at_least_ten_presets(self, catalog):
        assert len(catalog) >= 10

    def test_includes_both_paper_platforms(self, catalog):
        assert "xeon-6226r" in catalog
        assert "rtx-3090" in catalog
        assert catalog.get("xeon-6226r") == cpu_target()
        assert catalog.get("rtx-3090") == gpu_target()

    def test_spans_cpu_and_gpu_families(self, catalog):
        cpus = catalog.by_kind("cpu")
        gpus = catalog.by_kind("gpu")
        assert len(cpus) >= 4 and len(gpus) >= 3
        # Server CPUs from 8 to 64 cores plus a narrow-SIMD edge device.
        cores = {t.num_cores for t in cpus}
        assert min(cores) <= 8 and max(cores) >= 64
        assert any(t.vector_width <= 4 for t in cpus)

    def test_every_preset_is_validated(self, catalog):
        for target in catalog:
            assert target.peak_flops > 0
            assert target.l1_bytes <= target.l3_bytes * 64  # sane hierarchy scale
            assert target.parallel_overhead >= 0

    def test_iteration_is_sorted_by_name(self, catalog):
        names = [t.name for t in catalog]
        assert names == sorted(names) == catalog.names()

    def test_default_catalog_is_shared(self):
        assert default_catalog() is default_catalog()

    def test_unknown_name_lists_known_targets(self, catalog):
        with pytest.raises(KeyError, match="xeon-6226r"):
            catalog.get("tpu-v9000")
        assert catalog.get_optional("tpu-v9000") is None


class TestRegistration:
    def test_duplicate_names_rejected(self):
        cat = TargetCatalog([cpu_target()])
        with pytest.raises(ValueError, match="already registered"):
            cat.register(cpu_target())
        cat.register(cpu_target(), replace_existing=True)
        assert len(cat) == 1

    def test_non_target_rejected(self):
        with pytest.raises(TypeError):
            TargetCatalog().register("xeon-6226r")

    def test_malformed_preset_fails_loudly(self):
        from dataclasses import replace

        with pytest.raises(ValueError, match="dram_bandwidth"):
            TargetCatalog([replace(cpu_target(), dram_bandwidth=0.0)])


class TestDerive:
    def test_derive_registers_a_validated_variant(self):
        cat = TargetCatalog([cpu_target()])
        variant = cat.derive("xeon-6226r", name="xeon-6226r-8c", num_cores=8)
        assert "xeon-6226r-8c" in cat
        assert variant.num_cores == 8
        # Non-overridden fields are inherited.
        assert variant.vector_width == cpu_target().vector_width

    def test_derive_without_register(self):
        cat = TargetCatalog([cpu_target()])
        cat.derive("xeon-6226r", name="scratch", register=False, num_cores=2)
        assert "scratch" not in cat

    def test_invalid_derivation_raises(self):
        cat = TargetCatalog([cpu_target()])
        with pytest.raises(ValueError):
            cat.derive("xeon-6226r", name="broken", num_cores=0)
        assert "broken" not in cat

    def test_derive_from_unknown_base_raises(self):
        with pytest.raises(KeyError):
            TargetCatalog().derive("nope", name="x")


class TestEmbeddings:
    def test_embedding_shape_and_determinism(self):
        emb = target_embedding(cpu_target())
        assert emb.shape == (TARGET_EMBEDDING_SIZE,)
        assert np.array_equal(emb, target_embedding(cpu_target()))

    def test_self_distance_is_zero(self):
        assert target_distance(cpu_target(), cpu_target()) == 0.0

    def test_kind_gap_dominates(self, catalog):
        """Any same-kind pair is closer than any cross-kind pair."""
        cpus, gpus = catalog.by_kind("cpu"), catalog.by_kind("gpu")
        max_same = max(
            max(target_distance(a, b) for a in cpus for b in cpus),
            max(target_distance(a, b) for a in gpus for b in gpus),
        )
        min_cross = min(target_distance(c, g) for c in cpus for g in gpus)
        assert max_same < min_cross

    def test_derived_variant_is_nearest_to_its_base(self, catalog):
        base = catalog.get("epyc-7763")
        variant = catalog.derive("epyc-7763", name="epyc-7763-48c",
                                 register=False, num_cores=48)
        distances = sorted(
            (target_distance(variant, t), t.name) for t in catalog
        )
        assert distances[0][1] == base.name

    def test_nearest_excludes_self_and_respects_kind_filter(self, catalog):
        xeon = catalog.get("xeon-6226r")
        neighbors = catalog.nearest(xeon, k=100)
        assert all(t.name != "xeon-6226r" for _d, t in neighbors)
        same_kind = catalog.nearest(xeon, k=100, same_kind_only=True)
        assert all(t.kind == "cpu" for _d, t in same_kind)


class TestDescribe:
    def test_describe_contains_datasheet_and_embedding(self, catalog):
        d = catalog.describe("rtx-3090")
        assert d["kind"] == "gpu"
        assert d["num_cores"] == 82
        assert d["peak_tflops"] == pytest.approx(82 * 434.0e9 / 1e12)
        assert len(d["embedding"]) == TARGET_EMBEDDING_SIZE
