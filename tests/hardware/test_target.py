"""Unit tests for hardware target presets."""

import pytest

from repro.hardware.target import HardwareTarget, cpu_target, gpu_target
from repro.tensor.schedule import CPU_UNROLL_DEPTHS, GPU_UNROLL_DEPTHS


class TestPresets:
    def test_cpu_preset_matches_paper_platform(self):
        cpu = cpu_target()
        assert cpu.kind == "cpu"
        assert cpu.num_cores == 32            # Xeon 6226R core count
        assert cpu.vector_width == 16         # AVX-512 fp32 lanes

    def test_gpu_preset(self):
        gpu = gpu_target()
        assert gpu.kind == "gpu"
        assert gpu.num_cores == 82            # RTX 3090 SM count
        assert gpu.dram_bandwidth > cpu_target().dram_bandwidth

    def test_peak_flops_aggregates_cores(self):
        cpu = cpu_target()
        assert cpu.peak_flops == pytest.approx(cpu.num_cores * cpu.peak_flops_per_core)

    def test_unroll_depth_lists(self):
        assert cpu_target().unroll_depths == CPU_UNROLL_DEPTHS
        assert gpu_target().unroll_depths == GPU_UNROLL_DEPTHS

    def test_sketch_levels(self):
        assert cpu_target().sketch_spatial_levels == 4
        assert cpu_target().sketch_reduction_levels == 2
        assert gpu_target().sketch_spatial_levels == 5
        assert gpu_target().sketch_reduction_levels == 3


class TestValidation:
    def _base_kwargs(self):
        cpu = cpu_target()
        return dict(
            name="x",
            kind="cpu",
            num_cores=cpu.num_cores,
            peak_flops_per_core=cpu.peak_flops_per_core,
            vector_width=cpu.vector_width,
            l1_bytes=cpu.l1_bytes,
            l2_bytes=cpu.l2_bytes,
            l3_bytes=cpu.l3_bytes,
            dram_bandwidth=cpu.dram_bandwidth,
            parallel_overhead=cpu.parallel_overhead,
            kernel_overhead=cpu.kernel_overhead,
        )

    def test_rejects_unknown_kind(self):
        kwargs = self._base_kwargs()
        kwargs["kind"] = "tpu"
        with pytest.raises(ValueError):
            HardwareTarget(**kwargs)

    def test_rejects_zero_cores(self):
        kwargs = self._base_kwargs()
        kwargs["num_cores"] = 0
        with pytest.raises(ValueError):
            HardwareTarget(**kwargs)

    def test_rejects_empty_name(self):
        kwargs = self._base_kwargs()
        kwargs["name"] = ""
        with pytest.raises(ValueError, match="name"):
            HardwareTarget(**kwargs)

    def test_rejects_zero_vector_width(self):
        kwargs = self._base_kwargs()
        kwargs["vector_width"] = 0
        with pytest.raises(ValueError, match="vector_width"):
            HardwareTarget(**kwargs)

    @pytest.mark.parametrize("attr", [
        "peak_flops_per_core", "l1_bytes", "l2_bytes", "l3_bytes",
        "dram_bandwidth",
    ])
    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan")])
    def test_rejects_non_positive_capacities(self, attr, value):
        kwargs = self._base_kwargs()
        kwargs[attr] = value
        with pytest.raises(ValueError, match=attr):
            HardwareTarget(**kwargs)

    @pytest.mark.parametrize("attr", ["parallel_overhead", "kernel_overhead"])
    def test_rejects_negative_overheads(self, attr):
        kwargs = self._base_kwargs()
        kwargs[attr] = -1e-9
        with pytest.raises(ValueError, match=attr):
            HardwareTarget(**kwargs)

    def test_zero_overheads_are_legal(self):
        kwargs = self._base_kwargs()
        kwargs["parallel_overhead"] = 0.0
        kwargs["kernel_overhead"] = 0.0
        assert HardwareTarget(**kwargs).parallel_overhead == 0.0
