"""Unit tests for the analytic latency simulator.

These tests pin down the qualitative performance effects the search
algorithms rely on: vectorisation, parallelisation, cache locality and
fusion must all move latency in the expected direction, and the model must be
deterministic for a given schedule.
"""

import numpy as np
import pytest

from repro.hardware.simulator import LatencySimulator
from repro.hardware.target import cpu_target, gpu_target
from repro.tensor.sampler import sample_initial_schedules, sample_schedule
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm


def _schedule(sketch, tiles, ca=0, par=2, unroll=2):
    return Schedule(sketch, [list(t) for t in tiles], ca, par, unroll)


@pytest.fixture
def sim(cpu):
    return LatencySimulator(cpu)


@pytest.fixture
def big_sketch():
    return generate_sketches(gemm(1024, 1024, 1024))[0]


class TestBasicProperties:
    def test_latency_positive_and_finite(self, sim, big_sketch, rng):
        for schedule in sample_initial_schedules(big_sketch, 32, rng):
            latency = sim.latency(schedule)
            assert np.isfinite(latency) and latency > 0

    def test_deterministic(self, sim, big_sketch, rng):
        schedule = sample_schedule(big_sketch, rng)
        assert sim.latency(schedule) == sim.latency(schedule.copy())

    def test_throughput_consistent_with_latency(self, sim, big_sketch, rng):
        schedule = sample_schedule(big_sketch, rng)
        assert sim.throughput(schedule) == pytest.approx(
            schedule.dag.flops / sim.latency(schedule)
        )

    def test_latency_above_roofline(self, sim, big_sketch, rng):
        """No schedule can beat the machine's peak-FLOPs roofline."""
        peak_bound = gemm(1024, 1024, 1024).flops / sim.target.peak_flops
        for schedule in sample_initial_schedules(big_sketch, 16, rng):
            assert sim.latency(schedule) > 0.5 * peak_bound

    def test_landscape_is_schedule_sensitive(self, sim, big_sketch, rng):
        latencies = [sim.latency(s) for s in sample_initial_schedules(big_sketch, 64, rng)]
        assert max(latencies) / min(latencies) > 3.0

    def test_breakdown_fields(self, sim, big_sketch, rng):
        b = sim.breakdown(sample_schedule(big_sketch, rng))
        assert b.latency > 0
        assert b.compute_time > 0
        assert b.memory_time >= 0
        assert 0 < b.efficiency <= 1.0
        assert b.speedup >= 1.0
        assert set(b.factors) >= {"vector", "cache", "loop", "register", "speedup"}


class TestDirectionalEffects:
    def test_vectorized_innermost_tile_is_faster(self, sim, big_sketch):
        # j innermost tile 16 (one full AVX-512 vector) vs 2.
        good = _schedule(big_sketch, [[16, 1, 4, 16], [8, 1, 8, 16], [64, 16]])
        bad = _schedule(big_sketch, [[16, 1, 4, 16], [64, 1, 8, 2], [64, 16]])
        assert sim.latency(good) < sim.latency(bad)

    def test_parallel_beats_serial_on_large_gemm(self, sim, big_sketch):
        tiles = [[32, 2, 4, 4], [32, 2, 4, 4], [64, 16]]
        parallel = _schedule(big_sketch, tiles, par=2)
        serial = _schedule(big_sketch, tiles, par=0)
        assert sim.latency(parallel) < sim.latency(serial) / 4

    def test_oversized_register_tile_penalised(self, sim, big_sketch):
        modest = _schedule(big_sketch, [[32, 2, 4, 4], [32, 2, 4, 4], [64, 16]])
        huge = _schedule(big_sketch, [[4, 1, 2, 128], [4, 1, 2, 128], [16, 64]])
        assert sim.latency(modest) < sim.latency(huge)

    def test_l1_friendly_tiles_beat_thrashing_tiles(self, sim, big_sketch):
        friendly = _schedule(big_sketch, [[32, 4, 2, 4], [32, 4, 2, 4], [64, 16]])
        thrashing = _schedule(big_sketch, [[1, 1, 1024, 1], [1, 1, 1024, 1], [1, 1024]])
        assert sim.latency(friendly) < sim.latency(thrashing)

    def test_fused_sketch_avoids_epilogue(self, rng):
        dag = gemm(1024, 1024, 1024)
        sketches = {s.key: s for s in generate_sketches(dag)}
        sim = LatencySimulator(cpu_target())
        tiles = [[32, 2, 4, 4], [32, 2, 4, 4], [64, 16]]
        plain = _schedule(sketches["tiling"], tiles)
        fused = _schedule(sketches["tiling+fuse"], tiles)
        plain_b = sim.breakdown(plain)
        fused_b = sim.breakdown(fused)
        assert fused_b.epilogue_time == 0.0
        assert plain_b.epilogue_time > 0.0

    def test_ruggedness_bounded(self, sim, big_sketch, rng):
        for schedule in sample_initial_schedules(big_sketch, 32, rng):
            assert 0.85 <= sim.breakdown(schedule).ruggedness <= 1.15

    def test_gpu_needs_more_parallelism(self, big_sketch):
        gpu_sim = LatencySimulator(gpu_target())
        tiles = [[256, 1, 2, 2], [256, 1, 2, 2], [64, 16]]
        wide = _schedule(big_sketch, tiles, par=2)
        narrow = _schedule(big_sketch, [[2, 1, 2, 256], [2, 1, 2, 256], [64, 16]], par=2)
        assert gpu_sim.latency(wide) < gpu_sim.latency(narrow)


class TestRuggednessSeed:
    def test_different_seed_changes_landscape(self, big_sketch, rng):
        schedule = sample_schedule(big_sketch, rng)
        a = LatencySimulator(cpu_target(), ruggedness_seed=0).latency(schedule)
        b = LatencySimulator(cpu_target(), ruggedness_seed=1).latency(schedule)
        assert a != b

    def test_same_seed_is_reproducible(self, big_sketch, rng):
        schedule = sample_schedule(big_sketch, rng)
        a = LatencySimulator(cpu_target(), ruggedness_seed=3).latency(schedule)
        b = LatencySimulator(cpu_target(), ruggedness_seed=3).latency(schedule)
        assert a == b
