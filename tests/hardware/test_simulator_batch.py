"""Serial-vs-vectorised equivalence of the batched latency simulator.

The contract under test: :meth:`LatencySimulator.batch_latency` /
:meth:`batch_breakdown` produce the same numbers as the schedule-at-a-time
:meth:`reference_breakdown` (exact within floating-point tolerance), for
every target of the hardware catalog, and the batched measurement pipeline
built on top inherits that equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.caching import legacy_hot_path
from repro.hardware.catalog import default_catalog
from repro.hardware.measurer import Measurer
from repro.hardware.simulator import LatencySimulator
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv2d, gemm, gemm_tanh, softmax

CATALOG = default_catalog()

RTOL = 1e-9


def _mixed_batch(target, seed, per_sketch=6):
    """Schedules across every sketch of a few operator classes (one batch)."""
    rng = np.random.default_rng(seed)
    schedules = []
    for dag in (
        gemm(128, 128, 128),
        conv2d(28, 28, 32, 32, 3, 1, 1),
        softmax(64, 64),
        gemm_tanh(96, 96, 96),
    ):
        for sketch in generate_sketches(
            dag, target.sketch_spatial_levels, target.sketch_reduction_levels
        ):
            schedules.extend(
                sample_initial_schedules(sketch, per_sketch, rng, target.unroll_depths)
            )
    return schedules


class TestBatchLatencyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        target_name=st.sampled_from(CATALOG.names()),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_matches_reference_on_catalog_targets(self, target_name, seed):
        target = CATALOG.get(target_name)
        simulator = LatencySimulator(target)
        schedules = _mixed_batch(target, seed)
        batch = simulator.batch_latency(schedules)
        reference = np.array(
            [simulator.reference_breakdown(s).latency for s in schedules]
        )
        assert np.allclose(batch, reference, rtol=RTOL, atol=0.0)

    def test_single_call_routes_through_batch(self, cpu, rng):
        simulator = LatencySimulator(cpu)
        for schedule in _mixed_batch(cpu, 7, per_sketch=2)[:8]:
            assert simulator.latency(schedule) == pytest.approx(
                simulator.reference_breakdown(schedule).latency, rel=RTOL
            )

    def test_empty_batch(self, cpu):
        assert LatencySimulator(cpu).batch_latency([]).shape == (0,)

    def test_batch_split_invariance(self, cpu):
        """Chunked evaluation equals whole-batch evaluation element-wise."""
        simulator = LatencySimulator(cpu)
        schedules = _mixed_batch(cpu, 11)
        whole = simulator.batch_latency(schedules)
        split = np.concatenate(
            [simulator.batch_latency(schedules[i : i + 5]) for i in range(0, len(schedules), 5)]
        )
        assert np.array_equal(whole, split)

    def test_legacy_mode_uses_reference(self, cpu):
        simulator = LatencySimulator(cpu)
        schedules = _mixed_batch(cpu, 3, per_sketch=2)
        with legacy_hot_path():
            legacy = simulator.batch_latency(schedules)
        reference = np.array(
            [simulator.reference_breakdown(s).latency for s in schedules]
        )
        assert np.array_equal(legacy, reference)


class TestBatchBreakdownEquivalence:
    @pytest.mark.parametrize(
        "target_name", ["xeon-6226r", "rtx-3090", "graviton3", "jetson-orin"]
    )
    def test_all_components_match(self, target_name):
        target = CATALOG.get(target_name)
        simulator = LatencySimulator(target)
        schedules = _mixed_batch(target, 5, per_sketch=3)
        batched = simulator.batch_breakdown(schedules)
        for schedule, got in zip(schedules, batched):
            want = simulator.reference_breakdown(schedule)
            assert got.latency == pytest.approx(want.latency, rel=RTOL)
            assert got.compute_time == pytest.approx(want.compute_time, rel=RTOL)
            assert got.memory_time == pytest.approx(want.memory_time, rel=RTOL)
            assert got.parallel_overhead == pytest.approx(
                want.parallel_overhead, rel=RTOL, abs=1e-30
            )
            assert got.epilogue_time == pytest.approx(
                want.epilogue_time, rel=RTOL, abs=1e-30
            )
            assert got.speedup == pytest.approx(want.speedup, rel=RTOL)
            assert got.efficiency == pytest.approx(want.efficiency, rel=RTOL)
            assert got.ruggedness == want.ruggedness
            for key, value in want.factors.items():
                assert got.factors[key] == pytest.approx(value, rel=RTOL), key


class TestMeasurerEquivalence:
    def test_fast_and_legacy_measurements_agree(self, cpu):
        """The vectorised measurement pipeline reproduces the serial loop."""
        schedules = _mixed_batch(cpu, 13, per_sketch=3)
        fast = Measurer(cpu, seed=5).measure(schedules)
        with legacy_hot_path():
            legacy = Measurer(cpu, seed=5).measure(schedules)
        assert np.allclose(
            [r.latency for r in fast], [r.latency for r in legacy], rtol=RTOL
        )
        assert [r.repeats for r in fast] == [r.repeats for r in legacy]
        assert [r.trial_index for r in fast] == [r.trial_index for r in legacy]
