"""Unit tests for the batched parallel measurement pipeline.

The contract under test: with a fixed seed, a :class:`ParallelMeasurer`
produces results (latencies, trial accounting, best-schedule statistics,
progress histories) identical to the serial :class:`Measurer`, regardless of
worker count or pool mode.
"""

import pytest

from repro.core.scheduler import HARLScheduler
from repro.hardware.catalog import default_catalog
from repro.hardware.measurer import Measurer
from repro.hardware.parallel import ParallelMeasurer
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.workloads import conv2d, gemm


@pytest.fixture
def schedules(gemm_sketch, rng):
    return sample_initial_schedules(gemm_sketch, 16, rng)


def _stats_snapshot(measurer, workload):
    return (
        measurer.total_trials,
        measurer.trials(workload),
        measurer.best_latency(workload),
        measurer.history(workload),
    )


class TestSerialParallelEquivalence:
    def test_same_latencies(self, cpu, schedules):
        serial = Measurer(cpu, seed=3).measure(schedules)
        with ParallelMeasurer(cpu, num_workers=4, seed=3) as pm:
            parallel = pm.measure(schedules)
        assert [r.latency for r in serial] == [r.latency for r in parallel]
        assert [r.repeats for r in serial] == [r.repeats for r in parallel]
        assert [r.trial_index for r in serial] == [r.trial_index for r in parallel]

    def test_same_statistics(self, cpu, schedules):
        name = schedules[0].dag.name
        serial = Measurer(cpu, seed=3)
        serial.measure(schedules[:7])
        serial.measure(schedules[7:])
        with ParallelMeasurer(cpu, num_workers=4, seed=3) as pm:
            pm.measure(schedules[:7])
            pm.measure(schedules[7:])
            assert _stats_snapshot(serial, name) == _stats_snapshot(pm, name)

    def test_worker_count_does_not_matter(self, cpu, schedules):
        baselines = None
        for workers in (1, 2, 5):
            with ParallelMeasurer(cpu, num_workers=workers, seed=9) as pm:
                latencies = [r.latency for r in pm.measure(schedules)]
            if baselines is None:
                baselines = latencies
            else:
                assert latencies == baselines

    def test_batch_split_does_not_matter(self, cpu, schedules):
        whole = Measurer(cpu, seed=1).measure(schedules)
        with ParallelMeasurer(cpu, num_workers=3, seed=1) as pm:
            split = pm.measure(schedules[:5]) + pm.measure(schedules[5:])
        assert [r.latency for r in whole] == [r.latency for r in split]

    def test_process_mode(self, cpu, schedules):
        serial = Measurer(cpu, seed=2).measure(schedules[:4])
        with ParallelMeasurer(cpu, num_workers=2, mode="process", seed=2) as pm:
            parallel = pm.measure(schedules[:4])
        assert [r.latency for r in serial] == [r.latency for r in parallel]

    def test_unknown_mode_rejected(self, cpu):
        with pytest.raises(ValueError):
            ParallelMeasurer(cpu, num_workers=2, mode="rpc")


class TestDeterministicNoise:
    def test_same_seed_same_stream(self, cpu, schedules):
        first = [r.latency for r in Measurer(cpu, seed=4).measure(schedules)]
        again = [r.latency for r in Measurer(cpu, seed=4).measure(schedules)]
        other = [r.latency for r in Measurer(cpu, seed=5).measure(schedules)]
        assert first == again
        assert first != other

    def test_remeasuring_same_schedule_draws_fresh_noise(self, cpu, schedules):
        measurer = Measurer(cpu, noise=0.05, seed=0)
        first = measurer.measure(schedules[:1])[0]
        second = measurer.measure(schedules[:1])[0]
        assert first.latency != second.latency  # different trial index -> new draw

    def test_empty_batch(self, cpu):
        with ParallelMeasurer(cpu, num_workers=2, seed=0) as pm:
            assert pm.measure([]) == []
            assert pm.total_trials == 0


class TestSchedulerRegression:
    """Full tuning runs: serial and parallel measurement must match exactly.

    Parametrized over catalog targets spanning both kinds and all three
    device families — the determinism contract is per-target (noise streams
    and tiling structures differ across targets), so one CPU preset passing
    says nothing about the others.
    """

    @pytest.mark.parametrize("target_name", [
        "xeon-6226r",   # AVX-512 server CPU (the paper platform)
        "epyc-7543",    # AVX2 server CPU (narrower SIMD, bigger L3)
        "rpi4-a72",     # edge CPU (4 cores, NEON, high overheads)
        "rtx-3090",     # GPU (deeper tiling structure, 5-deep unrolls)
    ])
    def test_harl_serial_vs_parallel_same_best(self, tiny_config, target_name):
        target = default_catalog().get(target_name)
        dag = gemm(128, 128, 128)
        serial = HARLScheduler(target=target, config=tiny_config, seed=0).tune(dag, n_trials=16)

        measurer = ParallelMeasurer(
            target, num_workers=4, seed=0,
            min_repeat_seconds=tiny_config.min_repeat_seconds,
        )
        with measurer:
            parallel = HARLScheduler(
                target=target, config=tiny_config, seed=0, measurer=measurer
            ).tune(dag, n_trials=16)

        assert parallel.best_latency == serial.best_latency
        assert parallel.trials_used == serial.trials_used
        assert parallel.history == serial.history
        assert parallel.best_schedule.signature() == serial.best_schedule.signature()

    def test_trial_accounting_identical_across_workloads(self, tiny_config, cpu):
        dags = [gemm(64, 64, 64), conv2d(14, 14, 16, 16, 3, 1, 1)]

        def run(measurer):
            scheduler = HARLScheduler(target=cpu, config=tiny_config, seed=5, measurer=measurer)
            return [scheduler.tune(dag, n_trials=8) for dag in dags]

        serial = run(Measurer(cpu, seed=5, min_repeat_seconds=tiny_config.min_repeat_seconds))
        with ParallelMeasurer(
            cpu, num_workers=3, seed=5,
            min_repeat_seconds=tiny_config.min_repeat_seconds,
        ) as pm:
            parallel = run(pm)
        for s, p in zip(serial, parallel):
            assert (s.trials_used, s.best_latency) == (p.trials_used, p.best_latency)


class TestPreload:
    def test_preload_sets_best_without_trials(self, cpu, schedules):
        measurer = Measurer(cpu, seed=0)
        name = schedules[0].dag.name
        measurer.preload(name, 1e-3, schedules[0])
        assert measurer.best_latency(name) == 1e-3
        assert measurer.best_schedule(name) is schedules[0]
        assert measurer.trials(name) == 0
        assert measurer.history(name) == []

    def test_preload_keeps_better_existing(self, cpu, schedules):
        measurer = Measurer(cpu, seed=0)
        name = schedules[0].dag.name
        measurer.preload(name, 1e-6, schedules[0])
        measurer.preload(name, 1e-3, schedules[1])
        assert measurer.best_latency(name) == 1e-6
        assert measurer.best_schedule(name) is schedules[0]
