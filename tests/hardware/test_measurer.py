"""Unit tests for the measurement harness."""

import pytest

from repro.hardware.measurer import Measurer
from repro.hardware.simulator import LatencySimulator
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm


@pytest.fixture
def schedules(gemm_sketch, rng):
    return sample_initial_schedules(gemm_sketch, 12, rng)


class TestMeasurement:
    def test_results_align_with_inputs(self, measurer, schedules):
        results = measurer.measure(schedules)
        assert len(results) == len(schedules)
        for result, schedule in zip(results, schedules):
            assert result.schedule is schedule
            assert result.is_valid

    def test_noise_is_small_relative_to_truth(self, cpu, schedules):
        measurer = Measurer(cpu, noise=0.02, seed=1)
        sim = LatencySimulator(cpu)
        for result in measurer.measure(schedules):
            truth = sim.latency(result.schedule)
            assert abs(result.latency - truth) / truth < 0.15

    def test_zero_noise_matches_simulator(self, cpu, schedules):
        measurer = Measurer(cpu, noise=0.0, seed=1)
        sim = LatencySimulator(cpu)
        for result in measurer.measure(schedules):
            assert result.latency == pytest.approx(sim.latency(result.schedule))

    def test_throughput_field(self, measurer, schedules):
        result = measurer.measure(schedules[:1])[0]
        assert result.throughput == pytest.approx(result.schedule.dag.flops / result.latency)

    def test_repeats_respect_min_repeat_time(self, cpu, schedules):
        measurer = Measurer(cpu, min_repeat_seconds=1.0, max_repeats=32, seed=0)
        result = measurer.measure(schedules[:1])[0]
        assert 1 <= result.repeats <= 32


class TestStatistics:
    def test_trial_counting(self, measurer, schedules):
        measurer.measure(schedules)
        name = schedules[0].dag.name
        assert measurer.total_trials == len(schedules)
        assert measurer.trials(name) == len(schedules)

    def test_best_latency_tracked(self, measurer, schedules):
        results = measurer.measure(schedules)
        name = schedules[0].dag.name
        assert measurer.best_latency(name) == pytest.approx(min(r.latency for r in results))
        assert measurer.best_schedule(name) is not None

    def test_history_is_monotone_nonincreasing(self, measurer, schedules):
        measurer.measure(schedules)
        history = measurer.history(schedules[0].dag.name)
        bests = [latency for _trial, latency in history]
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_unknown_workload_defaults(self, measurer):
        assert measurer.best_latency("nope") == float("inf")
        assert measurer.best_schedule("nope") is None
        assert measurer.trials("nope") == 0
        assert measurer.history("nope") == []

    def test_multiple_workloads_tracked_independently(self, cpu, rng):
        measurer = Measurer(cpu, seed=0)
        dag_a, dag_b = gemm(64, 64, 64), gemm(128, 64, 64)
        sched_a = sample_initial_schedules(generate_sketches(dag_a)[0], 3, rng)
        sched_b = sample_initial_schedules(generate_sketches(dag_b)[0], 5, rng)
        measurer.measure(sched_a)
        measurer.measure(sched_b)
        assert measurer.trials(dag_a.name) == 3
        assert measurer.trials(dag_b.name) == 5
        assert measurer.total_trials == 8

    def test_reset(self, measurer, schedules):
        measurer.measure(schedules)
        measurer.reset()
        assert measurer.total_trials == 0
        assert measurer.history(schedules[0].dag.name) == []
