"""Tests for the asyncio network front end and its wire client.

Covers the acceptance-critical serving behaviours over a real TCP socket:

* wire requests for structurally identical workloads never duplicate tuning
  work (registry fast path or in-flight coalescing, one job total),
* admission control answers with explicit, machine-readable rejection codes
  (``rate_limited``, ``quota_exceeded``),
* a saturated server degrades instead of hanging: registry-only answers
  flagged ``degraded``, ``overloaded`` errors for registry misses,
* a wedged backend is answered with the explicit ``timeout`` code within the
  configured deadline, and the client's transport retry is bounded —
  both under seeded fault plans.
"""

import threading
import time

import pytest

from repro.faults.plan import FaultPlan, FaultSpec, inject
from repro.serving.loadgen import LoadGenConfig, run_load
from repro.serving.netclient import NetClientError, TuningClient
from repro.serving.registry import ScheduleRegistry
from repro.serving.server import ServerConfig, ServingServer
from repro.serving.service import TuningService


def _service(tiny_config, seed=0):
    return TuningService(registry=ScheduleRegistry(), config=tiny_config, seed=seed)


@pytest.fixture
def server(tiny_config):
    with ServingServer(_service(tiny_config)) as srv:
        yield srv


@pytest.fixture
def client(server):
    with TuningClient(server.host, server.port, timeout=30.0) as cli:
        yield cli


class TestWireBasics:
    def test_ping(self, client):
        assert client.ping() is True

    def test_cold_tune_then_fast_hit(self, server, client):
        cold = client.tune("GEMM-S", trials=4)
        assert cold.ok and not cold.degraded
        assert cold.source == "scheduled"
        assert cold.trials_used >= 4

        hit = client.tune("GEMM-S", trials=4)
        assert hit.ok and hit.source == "registry-hit"
        assert hit.trials_used == 0
        assert hit.latency == cold.latency
        assert server.fast_hits == 1

    def test_query_miss_then_hit(self, client):
        assert client.query("GEMM-S")["found"] is False
        client.tune("GEMM-S", trials=4)
        found = client.query("GEMM-S")
        assert found["found"] is True
        assert found["latency"] > 0

    def test_stats_reports_counters(self, client):
        client.tune("GEMM-S", trials=4)
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["accepted"] == 1
        assert stats["service"]["jobs_created"] == 1
        assert stats["service"]["registry_entries"] == 1

    def test_unknown_method_is_bad_request(self, client):
        response = client.call("frobnicate")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_unknown_operator_is_bad_request(self, client):
        reply = client.tune("NOT-AN-OP", trials=4)
        assert not reply.ok
        assert reply.error_code == "bad_request"

    def test_malformed_params_are_bad_request(self, client):
        response = client.call("tune", {"op": "GEMM-S", "batch": {"nope": 1}})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_unparseable_line_is_answered_not_dropped(self, server):
        import json
        import socket

        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            raw = sock.makefile("rb").readline()
        response = json.loads(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"


class TestWireCoalescing:
    def test_concurrent_identical_requests_tune_once(self, tiny_config):
        """N concurrent wire clients asking for one workload → one tuning job."""
        service = _service(tiny_config)
        config = ServerConfig(workers=4, max_inflight=4)
        n = 4
        replies = [None] * n
        with ServingServer(service, config) as server:
            barrier = threading.Barrier(n)

            def hammer(i):
                with TuningClient(server.host, server.port, timeout=30.0) as cli:
                    barrier.wait()
                    replies[i] = cli.tune("GEMM-M", trials=8, tenant=f"t{i}")

            threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert all(r is not None and r.ok for r in replies)
        # However the race lands (coalesced onto the in-flight job or a
        # registry fast hit after it finished), exactly one job tuned.
        assert service.jobs_created == 1
        assert sum(r.source == "scheduled" for r in replies) == 1
        dedup = service.coalesced_requests + service.registry_hits + \
            sum(r.source == "registry-hit" for r in replies)
        assert dedup == n - 1
        latencies = {r.latency for r in replies}
        assert len(latencies) == 1  # everyone got the same best


class TestAdmissionControl:
    def test_rate_limit_answers_explicit_code(self, tiny_config):
        config = ServerConfig(rate=0.001, burst=2)
        with ServingServer(_service(tiny_config), config) as server:
            with TuningClient(server.host, server.port, timeout=30.0) as cli:
                cli.tune("GEMM-S", trials=4)  # burst token 1 (cold tune)
                ok = cli.tune("GEMM-S", trials=4)  # burst token 2 (fast hit)
                assert ok.ok
                limited = cli.tune("GEMM-S", trials=4)
                assert not limited.ok
                assert limited.error_code == "rate_limited"
                # Another tenant has its own bucket.
                other = cli.tune("GEMM-S", trials=4, tenant="other")
                assert other.ok
            assert server.rate_limited == 1

    def test_quota_answers_explicit_code_and_settles_hits(self, tiny_config):
        config = ServerConfig(quota=10)
        with ServingServer(_service(tiny_config), config) as server:
            with TuningClient(server.host, server.port, timeout=30.0) as cli:
                first = cli.tune("GEMM-S", trials=8)
                assert first.ok and first.trials_used == 8
                over = cli.tune("GEMM-M", trials=8)
                assert not over.ok
                assert over.error_code == "quota_exceeded"
                # Registry hits settle their reservation back: they must not
                # burn quota even when the remaining budget is tiny.
                hit = cli.tune("GEMM-S", trials=2)
                assert hit.ok and hit.source == "registry-hit"
                again = cli.tune("GEMM-S", trials=2)
                assert again.ok
                # A fresh tenant is unaffected.
                other = cli.tune("GEMM-M", trials=8, tenant="other")
                assert other.ok
            assert server.quota_rejected == 1


class TestDegradedMode:
    def test_saturated_server_answers_registry_only(self, tiny_config):
        """Wedge the single slot; known workloads degrade, misses overload."""
        config = ServerConfig(workers=1, max_inflight=1, request_timeout=30.0)
        with ServingServer(_service(tiny_config), config) as server:
            with TuningClient(server.host, server.port, timeout=30.0) as cli:
                primed = cli.tune("GEMM-S", trials=4)
                assert primed.ok

            plan = FaultPlan(
                [FaultSpec("server.accept", "slow_disk",
                           match="blocker:", delay=1.0)],
                seed=0,
            )
            with inject(plan):
                def block():
                    with TuningClient(server.host, server.port,
                                      timeout=30.0, max_retries=0) as blocker:
                        blocker.tune("C1D", trials=4, tenant="blocker")

                thread = threading.Thread(target=block, daemon=True)
                thread.start()
                deadline = time.monotonic() + 5.0
                while server.accepted < 2 and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert server.accepted == 2

                with TuningClient(server.host, server.port, timeout=30.0) as cli:
                    # force_tune wants fresh trials; the saturated server
                    # answers from the registry and says so.
                    shed = cli.tune("GEMM-S", trials=4, force_tune=True)
                    assert shed.ok and shed.degraded
                    assert shed.trials_used == 0
                    assert shed.source == "registry-hit"
                    assert shed.latency == primed.latency

                    miss = cli.tune("GEMM-M", trials=4)
                    assert not miss.ok
                    assert miss.error_code == "overloaded"
                    assert miss.degraded
                assert server.shed == 2
                thread.join(timeout=10.0)
                assert not thread.is_alive()


class TestFaultedBackend:
    def test_timeout_is_enforced_and_explicit(self, tiny_config):
        config = ServerConfig(workers=1, request_timeout=0.2)
        plan = FaultPlan.single("server.accept", "slow_disk", delay=1.0, seed=0)
        with ServingServer(_service(tiny_config), config) as server:
            with inject(plan):
                with TuningClient(server.host, server.port, timeout=10.0,
                                  max_retries=0) as cli:
                    began = time.perf_counter()
                    reply = cli.tune("GEMM-S", trials=4)
                    elapsed = time.perf_counter() - began
                    assert not reply.ok
                    assert reply.error_code == "timeout"
                    assert elapsed < 0.9  # answered before the stall cleared
                    assert cli.ping()  # server still responsive
            assert server.timeouts == 1

    def test_retry_is_bounded_on_a_dead_backend(self, tiny_config):
        plan = FaultPlan.single("server.accept", "crash", times=50, seed=0)
        with ServingServer(_service(tiny_config), ServerConfig()) as server:
            with inject(plan):
                with TuningClient(server.host, server.port, timeout=10.0,
                                  max_retries=2, backoff=0.01) as cli:
                    with pytest.raises(NetClientError) as excinfo:
                        cli.tune("GEMM-S", trials=4)
                    assert excinfo.value.attempts == 3
            assert len(plan.fired) == 3
            assert server.dropped == 3

    def test_retry_rides_out_a_recovering_backend(self, tiny_config):
        plan = FaultPlan.single("server.accept", "crash", times=2, seed=0)
        with ServingServer(_service(tiny_config), ServerConfig()) as server:
            with inject(plan):
                with TuningClient(server.host, server.port, timeout=30.0,
                                  max_retries=3, backoff=0.01) as cli:
                    reply = cli.tune("GEMM-S", trials=4)
                    assert reply.ok
                    assert reply.attempts == 3
            assert len(plan.fired) == 2
            assert server.dropped == 2


class TestLoadGenerator:
    def test_small_closed_loop_run_reports_invariants(self, tiny_config):
        config = LoadGenConfig(clients=2, requests_per_client=6, trials=4,
                               burst=3, pause=0.0, seed=0)
        with ServingServer(_service(tiny_config), ServerConfig()) as server:
            report = run_load(server.host, server.port, config)
        assert report["schema"] == "repro-loadgen/1"
        assert report["requests"] == 12
        assert report["answered"] == 12
        assert report["unanswered"] == 0
        assert report["degraded_with_trials"] == 0
        p = report["latency_ms"]
        assert 0 <= p["p50"] <= p["p95"] <= p["p99"] <= p["max"]
        assert report["server"]["requests"] >= 12
